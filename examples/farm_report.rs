//! Stand up the serving farm — per-site `rootd` engines for a set of
//! root letters sharing one epoch-swapped zone state — and replay a
//! seeded, catchment-steered query load through the batched datagram
//! path, printing the constellation report and checking its invariants.
//!
//! ```sh
//! cargo run --release --example farm_report                  # 2 letters × 4 sites smoke
//! cargo run --release --example farm_report -- full 200000   # all 13 letters, full catalog
//! ```
//!
//! The first argument picks the constellation (`smoke` = A+B capped at
//! 4 sites each, `full` = all thirteen letters at every catalog site),
//! the second the total query count. The merged `BENCH_results.json`
//! numbers (`rootd/farm/*`) come from `cargo bench`; this example is
//! the human-readable driver.

use rootd::FarmConfig;
use roots_core::{FarmRun, Scale};
use rss::RootLetter;

fn main() {
    let full = std::env::args().nth(1).as_deref() == Some("full");
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if full { 200_000 } else { 20_000 });

    let mut cfg = FarmConfig::tiny(0x2024_0610);
    cfg.queries = queries;
    cfg.shards = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(2);

    let run = if full {
        FarmRun::full_constellation(Scale::Tiny, &cfg)
    } else {
        FarmRun::run(Scale::Tiny, &[RootLetter::A, RootLetter::B], 4, &cfg)
    };

    print!("{}", run.render());

    // Replay with a different shard count: every deterministic output
    // must be bit-identical (DESIGN §15).
    let mut replay_cfg = cfg.clone();
    replay_cfg.shards = if cfg.shards == 1 { 2 } else { 1 };
    let replay = if full {
        FarmRun::full_constellation(Scale::Tiny, &replay_cfg)
    } else {
        FarmRun::run(Scale::Tiny, &[RootLetter::A, RootLetter::B], 4, &replay_cfg)
    };

    let mut problems = run.report.violations();
    if replay.report.fingerprint() != run.report.fingerprint() {
        problems.push(format!(
            "replay fingerprint {:#x} != {:#x} across shard counts {} vs {}",
            replay.report.fingerprint(),
            run.report.fingerprint(),
            replay_cfg.shards,
            cfg.shards,
        ));
    }

    if problems.is_empty() {
        println!("farm invariants: OK");
    } else {
        for p in &problems {
            println!("farm invariant violated: {p}");
        }
        std::process::exit(1);
    }
}
