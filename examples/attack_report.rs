//! Attack report: adversarial traffic against a rate-limited root fleet.
//!
//! The built-in `attack-demo` scenario throws three attack shapes at
//! B-Root's fleet inside one 12-virtual-second run: a ×10 water-torture
//! NXDOMAIN flood from a spoofed botnet, a reflection burst spoofing a
//! real stub client's source address, and that client flooding on its own
//! behalf. Response-rate limiting (BIND-style per-source token buckets
//! with slip/TC) is engaged throughout, and every benign answer that gets
//! through is byte-verified against an unlimited twin engine.
//!
//! ```sh
//! cargo run --release --example attack_report
//! ```
//!
//! The final line is machine-greppable: `attack invariants: OK (...)` on
//! success; any violation prints `attack invariants: FAILED ...` and
//! exits non-zero.

use roots_core::{AttackRun, Scale};
use rss::RootLetter;
use std::process::ExitCode;

fn main() -> ExitCode {
    let letter = RootLetter::B;
    let scenario = AttackRun::demo_scenario(Scale::Tiny, letter);
    println!(
        "attack report: scenario '{}' — {} windows against {}.root, RRL engaged",
        scenario.name(),
        scenario.events().len(),
        letter.ch(),
    );
    for e in scenario.events() {
        println!(
            "  event {:<22} wall [{}, {})",
            e.kind.label(),
            e.at,
            e.effective_until(),
        );
    }

    let a = AttackRun::run(
        Scale::Tiny,
        letter,
        &scenario,
        AttackRun::DEMO_DURATION_MS,
        2,
    );
    println!();
    println!("{}", a.report.render());
    println!("{}", a.flood.render());

    let mut violations = a.violations();
    if a.report.rrl.dropped == 0 || a.report.rrl.slipped == 0 {
        violations.push("the limiter never engaged — the attack windows missed the run".into());
    }

    // Replay bit-identity: same run again, then a different worker count
    // — window-chunk ownership makes partitioning invisible.
    let b = AttackRun::run(
        Scale::Tiny,
        letter,
        &scenario,
        AttackRun::DEMO_DURATION_MS,
        2,
    );
    if a.fingerprint() != b.fingerprint() {
        violations.push("replay diverged between identical runs".into());
    }
    let c = AttackRun::run(
        Scale::Tiny,
        letter,
        &scenario,
        AttackRun::DEMO_DURATION_MS,
        5,
    );
    if a.fingerprint() != c.fingerprint() {
        violations.push("replay diverged across worker counts (2 vs 5)".into());
    }

    if violations.is_empty() {
        let attacked: u64 = a.flood.epochs.iter().map(|e| e.attack_sent).sum();
        println!(
            "attack invariants: OK (epochs={} attack_sent={} rrl_dropped={} rrl_slipped={} \
             worst_served={:.4} mismatches=0 replays=3)",
            a.flood.epochs.len(),
            attacked,
            a.report.rrl.dropped,
            a.report.rrl.slipped,
            a.flood.worst_flood_served_fraction(),
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        println!(
            "attack invariants: FAILED ({} violations)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
