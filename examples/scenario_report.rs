//! Drive the simulated root server system through a three-event change
//! timeline — a d.root site outage, the b.root renumbering, and a g.root
//! route-flap burst — and print the per-epoch diff table for each affected
//! letter: catchment shift, RTT deltas, loss, validation failures.
//!
//! ```sh
//! cargo run --release --example scenario_report            # tiny scale
//! cargo run --release --example scenario_report -- small   # full world
//! ```

use roots_core::scenarios::{catalog, ScenarioPipeline};
use roots_core::Scale;
use rss::RootLetter;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("paper") => Scale::Paper,
        _ => Scale::Tiny,
    };
    let scenario = catalog::outage_renumber_flap();
    println!(
        "scenario '{}' at {:?} scale — {} events:",
        scenario.name(),
        scale,
        scenario.events().len()
    );
    for ev in scenario.events() {
        let until = ev
            .until
            .map(|u| format!("{u}"))
            .unwrap_or_else(|| "∞".to_string());
        println!("  {:24} [{}, {})", ev.kind.label(), ev.at, until);
    }

    let p = ScenarioPipeline::run(scale, &scenario);
    println!(
        "\n{} epochs measured ({} probes total)\n",
        p.run.epochs.len(),
        p.run.epochs.iter().map(|e| e.probes.len()).sum::<usize>()
    );
    for letter in [RootLetter::D, RootLetter::B, RootLetter::G] {
        println!("{}", p.report(letter).render());
    }
}
