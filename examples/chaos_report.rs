//! Chaos report: sweep a fault matrix (loss × bitflip × mid-stream
//! truncation) against the resilient localroot refresh loop and check
//! the robustness invariants the paper's RQ3 fallback argument rests on:
//!
//! 1. a corrupt zone copy is never activated — every accepted copy
//!    answers byte-identically to the fault-free baseline;
//! 2. refresh converges whenever at least one upstream is reachable;
//! 3. stale serving is bounded by the zone's SOA expire field;
//! 4. every cell replays bit-identically from its seed.
//!
//! ```sh
//! cargo run --release --example chaos_report            # default seed
//! cargo run --release --example chaos_report -- 42      # custom seed
//! ```
//!
//! The final line is machine-greppable: `chaos invariants: OK (...)` on
//! success; any violation prints `chaos invariants: FAILED ...` and
//! exits non-zero.

use dns_wire::{Message, Name, Question, Rcode, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use localroot::{upstream_transport, LocalRoot, RefreshOutcome, ValidationPolicy};
use rootd::{FaultCounters, FaultPlan, FaultSpec, FaultyTransport, InprocTransport};
use rss::{RootLetter, RootServer};
use std::process::ExitCode;
use std::sync::Arc;

const T0: u32 = 1_701_820_800; // 2023-12-06: inside the ZONEMD window
const SERIAL: u32 = 2023120600;
const SOA_EXPIRE: u32 = 604_800;

fn upstream_servers() -> Vec<(RootLetter, RootServer)> {
    let zone = Arc::new(build_root_zone(
        &RootZoneConfig {
            serial: SERIAL,
            tld_count: 10,
            inception: T0,
            expiration: T0 + 14 * 86_400,
            rollout: RolloutPhase::Validating,
        },
        &ZoneKeys::from_seed(1),
    ));
    [RootLetter::A, RootLetter::B, RootLetter::C]
        .into_iter()
        .map(|letter| {
            (
                letter,
                RootServer {
                    letter,
                    identity: Some(format!("{}1.chaos", letter.ch())),
                    zone: Arc::clone(&zone),
                    behavior: Default::default(),
                },
            )
        })
        .collect()
}

fn wired(
    servers: &[(RootLetter, RootServer)],
    plan: &Arc<FaultPlan>,
) -> Vec<(RootLetter, FaultyTransport<InprocTransport>)> {
    servers
        .iter()
        .enumerate()
        .map(|(i, (letter, server))| {
            (
                *letter,
                FaultyTransport::new(upstream_transport(server), Arc::clone(plan), i as u64),
            )
        })
        .collect()
}

fn probes() -> Vec<Message> {
    vec![
        Message::query(1, Question::new(Name::root(), RrType::Soa)),
        Message::query(2, Question::new(Name::root(), RrType::Ns)),
        Message::query(3, Question::new(Name::parse("com.").unwrap(), RrType::Ns)),
        Message::query(
            4,
            Question::new(Name::parse("nxd-tld.").unwrap(), RrType::A),
        ),
    ]
}

#[allow(clippy::type_complexity)]
fn run_cell(
    servers: &[(RootLetter, RootServer)],
    spec: &FaultSpec,
    seed: u64,
) -> (
    Result<RefreshOutcome, String>,
    localroot::Metrics,
    LocalRoot,
    Vec<FaultCounters>,
) {
    let plan = Arc::new(FaultPlan::clean(seed).with_default(spec.clone()));
    let mut up = wired(servers, &plan);
    let mut lr = LocalRoot::new(ValidationPolicy::default());
    let out = lr.refresh_wire(&mut up, T0 + 60).map_err(|e| e.to_string());
    let counters = up.iter().map(|(_, t)| t.counters()).collect();
    let metrics = lr.metrics;
    (out, metrics, lr, counters)
}

fn main() -> ExitCode {
    let base_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xc0de);
    let servers = upstream_servers();

    // Fault-free baseline the activated copies must match byte for byte.
    let clean = Arc::new(FaultPlan::clean(0));
    let mut baseline = LocalRoot::new(ValidationPolicy::default());
    baseline
        .refresh_wire(&mut wired(&servers, &clean), T0 + 60)
        .expect("fault-free refresh must succeed");
    let baseline_answers: Vec<Vec<u8>> = probes()
        .iter()
        .map(|q| baseline.answer(q, T0 + 120).to_wire())
        .collect();

    let mut violations: Vec<String> = Vec::new();
    let mut cells = 0u32;
    let mut activated = 0u32;
    let mut refused = 0u32;
    let mut total = FaultCounters::default();

    println!(
        "chaos sweep: loss x bitflip x truncation over 3 upstreams (base seed {base_seed:#x})"
    );
    println!(
        "{:>5} {:>5} {:>5}  {:<22} {:>8} {:>8} {:>9}",
        "loss", "flip", "trunc", "outcome", "retries", "timeouts", "faults"
    );
    for (ci, &loss) in [0.0, 0.1, 0.25, 0.5].iter().enumerate() {
        for (cj, &flip) in [0.0, 0.05, 0.25].iter().enumerate() {
            for (ck, &trunc) in [0.0, 0.3].iter().enumerate() {
                cells += 1;
                let seed = base_seed + (ci as u64) * 100 + (cj as u64) * 10 + ck as u64;
                let spec = FaultSpec {
                    drop_prob: loss,
                    bitflip_prob: flip,
                    truncate_stream_prob: trunc,
                    ..FaultSpec::clean()
                };
                let (out, metrics, mut lr, counters) = run_cell(&servers, &spec, seed);
                let label = match &out {
                    Ok(RefreshOutcome::Updated {
                        serial,
                        from_upstream,
                        attempts,
                    }) => {
                        activated += 1;
                        if *serial != SERIAL {
                            violations.push(format!(
                                "cell loss={loss} flip={flip} trunc={trunc}: wrong serial {serial}"
                            ));
                        }
                        // Invariant 1: byte-identical answers.
                        for (q, want) in probes().iter().zip(&baseline_answers) {
                            if &lr.answer(q, T0 + 120).to_wire() != want {
                                violations.push(format!(
                                    "cell loss={loss} flip={flip} trunc={trunc}: corrupt copy activated"
                                ));
                            }
                        }
                        format!("updated via {from_upstream} ({attempts} tries)")
                    }
                    Ok(RefreshOutcome::AlreadyCurrent { .. }) => {
                        violations.push("first refresh reported AlreadyCurrent".into());
                        "already-current?".into()
                    }
                    Err(_) => {
                        refused += 1;
                        // Invariant 1, refusal side: nothing activated.
                        if lr.current_serial().is_some() || metrics.transfers_accepted != 0 {
                            violations.push(format!(
                                "cell loss={loss} flip={flip} trunc={trunc}: failed refresh left a copy behind"
                            ));
                        }
                        "refused (all failed)".into()
                    }
                };
                // Invariant 4: the cell replays bit-identically.
                let (out2, metrics2, _, counters2) = run_cell(&servers, &spec, seed);
                if out != out2 || metrics != metrics2 || counters != counters2 {
                    violations.push(format!(
                        "cell loss={loss} flip={flip} trunc={trunc}: replay diverged"
                    ));
                }
                let cell_faults: u64 = counters.iter().map(|c| c.total_faults()).sum();
                for c in &counters {
                    total.merge(c);
                }
                println!(
                    "{loss:>5} {flip:>5} {trunc:>5}  {label:<22} {:>8} {:>8} {cell_faults:>9}",
                    metrics.retries, metrics.timeouts
                );
            }
        }
    }

    // Invariant 2: with clean and light-fault cells in the matrix, a
    // majority must converge; and the zero-fault cell always does.
    if activated < cells / 2 {
        violations.push(format!("only {activated}/{cells} cells converged"));
    }

    // Invariant 3: serve-stale through a total outage is bounded by the
    // SOA expire field.
    let dark = Arc::new(FaultPlan::clean(base_seed ^ 1).with_default(FaultSpec::blackhole()));
    let mut lr = LocalRoot::new(ValidationPolicy {
        max_age: 3_600,
        ..Default::default()
    });
    lr.refresh_wire(&mut wired(&servers, &clean), T0).unwrap();
    let q = Message::query(9, Question::new(Name::root(), RrType::Soa));
    for age in [3_601u32, SOA_EXPIRE, SOA_EXPIRE + 1] {
        let now = T0 + age;
        let _ = lr.refresh_wire(&mut wired(&servers, &dark), now);
        let rcode = lr.answer(&q, now).header.rcode;
        let want = if age <= SOA_EXPIRE {
            Rcode::NoError
        } else {
            Rcode::ServFail
        };
        if rcode != want {
            violations.push(format!(
                "stale bound: age={age} answered {rcode:?}, want {want:?}"
            ));
        }
    }
    println!(
        "serve-stale window: fresh<=3600s, stale<=SOA expire {SOA_EXPIRE}s, then refused \
         (served_stale={} refused_expired={})",
        lr.metrics.served_stale, lr.metrics.refused_expired
    );
    println!("aggregate injected faults: {}", total.render());

    if violations.is_empty() {
        println!(
            "chaos invariants: OK (cells={cells} activated={activated} refused={refused} \
             faults_injected={} stale_bound={SOA_EXPIRE})",
            total.total_faults()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        println!("chaos invariants: FAILED ({} violations)", violations.len());
        ExitCode::FAILURE
    }
}
