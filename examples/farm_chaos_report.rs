//! The self-healing constellation under fire: three concurrent site
//! failures (two engine crashes and a network blackhole), a stalled
//! shard, a junk flood, and a poisoned zone reload — all on the shared
//! virtual clock — served through the farm's health-checked failover,
//! restart ladder, validated-reload rollback and overload shedding.
//!
//! ```sh
//! cargo run --release --example farm_chaos_report            # 30k queries
//! cargo run --release --example farm_chaos_report -- 100000  # more load
//! ```
//!
//! The run asserts the resilience acceptance gates and prints
//! `farm chaos invariants: OK` when all of them hold:
//!
//! * ≥99% of legitimate (non-junk) queries are answered despite the
//!   failures and the flood;
//! * every delivered answer is byte-identical to the fault-free twin;
//! * the poisoned reload is refused and no corrupt zone ever activates;
//! * every crashed engine recovers within the backoff budget;
//! * the whole report replays fingerprint-identical across 1..=8 shards
//!   and stays seed-sensitive.

use rootd::recovery::FailureKind;
use rootd::{Farm, FarmChaosConfig, FloodWindow};
use rss::RootLetter;
use vantage::{World, WorldBuildConfig};

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    let world = World::build(&WorldBuildConfig::tiny());
    let zone = world.zone_at(0);
    let letters = [RootLetter::A, RootLetter::B, RootLetter::C];
    let farm = Farm::build(&world.topology, &world.catalog, zone, &letters, 4);

    // Reload validation one day into the day-0 zone's RRSIG window:
    // clean zones pass, poisoned ones fail on digest — not on expiry.
    let mut cfg = FarmChaosConfig::tiny(0x2025_0417, 86_400);
    cfg.farm.queries = queries;
    cfg.farm.shards = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(2);

    // Three concurrent site failures with overlapping windows, a stalled
    // shard, a junk flood over the recovery period, and one poisoned
    // zone push at letter B while its sibling site is dark.
    let site = |letter: RootLetter, i: usize| -> u32 {
        farm.deployment(letter).expect("farm serves letter").sites[i]
            .id
            .0
    };
    cfg.plan.add(
        RootLetter::A,
        site(RootLetter::A, 1),
        FailureKind::Crash,
        (1_000, 4_000),
    );
    cfg.plan.add(
        RootLetter::B,
        site(RootLetter::B, 0),
        FailureKind::Blackhole,
        (1_500, 3_500),
    );
    cfg.plan.add(
        RootLetter::C,
        site(RootLetter::C, 1),
        FailureKind::Crash,
        (1_200, 3_800),
    );
    cfg.plan.add(
        RootLetter::C,
        site(RootLetter::C, 0),
        FailureKind::Stall { delay_ms: 250 },
        (1_000, 5_000),
    );
    cfg.plan.add_poisoned_reload(RootLetter::B, 2_500);
    cfg.floods.push(FloodWindow {
        start_ms: 2_000,
        end_ms: 6_000,
        amplification: 8.0,
    });

    let report = farm.run_chaos(&world.topology, &cfg);
    let twin = farm.run_chaos(&world.topology, &cfg.twin());

    println!(
        "Self-healing farm: {} letters, {} sites, {} clients, {} shards",
        farm.letters().len(),
        farm.site_count(),
        farm.client_count(),
        cfg.farm.shards,
    );
    print!("{}", report.render());

    let mut problems = report.violations();

    // Gate 1: degraded service floor.
    if report.legit_served_fraction() < 0.99 {
        problems.push(format!(
            "legit served fraction {:.4} < 0.99",
            report.legit_served_fraction()
        ));
    }

    // Gate 2: every delivered answer byte-identical to the healthy twin.
    let mismatches = report.diff_twin(&twin);
    if !mismatches.is_empty() {
        problems.push(format!(
            "{} answers differ from the fault-free twin (first at query {})",
            mismatches.len(),
            mismatches[0]
        ));
    }

    // Gate 3: the poisoned reload bounced and nothing corrupt activated.
    if report.reloads_rejected != 1 || report.reloads_accepted != 0 {
        problems.push(format!(
            "poisoned reload: {} rejected, {} accepted (want 1, 0)",
            report.reloads_rejected, report.reloads_accepted
        ));
    }

    // Gate 4: both crashed engines recovered within the backoff budget.
    if report.recoveries.len() != 2 {
        problems.push(format!(
            "expected 2 crash incidents, saw {}",
            report.recoveries.len()
        ));
    }
    for r in &report.recoveries {
        match r.recovered_at {
            Some(t) if t - r.detected_at <= cfg.recovery.budget_ms() => {}
            _ => problems.push(format!("recovery did not converge in budget: {r:?}")),
        }
    }

    // Gate 5: bit-identical replay across every shard count, and the
    // fingerprint moves when the seed does.
    let fp = report.fingerprint();
    for shards in 1..=8 {
        let mut sweep = cfg.clone();
        sweep.farm.shards = shards;
        let replay = farm.run_chaos(&world.topology, &sweep).fingerprint();
        if replay != fp {
            problems.push(format!(
                "shards={shards}: fingerprint {replay:#x} != {fp:#x}"
            ));
        }
    }
    let mut reseeded = cfg.clone();
    reseeded.farm.seed ^= 0x5eed;
    let fp2 = {
        let a = farm.run_chaos(&world.topology, &reseeded).fingerprint();
        let mut b_cfg = reseeded.clone();
        b_cfg.farm.shards = if reseeded.farm.shards == 1 { 2 } else { 1 };
        let b = farm.run_chaos(&world.topology, &b_cfg).fingerprint();
        if a != b {
            problems.push(format!("second seed not shard-invariant: {a:#x} != {b:#x}"));
        }
        a
    };
    if fp2 == fp {
        problems.push("different seed produced the same fingerprint".to_string());
    }

    if problems.is_empty() {
        println!("farm chaos invariants: OK");
    } else {
        for p in &problems {
            println!("farm chaos invariant violated: {p}");
        }
        std::process::exit(1);
    }
}
