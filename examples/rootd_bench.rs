//! Drive the wire-level serving layer: build a world, stand up one root
//! letter's anycast fleet as `rootd` engines, and replay a seeded,
//! B-Root-shaped query mix against it from many simulated clients,
//! printing throughput and latency quantiles.
//!
//! ```sh
//! cargo run --release --example rootd_bench                 # tiny smoke
//! cargo run --release --example rootd_bench -- small 1000000
//! ```
//!
//! The first argument picks the world scale (`tiny`/`small`/`paper`), the
//! second the total query count. The merged `BENCH_results.json` numbers
//! come from `cargo bench` (the `rootd` bench target runs this same
//! pipeline and records qps/p50/p95/p99); this example is the
//! human-readable driver.

use rootd::{FaultPlan, FaultSpec, LoadgenConfig, QueryMix};
use roots_core::{AttackRun, Scale, ServingPipeline};
use rss::RootLetter;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("paper") => Scale::Paper,
        _ => Scale::Tiny,
    };
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let cfg = LoadgenConfig {
        clients: 256,
        queries,
        threads,
        seed: 0x2023_0703,
        mix: QueryMix::broot(),
        faults: None,
        arrivals: None,
    };
    println!(
        "rootd load generator: {:?} scale, {} queries, {} threads, {} clients",
        scale, cfg.queries, cfg.threads, cfg.clients
    );
    let p = ServingPipeline::run(scale, RootLetter::B, &cfg);
    print!("{}", p.render());
    let served = p.report.cache_hits + p.report.cache_misses;
    println!(
        "cache hit rate: {:.2}% ({} of {} queries answered from precompiled wire bytes)",
        100.0 * p.report.cache_hits as f64 / served.max(1) as f64,
        p.report.cache_hits,
        served
    );
    println!(
        "per-site distribution: {}",
        p.report
            .per_site
            .iter()
            .map(|(site, n)| format!("site{site}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Second pass: the same seeded mix through a lossy FaultyTransport, to
    // show the client-side retry machinery and fault counters at work.
    let faulty = LoadgenConfig {
        queries: queries.min(50_000),
        faults: Some(FaultPlan::clean(0xfa_17).with_default(FaultSpec {
            drop_prob: 0.10,
            bitflip_prob: 0.02,
            ..FaultSpec::clean()
        })),
        ..cfg
    };
    println!(
        "\nfault-injected rerun: {} queries through drop=0.10 bitflip=0.02",
        faulty.queries
    );
    let pf = ServingPipeline::run(scale, RootLetter::B, &faulty);
    print!("{}", pf.report.render_faults());

    // Third pass: the demo attack scenario with response-rate limiting
    // engaged — what the limiter dropped, slipped (TC=1), and which
    // per-(source, class) buckets ran hottest.
    let scenario = AttackRun::demo_scenario(scale, RootLetter::B);
    println!(
        "\nflood-injected rerun: scenario '{}' over {} virtual ms, RRL engaged",
        scenario.name(),
        AttackRun::DEMO_DURATION_MS
    );
    let pa = AttackRun::run(
        scale,
        RootLetter::B,
        &scenario,
        AttackRun::DEMO_DURATION_MS,
        threads,
    );
    print!("{}", pa.report.render());
}
