//! Quickstart: build a simulated root server system, run a short
//! measurement, and print the headline numbers of each research question.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use analysis::colocation::ColocationResult;
use analysis::stability::StabilityResult;
use analysis::zonemd_pipeline::validate_transfers;
use roots_core::{Pipeline, Scale};
use rss::{BRootPhase, RootLetter};
use vantage::records::Target;

fn main() {
    println!("roots-go-deep quickstart: building world + running measurement (tiny scale)...");
    println!(
        "paper-scale footprint would be: {}",
        vantage::budget::Budget::estimate(&vantage::Schedule::default(), 675).render()
    );
    let pipeline = Pipeline::shared(Scale::Tiny);
    println!(
        "world: {} ASes, {} VPs, {} root sites",
        pipeline.world.topology.len(),
        pipeline.world.population.len(),
        pipeline.world.catalog.sites.len()
    );
    println!(
        "records: {} probes, {} zone transfers, {} ISP flow buckets",
        pipeline.probes.len(),
        pipeline.transfers.len(),
        pipeline.isp_flows.len()
    );

    // RQ1: co-location.
    let coloc = ColocationResult::compute(&pipeline.probes);
    println!(
        "\nRQ1  co-location: {:.1}% of VPs see >=2 letters behind one last hop (max {})",
        coloc.fraction_with_colocation(2) * 100.0,
        coloc.max_reduced() + 1
    );

    // RQ2: stability differences between letters/families.
    let stability = StabilityResult::compute(&pipeline.probes);
    for letter in [RootLetter::B, RootLetter::G] {
        let t = Target {
            letter,
            b_phase: BRootPhase::Old,
        };
        for family in netsim::Family::BOTH {
            if let Some(s) = stability.series_for(t, family) {
                println!(
                    "RQ2  {} {}: median {} site changes per VP",
                    t.label(),
                    family.label(),
                    s.median_changes().unwrap_or(0)
                );
            }
        }
    }

    // RQ3: zone integrity.
    let table2 = validate_transfers(&pipeline.world, &pipeline.transfers);
    println!(
        "RQ3  validated {} transfers; {} failing classes",
        table2.total_transfers,
        table2.rows.len()
    );
    for row in &table2.rows {
        println!(
            "     {}: {} observations on {} VPs",
            row.reason.label(),
            row.observations,
            row.vps.len()
        );
    }
    println!("\nRun `cargo run --release --example paper_report` for every table/figure.");
}
