//! The b.root renumbering, end to end: simulate the ISP and IXP passive
//! views around the 2023-11-27 address change and show who moved, how fast,
//! per family and region — the paper's Figures 7-9 narrative.
//!
//! ```sh
//! cargo run --release --example broot_renumbering
//! ```

use analysis::clients::{b_target, ClientAnalysis};
use analysis::traffic::{BKey, BRootShift};
use dns_crypto::validity::timestamp_from_ymd as ts;
use netgeo::Region;
use netsim::Family;
use rss::BRootPhase;
use traces::flows::DayBucket;
use traces::gen::{generate_flows, ObservationWindow, TraceConfig};

fn day(s: &str) -> DayBucket {
    DayBucket::of(ts(s).unwrap())
}

fn main() {
    println!("b.root renumbering (2023-11-27): passive view simulation\n");

    // --- ISP view (Figure 7). ---
    let mut isp = TraceConfig::isp(42);
    isp.population.clients_per_family = 1500;
    let isp_flows = generate_flows(&isp, &ObservationWindow::isp_windows());
    let shift = BRootShift::compute(&isp_flows);

    println!("European ISP, pre-change day (2023-10-08):");
    let pre = (day("20231008000000"), day("20231009000000"));
    for key in [BKey::V4Old, BKey::V6Old, BKey::V4New, BKey::V6New] {
        println!(
            "  {:6} {:5.1}% of b.root traffic",
            key.label(),
            shift.series.mean_share(&key, pre.0, pre.1) * 100.0
        );
    }

    println!("\nEuropean ISP, four weeks post-change (2024-02-05..03-04):");
    let post = (day("20240205000000"), day("20240304000000"));
    for key in [BKey::V4New, BKey::V4Old, BKey::V6New, BKey::V6Old] {
        println!(
            "  {:6} {:5.1}%",
            key.label(),
            shift.series.mean_share(&key, post.0, post.1) * 100.0
        );
    }
    println!(
        "  in-family shift: v4 {:.1}%  v6 {:.1}%  (paper: 87.1% / 96.3%)",
        shift.in_family_shift(Family::V4, post.0, post.1) * 100.0,
        shift.in_family_shift(Family::V6, post.0, post.1) * 100.0
    );

    // --- Priming signature (Figure 8). ---
    let clients = ClientAnalysis::compute(&isp_flows, post.0, post.1);
    if let (Some(old), Some(new)) = (
        clients.curve(b_target(BRootPhase::Old), Family::V6),
        clients.curve(b_target(BRootPhase::New), Family::V6),
    ) {
        println!(
            "\nPriming signature (v6): {:.0}% of old-subnet client-days are single-contact \
             vs {:.0}% on the new subnet",
            old.fraction_at_most(1) * 100.0,
            new.fraction_at_most(1) * 100.0
        );
    }

    // --- IXP view (Figure 9). ---
    println!("\nIXP view, v6 traffic shifted to the new address by late December:");
    let w = (day("20231128000000"), day("20231228000000"));
    for region in [Region::NorthAmerica, Region::Europe] {
        let mut cfg = TraceConfig::ixp(region, 42);
        cfg.population.clients_per_family = 1500;
        let flows = generate_flows(&cfg, &ObservationWindow::ixp_windows());
        let s = BRootShift::compute(&flows);
        println!(
            "  {:13} {:5.1}%   (paper: NA 16.5%, EU 60.8%)",
            region.name(),
            s.in_family_shift(Family::V6, w.0, w.1) * 100.0
        );
    }
}
