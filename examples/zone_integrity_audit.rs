//! Zone-integrity audit (RQ3): build a signed root zone, roll ZONEMD out
//! through its three phases, transfer it, inject the paper's fault classes
//! (bitflip, stale site, skewed clock) and show what the validation
//! pipeline catches — ending with the Figure 10 two-line diff.
//!
//! ```sh
//! cargo run --release --example zone_integrity_audit
//! ```

use dns_crypto::DigestAlg;
use dns_zone::axfr::transfer;
use dns_zone::corrupt::{flip_rrsig_bit, ClockSkew};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::validate::{bitflip_diff, validate_zone};
use dns_zone::zonemd::{compute_zonemd, verify_zonemd};

fn main() {
    let keys = ZoneKeys::from_seed(2023);
    let inception = dns_crypto::validity::timestamp_from_ymd("20231210000000").unwrap();
    let cfg = RootZoneConfig {
        serial: 2023121000,
        tld_count: 50,
        inception,
        expiration: inception + 14 * 86400,
        rollout: RolloutPhase::Validating,
    };

    println!("== 1. zone generation ==");
    let zone = build_root_zone(&cfg, &keys);
    println!(
        "built root zone serial {} with {} records",
        zone.serial().unwrap(),
        zone.len()
    );
    let digest = compute_zonemd(&zone, DigestAlg::Sha384).unwrap();
    println!(
        "SHA-384 ZONEMD digest: {}",
        dns_crypto::hex::to_hex(&digest)
    );

    println!("\n== 2. roll-out phases ==");
    for phase in [
        RolloutPhase::NoRecord,
        RolloutPhase::PrivateAlgorithm,
        RolloutPhase::Validating,
    ] {
        let z = build_root_zone(
            &RootZoneConfig {
                rollout: phase,
                ..cfg.clone()
            },
            &keys,
        );
        println!("  {:?}: verify_zonemd -> {:?}", phase, verify_zonemd(&z));
    }

    println!("\n== 3. AXFR round trip ==");
    let received = transfer(&zone, 0x1234).expect("transfer succeeds");
    println!(
        "transferred {} records; ZONEMD after reassembly: {:?}",
        received.len(),
        verify_zonemd(&received)
    );

    println!("\n== 4. fault injection ==");
    // Bitflip (faulty VP RAM).
    let mut corrupted = received.clone();
    let loc = flip_rrsig_bit(&mut corrupted, 7).unwrap();
    println!(
        "flipped bit {} of byte {} in record #{} ({})",
        loc.bit, loc.byte, loc.record_index, loc.field
    );
    let report = validate_zone(&corrupted, inception + 3600);
    println!(
        "validation issues: {} (expect Bogus Signature + ZONEMD mismatch)",
        report.issues.len()
    );

    // Stale zone (the Tokyo/Leeds d.root case).
    let stale_report = validate_zone(&zone, cfg.expiration + 86400);
    let expired = stale_report
        .issues
        .iter()
        .filter(|i| {
            matches!(
                i,
                dns_zone::validate::ValidationIssue::SignatureExpired { .. }
            )
        })
        .count();
    println!("validating 15 days later: {expired} expired-signature findings");

    // Clock skew (not-incepted).
    let skew = ClockSkew { offset_secs: -5400 };
    let vp_clock = skew.apply(inception + 600);
    let skew_report = validate_zone(&zone, vp_clock);
    println!(
        "VP with 90-min-slow clock right after signing: {} not-incepted findings",
        skew_report
            .issues
            .iter()
            .filter(|i| matches!(
                i,
                dns_zone::validate::ValidationIssue::SignatureNotIncepted { .. }
            ))
            .count()
    );

    println!("\n== 5. Figure 10: the bitflip diff ==");
    match bitflip_diff(&zone, &corrupted) {
        Some(d) => {
            println!("reference: {}", d.reference_line);
            println!("observed : {}", d.observed_line);
        }
        None => println!("(no single-record diff found)"),
    }
}
