//! Export the data series behind every figure as CSV files — for plotting
//! the paper's figures with your tool of choice.
//!
//! ```sh
//! cargo run --release --example export_figures -- /tmp/roots-csv
//! ```

use analysis::clients::ClientAnalysis;
use analysis::colocation::ColocationResult;
use analysis::distance::DistanceResult;
use analysis::export;
use analysis::rtt::RttByRegion;
use analysis::stability::StabilityResult;
use analysis::traffic::BRootShift;
use dns_crypto::validity::timestamp_from_ymd as ts;
use netsim::Family;
use roots_core::{Pipeline, Scale};
use rss::{BRootPhase, RootLetter};
use std::fs;
use std::path::Path;
use traces::flows::DayBucket;
use vantage::records::Target;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures-csv".to_string());
    let out = Path::new(&out_dir);
    fs::create_dir_all(out).expect("create output dir");

    eprintln!("running pipeline (tiny scale)...");
    let p = Pipeline::shared(Scale::Tiny);
    let mut written = Vec::new();
    let mut write = |name: &str, content: String| {
        let path = out.join(name);
        fs::write(&path, content).expect("write CSV");
        written.push(name.to_string());
    };

    // Figure 3.
    write(
        "fig3_stability_ecdf.csv",
        export::stability_csv(&StabilityResult::compute(&p.probes)),
    );
    // Figure 4.
    write(
        "fig4_reduced_redundancy.csv",
        export::colocation_csv(&ColocationResult::compute(&p.probes), &p.world.population),
    );
    // Figure 5 (b.root new + m.root, both families).
    for (letter, phase) in [
        (RootLetter::B, BRootPhase::New),
        (RootLetter::M, BRootPhase::Old),
    ] {
        for family in Family::BOTH {
            let r = DistanceResult::compute(
                &p.world.catalog,
                &p.world.population,
                &p.probes,
                Target {
                    letter,
                    b_phase: phase,
                },
                family,
            );
            write(
                &format!(
                    "fig5_distance_{}_{}.csv",
                    letter.ch(),
                    family.label().to_lowercase()
                ),
                export::distance_csv(&r, 5000),
            );
        }
    }
    // Figures 6/14/15.
    write(
        "fig6_rtt_by_region.csv",
        export::rtt_csv(&RttByRegion::compute(&p.world.population, &p.probes)),
    );
    // Figure 7 (ISP) and 9 (IXPs).
    write(
        "fig7_isp_broot_shift.csv",
        export::broot_shift_csv(&BRootShift::compute(&p.isp_flows)),
    );
    write(
        "fig9_ixp_eu_broot_shift.csv",
        export::broot_shift_csv(&BRootShift::compute(&p.ixp_flows_eu)),
    );
    write(
        "fig9_ixp_na_broot_shift.csv",
        export::broot_shift_csv(&BRootShift::compute(&p.ixp_flows_na)),
    );
    // Figure 8.
    write(
        "fig8_clients_per_day.csv",
        export::clients_csv(&ClientAnalysis::compute(
            &p.isp_flows,
            DayBucket::of(ts("20240205000000").unwrap()),
            DayBucket::of(ts("20240304000000").unwrap()),
        )),
    );

    println!("wrote {} CSV files to {}:", written.len(), out.display());
    for name in written {
        println!("  {name}");
    }
}
