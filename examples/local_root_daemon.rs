//! Local root service walkthrough (RFC 7706/8806) — the application the
//! paper's ZONEMD analysis motivates. Simulates a resolver maintaining a
//! local root copy across several days, with upstreams that go stale or
//! corrupt transfers, and shows the ZONEMD-driven fallback keeping the
//! service healthy.
//!
//! ```sh
//! cargo run --release --example local_root_daemon
//! ```

use dns_zone::corrupt::flip_rrsig_bit;
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use localroot::{LocalRoot, RefreshOutcome, UpstreamSet, ValidationPolicy};
use rss::{RootLetter, RootServer, ServerBehavior};
use std::sync::Arc;

const DAY: u32 = 86_400;
const T0: u32 = 1_701_820_800; // 2023-12-06, ZONEMD validates from here.

fn zone_for_day(day_index: u32, keys: &ZoneKeys) -> dns_zone::Zone {
    let day = T0 + day_index * DAY;
    build_root_zone(
        &RootZoneConfig {
            serial: 2023120600 + day_index * 100,
            tld_count: 12,
            inception: day,
            expiration: day + 14 * DAY,
            rollout: RolloutPhase::Validating,
        },
        keys,
    )
}

fn server(letter: RootLetter, zone: dns_zone::Zone) -> (RootLetter, RootServer) {
    (
        letter,
        RootServer {
            letter,
            identity: Some(format!("{}1.sim", letter.ch())),
            zone: Arc::new(zone),
            behavior: ServerBehavior::default(),
        },
    )
}

fn main() {
    let keys = ZoneKeys::from_seed(2023);
    let mut local = LocalRoot::new(ValidationPolicy::strict());
    println!("local root daemon (strict ZONEMD policy), 5 simulated days\n");

    for day in 0..5u32 {
        let now = T0 + day * DAY + 3600;
        // Day 2: the preferred upstream serves a bit-flipped copy (faulty
        // path/memory). Day 3: it serves a stale zone (the paper's
        // Tokyo/Leeds case). Both must be caught and served around.
        let first = match day {
            2 => {
                let mut z = zone_for_day(day, &keys);
                flip_rrsig_bit(&mut z, 99).unwrap();
                server(RootLetter::A, z)
            }
            3 => server(RootLetter::A, zone_for_day(0, &keys)),
            _ => server(RootLetter::A, zone_for_day(day, &keys)),
        };
        let upstreams = UpstreamSet {
            servers: vec![
                first,
                server(RootLetter::B, zone_for_day(day, &keys)),
                server(RootLetter::K, zone_for_day(day, &keys)),
            ],
        };
        // The operator prefers a.root (say, the nearest instance).
        local.set_primary(0);
        match local.refresh(&upstreams, now) {
            Ok(RefreshOutcome::Updated {
                serial,
                from_upstream,
                attempts,
            }) => println!(
                "day {day}: updated to serial {serial} from upstream #{from_upstream} \
                 ({attempts} attempt{})",
                if attempts == 1 { "" } else { "s" }
            ),
            Ok(RefreshOutcome::AlreadyCurrent { serial }) => {
                println!("day {day}: already current at serial {serial}")
            }
            Err(e) => println!("day {day}: refresh FAILED: {e}"),
        }
        // Serve a few queries from the local copy.
        for tld in ["com", "de", "jp"] {
            let ns = local.delegation(tld, now);
            assert!(ns.is_some(), "{tld} should be delegated");
        }
    }

    println!(
        "\nfinal state: serving={}",
        local.is_serving(T0 + 4 * DAY + 7200)
    );
    println!("metrics: {}", local.metrics.render());
    println!(
        "\nday 2: the preferred letter's bit-flipped copy failed validation and the\n\
         transfer fell back to the next letter (rejected=1, fallbacks=1).\n\
         day 3: the stale primary advertised an old serial, so the newer local copy\n\
         was kept — no regression to expired data. Both are the §7 protections."
    );
}
