//! Anycast explorer: inspect how one vantage point sees the 13 root
//! deployments — selected site, AS path, RTT, and v4-vs-v6 differences —
//! then sweep all VPs to show catchment sizes per letter.
//!
//! ```sh
//! cargo run --release --example anycast_explorer            # first EU VP
//! cargo run --release --example anycast_explorer -- 42      # VP by index
//! ```

use netsim::{Family, RttModel};
use rss::RootLetter;
use vantage::population::VpId;
use vantage::{World, WorldBuildConfig};

fn main() {
    let vp_index: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);

    println!("building world (full deployment scale)...");
    let world = World::build(&WorldBuildConfig::default());
    let vp = world
        .population
        .get(VpId(vp_index.min(world.population.len() as u32 - 1)));
    println!(
        "VP {} in {} ({}, {})\n",
        vp.name,
        world.topology.node(vp.asn).name,
        vp.region,
        world.topology.node(vp.asn).city.name
    );

    let rtt_model = RttModel::default();
    println!("letter      | family | site (city)            | path len | base RTT");
    for letter in RootLetter::ALL {
        for family in Family::BOTH {
            if family == Family::V6 && !vp.has_v6 {
                continue;
            }
            let table = world.routes(letter, family);
            match table.best(vp.asn) {
                Some(route) => {
                    let site = world.catalog.site(letter, route.site);
                    let rtt = rtt_model.base_rtt_ms(
                        &world.topology,
                        &world.catalog.facilities,
                        vp.coord,
                        route,
                        site.facility,
                    );
                    println!(
                        "{:11} | {:6} | {:22} | {:8} | {:7.1} ms",
                        letter.label(),
                        family.label(),
                        format!("{} ({})", site.city.name, site.region),
                        route.path_len(),
                        rtt
                    );
                }
                None => println!("{:11} | {:6} | unreachable", letter.label(), family.label()),
            }
        }
    }

    // Catchment summary: how many distinct sites actually attract VPs,
    // through the shared analysis accumulator.
    println!(
        "\ncatchment summary over all {} VPs (IPv4):",
        world.population.len()
    );
    for letter in RootLetter::ALL {
        let table = world.routes(letter, Family::V4);
        let mut accum = analysis::CatchmentAccum::new();
        for vp in world.population.vps() {
            accum.observe(
                vp.region,
                Family::V4,
                table.best(vp.asn).map(|r| r.site.0),
                None,
            );
        }
        println!(
            "  {}: {:3} of {:3} sites attract VPs ({} VPs unreachable)",
            letter.label(),
            accum.distinct_sites(),
            world.catalog.deployment(letter).sites.len(),
            accum.lost()
        );
    }
}
