//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release --example paper_report            # small scale
//! cargo run --release --example paper_report -- tiny    # fastest
//! cargo run --release --example paper_report -- paper   # full resolution
//! cargo run --release --example paper_report -- small fig7 fig9   # subset
//! ```

use roots_core::{experiments, Pipeline, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.first().map(String::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("paper") => Scale::Paper,
        _ => Scale::Small,
    };
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| a.starts_with("table") || a.starts_with("fig") || a.starts_with("sec"))
        .collect();

    eprintln!("running pipeline at {scale:?} scale (this does the full measurement once)...");
    let start = std::time::Instant::now();
    let pipeline = Pipeline::shared(scale);
    eprintln!(
        "pipeline done in {:.1}s: {} probes, {} transfers",
        start.elapsed().as_secs_f64(),
        pipeline.probes.len(),
        pipeline.transfers.len()
    );

    if ids.is_empty() {
        print!("{}", experiments::run_all(pipeline));
    } else {
        for id in ids {
            match experiments::run_one(pipeline, id) {
                Some(out) => println!("==== {id} ====\n{out}"),
                None => eprintln!("unknown experiment id: {id}"),
            }
        }
    }
}
