//! What-if deployment planner report: a seeded 1000-candidate sweep over
//! b.root's deployment — site additions, removals, re-homings, prefix
//! renumberings, peering-link changes, and composed multi-step plans —
//! each scored against the steady-state baseline (per-region RTT delta,
//! catchment locality, assignment churn), ranked, and reduced to a
//! deterministic Pareto frontier with per-region top-k tables. A second,
//! smaller sweep is scored *through* a b.root site-outage timeline
//! (simclock-pinned mode), judging each plan by its worst epoch.
//!
//! ```sh
//! cargo run --release --example planner_report
//! ```
//!
//! The final line is machine-greppable: `planner invariants: OK (...)` on
//! success; any violation prints `planner invariants: FAILED ...` and
//! exits non-zero. The invariants: the evaluation baseline is bit-
//! identical to the world's own routing, the identity candidate scores
//! exactly zero on every axis, and the full sweep reproduces the same
//! score fingerprint for every worker count 1..=5.

use planner::MoveSetConfig;
use roots_core::{PlannerRun, Scale};
use scenario::{EventKind, Scenario, ScenarioEvent};
use std::process::ExitCode;
use vantage::MEASUREMENT_START;

fn main() -> ExitCode {
    let cfg = MoveSetConfig::default();
    println!(
        "planner report: {} seeded candidates against {}.root (seed {:#x}, ≤{} moves each)",
        cfg.count,
        cfg.letter.ch(),
        cfg.seed,
        cfg.max_steps,
    );
    let run = PlannerRun::run(Scale::Tiny, &cfg, 4);
    let mut violations: Vec<String> = Vec::new();

    // The baseline the deltas are measured against must be the world's own
    // routing ground truth, bit-for-bit.
    if !run.context().baseline_matches_world() {
        violations.push("evaluation baseline diverged from the world's routing".into());
    }

    // The identity candidate is the sweep's fixed point: exactly zero.
    match run.report.score(0) {
        Some(s) if s.delta.is_zero() && s.churn == 0.0 => {}
        Some(s) => violations.push(format!(
            "identity candidate scored nonzero (ΔRTT {}, churn {})",
            s.delta.rtt_combined(),
            s.churn
        )),
        None => violations.push("identity candidate missing from the sweep".into()),
    }

    // Bit-identical scores, ranking, and frontier for every worker count.
    let reference = run.scores_fingerprint();
    for workers in 1..=5 {
        if run.rescore_fingerprint(workers) != reference {
            violations.push(format!("sweep diverged at {workers} workers"));
        }
    }

    println!();
    println!("{}", run.render(3));

    println!("ranking (best 10 of {}):", run.report.scores.len());
    for &id in run.report.ranking.iter().take(10) {
        let s = run.report.score(id).expect("ranked id is in the sweep");
        println!(
            "  #{:<5} ΔRTT {:>+8.3} ms  Δlocality {:>+7.4}  churn {:>5.3}  {}",
            s.id,
            s.delta.rtt_combined(),
            s.delta.locality,
            s.churn,
            s.label
        );
    }

    // Timeline mode: the same move set, scored through a week-long b.root
    // site outage — "does the placement still hold during the window?".
    let site = run.world.catalog.deployment(cfg.letter).sites[0].id;
    let start = MEASUREMENT_START;
    let end = start + 21 * 86_400;
    let scenario = Scenario::new(
        "planner_b_outage",
        0x9_1A28,
        vec![ScenarioEvent {
            at: start + 7 * 86_400,
            until: Some(start + 14 * 86_400),
            kind: EventKind::SiteOutage {
                letter: cfg.letter,
                site,
            },
        }],
    )
    .expect("outage scenario is valid");
    let tl_cfg = MoveSetConfig {
        count: 120,
        ..cfg.clone()
    };
    let tl = PlannerRun::run_through(Scale::Tiny, &tl_cfg, 3, &scenario, start, end);
    if tl.rescore_fingerprint(1) != tl.scores_fingerprint()
        || tl.rescore_fingerprint(5) != tl.scores_fingerprint()
    {
        violations.push("timeline sweep diverged across worker counts".into());
    }
    if !tl.report.scores.iter().all(|s| s.worst_epoch.is_some()) {
        violations.push("timeline sweep missing worst-epoch scores".into());
    }
    println!(
        "\ntimeline sweep: {} candidates through '{}' — worst epochs (best 5):",
        tl.report.scores.len(),
        scenario.name()
    );
    for &id in tl.report.ranking.iter().take(5) {
        let s = tl.report.score(id).expect("ranked id is in the sweep");
        let worst = s.worst_epoch.as_ref().expect("timeline mode sets it");
        println!(
            "  #{:<5} worst ΔRTT {:>+8.3} ms in {:<40} {}",
            s.id,
            worst.delta.rtt_combined(),
            worst.label,
            s.label
        );
    }

    if violations.is_empty() {
        println!(
            "\nplanner invariants: OK (candidates={} workers=1..=5 frontier={} \
             timeline_candidates={} epochs={})",
            run.report.scores.len(),
            run.report.frontier.len(),
            tl.report.scores.len(),
            tl.context().epoch_count(),
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        println!(
            "planner invariants: FAILED ({} violations)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
