//! Clock-chaos demo: one scenario, one virtual clock, three time
//! consumers.
//!
//! The built-in `clock-blackhole` scenario darkens every refresh
//! upstream — and one site of the serving fleet — for the first five
//! virtual seconds. Everything runs on a single `simclock` axis:
//!
//! * the serving fleet answers a pinned-arrival query load (one query
//!   per virtual ms), so exactly the queries arriving inside the outage
//!   window hit dead air — on any worker count;
//! * the localroot refresh client backs off on the shared clock, and the
//!   backoff waits alone carry it across the window: its retry budget
//!   times out inside the blackhole, but by the time the budget's last
//!   attempts fire, waiting has moved the clock past 5000 ms and the
//!   upstreams are back. Under the old split clocks (one private tick
//!   per exchange, waits invisible) this escape was impossible.
//!
//! ```sh
//! cargo run --release --example clock_chaos_demo
//! ```
//!
//! The final line is machine-greppable: `clock chaos invariants: OK
//! (...)` on success; any violation prints `clock chaos invariants:
//! FAILED ...` and exits non-zero.

use roots_core::{ClockChaosRun, Scale};
use rss::RootLetter;
use std::process::ExitCode;

const WINDOW_MS: u64 = 5_000;
const QUERIES: usize = 8_000;

fn main() -> ExitCode {
    let letter = RootLetter::B;
    let scenario = ClockChaosRun::demo_scenario(Scale::Tiny, letter);
    println!(
        "clock chaos: scenario '{}' — {} events, blackhole window [0, {WINDOW_MS}) ms on one axis",
        scenario.name(),
        scenario.events().len(),
    );
    for e in scenario.events() {
        println!(
            "  event {:<14} wall [{}, {}) -> virtual [{}, {}) ms",
            e.kind.label(),
            e.at,
            e.effective_until(),
            0,
            WINDOW_MS,
        );
    }

    let a = ClockChaosRun::run(Scale::Tiny, letter, &scenario, QUERIES, 2);
    println!(
        "\nserving fleet ({} queries, 1/virtual ms, pinned arrivals):",
        QUERIES
    );
    println!(
        "  responses={} timeouts={} retries={} unanswered={} blackholed={}",
        a.load.responses,
        a.load.timeouts,
        a.load.retries,
        a.load.unanswered,
        a.load.fault_counters.blackholed,
    );
    println!("refresh client (6 attempts, 200 ms timeout, shared clock):");
    println!(
        "  outcome={:?} timeouts={} retries={} backoff_ms={}",
        a.refresh,
        a.refresh_metrics.timeouts,
        a.refresh_metrics.retries,
        a.refresh_metrics.backoff_ms_total,
    );
    println!(
        "  backoff schedule (start_ms, wait_ms): {:?}",
        a.backoff_log
    );
    println!(
        "  clock ended at {} ms (window was {} ms)",
        a.clock_ms, WINDOW_MS
    );

    let mut violations: Vec<String> = Vec::new();
    if a.refresh.is_err() {
        violations.push(format!("refresh failed: {:?}", a.refresh));
    }
    if a.clock_ms < WINDOW_MS {
        violations.push(format!(
            "clock ended at {} ms, inside the {} ms window",
            a.clock_ms, WINDOW_MS
        ));
    }
    if a.refresh_metrics.timeouts == 0 {
        violations.push("refresh saw no timeouts — the window never applied".into());
    }
    if a.backoff_log.is_empty() {
        violations.push("no backoff waits were taken on the shared clock".into());
    }
    if !a.serving {
        violations.push("refreshed copy is not serving at the final wall time".into());
    }
    if a.load.timeouts == 0 || a.load.fault_counters.blackholed == 0 {
        violations.push("the outage window never hit the serving fleet's queries".into());
    }

    // Replay bit-identity: same run again, then a different loadgen
    // worker count — pinned arrivals make partitioning invisible.
    let b = ClockChaosRun::run(Scale::Tiny, letter, &scenario, QUERIES, 2);
    if a.fingerprint() != b.fingerprint() {
        violations.push("replay diverged between identical runs".into());
    }
    let c = ClockChaosRun::run(Scale::Tiny, letter, &scenario, QUERIES, 5);
    if a.fingerprint() != c.fingerprint() {
        violations.push("replay diverged across worker counts (2 vs 5)".into());
    }

    if violations.is_empty() {
        println!(
            "\nclock chaos invariants: OK (escaped_at={}ms backoffs={} load_timeouts={} replays=3)",
            a.clock_ms,
            a.backoff_log.len(),
            a.load.timeouts,
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        println!(
            "clock chaos invariants: FAILED ({} violations)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
