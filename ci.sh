#!/usr/bin/env bash
# Tier-1 CI gate for the roots workspace (offline: all deps vendored
# under vendor/, see Cargo.toml).
#
#   1. release build of every crate;
#   2. full test suite;
#   3. examples build + smoke runs (tiny scale, temp output dirs);
#   4. bench smoke run refreshing the committed BENCH_results.json,
#      followed by the bench_guard regression gate (fails on >25%
#      regression of rootd/loadgen/qps, rootd/serve_*, or codec/* vs the
#      committed baseline);
#   5. rustdoc with warnings promoted to errors;
#   6. formatting check;
#   7. clippy with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline

cargo build --release --offline --examples
figdir="$(mktemp -d)"
trap 'rm -rf "$figdir"' EXIT
cargo run -q --release --offline --example quickstart > /dev/null
cargo run -q --release --offline --example paper_report -- tiny > /dev/null
cargo run -q --release --offline --example zone_integrity_audit > /dev/null
cargo run -q --release --offline --example local_root_daemon > /dev/null
cargo run -q --release --offline --example anycast_explorer > /dev/null
cargo run -q --release --offline --example broot_renumbering > /dev/null
cargo run -q --release --offline --example export_figures -- "$figdir" > /dev/null
cargo run -q --release --offline --example scenario_report > /dev/null
cargo run -q --release --offline --example rootd_bench -- tiny 20000 > /dev/null
# Chaos smoke: sweep the fault matrix at a fixed seed and require the
# machine-readable invariant summary (corrupt copies never activate,
# convergence, SOA-bounded staleness, deterministic replay).
cargo run -q --release --offline --example chaos_report -- 49374 > "$figdir/chaos.txt"
grep -q "chaos invariants: OK" "$figdir/chaos.txt"
# Virtual-clock smoke: serving load, scenario fault windows, and refresh
# backoff co-executed on one clock — refresh must escape the blackhole by
# backing off, and the whole run must replay bit-identically across
# worker counts.
cargo run -q --release --offline --example clock_chaos_demo > "$figdir/clock_chaos.txt"
grep -q "clock chaos invariants: OK" "$figdir/clock_chaos.txt"
# Adversarial-traffic smoke: the demo attack scenario against a
# rate-limited fleet — legit service must hold through every flood
# window, delivered answers must match the unlimited twin byte for byte,
# and the run must replay identically across worker counts.
cargo run -q --release --offline --example attack_report > "$figdir/attack.txt"
grep -q "attack invariants: OK" "$figdir/attack.txt"
# Planner smoke: a 1000-candidate what-if sweep over b.root — the
# baseline must match the world's routing bit-for-bit, the identity
# candidate must score exactly zero, and scores/ranking/frontier must be
# identical for every worker count 1..=5.
cargo run -q --release --offline --example planner_report > "$figdir/planner.txt"
grep -q "planner invariants: OK" "$figdir/planner.txt"
# Serving-farm smoke: a scaled-down constellation (2 letters × 4 sites)
# under catchment-steered load through the batched datagram path — the
# report's counters must be internally consistent and the whole run must
# replay bit-identically across shard counts.
cargo run -q --release --offline --example farm_report > "$figdir/farm.txt"
grep -q "farm invariants: OK" "$figdir/farm.txt"
# Self-healing-farm smoke: three concurrent site failures, a stalled
# shard, a poisoned reload and a junk flood against the health-checked
# farm — ≥99% of legit queries served, every answer byte-identical to
# the fault-free twin, the poisoned push refused, both crashes recovered
# within the backoff budget, and the whole run fingerprint-identical
# across 1..=8 shards and seed-sensitive.
cargo run -q --release --offline --example farm_chaos_report > "$figdir/farm_chaos.txt"
grep -q "farm chaos invariants: OK" "$figdir/farm_chaos.txt"

# Bench smoke: every bench target runs end to end and merges its numbers
# into the committed BENCH_results.json, including the rootd loadgen's
# million-query throughput/latency figures (a few seconds of wall clock).
# The committed file is snapshotted first so bench_guard can diff the
# fresh numbers against what the branch shipped with.
cp BENCH_results.json "$figdir/bench_baseline.json"
BENCH_RESULTS_PATH="$PWD/BENCH_results.json" cargo bench --offline -q > /dev/null
cargo run -q --release --offline -p bench --bin bench_guard -- \
    "$figdir/bench_baseline.json" BENCH_results.json

RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --quiet

cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "ci: all gates green"
