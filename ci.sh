#!/usr/bin/env bash
# Tier-1 CI gate for the roots workspace (offline: all deps vendored
# under vendor/, see Cargo.toml).
#
#   1. release build of every crate;
#   2. full test suite;
#   3. formatting check;
#   4. clippy with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "ci: all gates green"
