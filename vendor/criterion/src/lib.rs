//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API used by this workspace's
//! benches (`harness = false` binaries): `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! per-input benches, and `Bencher::iter` / `iter_batched`. Each bench
//! runs a short calibrated loop and prints a mean wall-clock time per
//! iteration — enough to track perf trajectories without the statistics
//! machinery of the real crate.
//!
//! Besides the human-readable lines, every measured mean is accumulated
//! in-process and flushed by [`write_results`] (called from
//! `criterion_main!`) into a machine-readable `BENCH_results.json` — a
//! flat `{"bench label": mean_ns_per_iter}` map, merged across the bench
//! binaries of a `cargo bench` invocation. Set `BENCH_RESULTS_PATH` to
//! redirect the file.

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-exported opaque-value helper; defeats constant folding well enough
/// for coarse timing.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group (printed, not
/// otherwise interpreted).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stand-in always
/// runs one batch per measured iteration, so these only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Total measured time and iteration count for the closure just run.
    elapsed: Duration,
    iters: u64,
    target_iters: u64,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.target_iters;
    }

    /// Time `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.target_iters;
    }

    /// Like [`iter_batched`](Self::iter_batched) but the routine borrows
    /// the setup product mutably.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.target_iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.target_iters;
    }
}

/// One recorded value: a timed/measured mean (float, printed with one
/// decimal) or an exact event counter (integer, printed verbatim so runs
/// can be diffed without float-formatting drift).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Recorded {
    Mean(f64),
    Count(u64),
}

impl fmt::Display for Recorded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recorded::Mean(v) => write!(f, "{v:.1}"),
            Recorded::Count(v) => write!(f, "{v}"),
        }
    }
}

impl Recorded {
    fn as_f64(self) -> f64 {
        match self {
            Recorded::Mean(v) => v,
            Recorded::Count(v) => v as f64,
        }
    }
}

/// Results accumulated by every [`run_bench`] call in this process.
fn results() -> &'static Mutex<Vec<(String, Recorded)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, Recorded)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record an externally measured metric (a throughput, a quantile — not a
/// timed closure) under `label`, merged into `BENCH_results.json` alongside
/// the bench means by [`write_results`]. Lets a bench publish numbers it
/// computed itself, e.g. a load generator's qps and latency quantiles.
pub fn record_metric(label: &str, value: f64) {
    println!("{label:<50} {value:>14.1}  (recorded)");
    results()
        .lock()
        .unwrap()
        .push((label.to_string(), Recorded::Mean(value)));
}

/// Record an exact event counter (a hit count, a query total) under
/// `label`. Counters are written to `BENCH_results.json` as bare integers
/// — no float formatting — so equal counts produce byte-equal lines
/// across runs.
pub fn record_counter(label: &str, value: u64) {
    println!("{label:<50} {value:>14}  (counted)");
    results()
        .lock()
        .unwrap()
        .push((label.to_string(), Recorded::Count(value)));
}

/// Flush the accumulated means to `BENCH_results.json` (or the path in
/// `BENCH_RESULTS_PATH`), merging with any existing file so the bench
/// binaries of one `cargo bench` run build up a single map. Labels are
/// unique per run; a re-measured label overwrites its old entry.
pub fn write_results() {
    let recorded = results().lock().unwrap();
    if recorded.is_empty() {
        return;
    }
    let path =
        std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| "BENCH_results.json".to_string());
    let mut merged: Vec<(String, Recorded)> = std::fs::read_to_string(&path)
        .map(|s| parse_recorded(&s))
        .unwrap_or_default();
    for (label, value) in recorded.iter() {
        match merged.iter_mut().find(|(l, _)| l == label) {
            Some(slot) => slot.1 = *value,
            None => merged.push((label.clone(), *value)),
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (label, value)) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        out.push_str(&format!("  \"{label}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Parse the flat `{"label": value}` map this crate writes, as floats
/// (counters are widened). Labels never contain quotes, so a
/// line-oriented scan is exact for our own output (anything unparseable
/// is skipped). Public so tooling (e.g. a bench regression guard) can
/// read `BENCH_results.json` back without a JSON dependency.
pub fn parse_results(s: &str) -> Vec<(String, f64)> {
    parse_recorded(s)
        .into_iter()
        .map(|(label, value)| (label, value.as_f64()))
        .collect()
}

/// Type-preserving parse: a value with no decimal point comes back as a
/// counter, anything else as a mean, so re-merging keeps formatting.
fn parse_recorded(s: &str) -> Vec<(String, Recorded)> {
    s.lines()
        .filter_map(|line| {
            let (key, value) = line.trim().strip_prefix('"')?.split_once("\":")?;
            let value = value.trim().trim_end_matches(',');
            let recorded = if value.contains('.') {
                Recorded::Mean(value.parse().ok()?)
            } else {
                Recorded::Count(value.parse().ok()?)
            };
            Some((key.to_string(), recorded))
        })
        .collect()
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, mut f: F) {
    // Calibration pass: find an iteration count that runs long enough to
    // time meaningfully but keeps the whole bench fast (~tens of ms).
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        target_iters: 1,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(20);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, sample_size as u128) as u64;

    // Best of three measured passes: on a shared/virtualized host,
    // scheduler preemption and CPU steal only ever inflate a pass, so
    // the minimum mean is the most faithful estimate and keeps the
    // recorded numbers stable enough to gate regressions on.
    bencher.target_iters = iters;
    let mut mean = f64::INFINITY;
    for _ in 0..3 {
        f(&mut bencher);
        mean = mean.min(bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64);
    }
    println!(
        "{label:<50} {:>12} /iter  ({} iters)",
        fmt_nanos(mean),
        bencher.iters
    );
    results()
        .lock()
        .unwrap()
        .push((label.to_string(), Recorded::Mean(mean)));
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
#[derive(Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Configure-and-return hook kept for API compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: group_name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Upstream prints a final summary; nothing to do here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_sample_size(&self) -> u64 {
        self.sample_size.unwrap_or(self.parent.sample_size)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.effective_sample_size(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {
        if let Some(tp) = self.throughput {
            println!("{} throughput basis: {tp:?}", self.name);
        }
    }
}

/// Declare a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(10);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input_runs() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("f", 64), &64u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    #[test]
    fn parse_results_roundtrips_own_format() {
        let written = "{\n  \"a/b\": 12.5,\n  \"zone/build\": 1234567.0\n}\n";
        let parsed = parse_results(written);
        assert_eq!(
            parsed,
            vec![
                ("a/b".to_string(), 12.5),
                ("zone/build".to_string(), 1_234_567.0)
            ]
        );
        // Junk lines are skipped, not fatal.
        assert!(parse_results("not json at all").is_empty());
    }

    #[test]
    fn counters_stay_integral_through_parse_and_format() {
        let written = "{\n  \"cache/hits\": 987654,\n  \"serve/soa\": 926.9\n}\n";
        let parsed = parse_recorded(written);
        assert_eq!(
            parsed,
            vec![
                ("cache/hits".to_string(), Recorded::Count(987_654)),
                ("serve/soa".to_string(), Recorded::Mean(926.9)),
            ]
        );
        // Re-formatting a parsed counter reproduces the original line:
        // no ".0" suffix ever appears, so equal counts diff clean.
        assert_eq!(parsed[0].1.to_string(), "987654");
        assert_eq!(parsed[1].1.to_string(), "926.9");
        assert_eq!(parse_results(written)[0].1, 987_654.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
