//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small self-consistent serialization framework under serde's names:
//! types serialize into a JSON-shaped [`Value`] tree and deserialize back
//! out of one. `#[derive(Serialize, Deserialize)]` comes from the sibling
//! `serde_derive` stand-in and follows upstream serde's data model for the
//! shapes this workspace uses:
//!
//! * named-field structs → objects;
//! * newtype structs → the inner value;
//! * unit enum variants → `"Variant"` strings;
//! * struct/newtype enum variants → `{"Variant": payload}` objects.
//!
//! Numbers are kept as their literal text ([`Value::Num`]) so `u64` values
//! above 2^53 round-trip losslessly.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number, kept as its literal text (lossless for all of u64/i64/f64).
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error with `msg`.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The `'de` lifetime mirrors upstream serde's trait shape so bounds like
/// `for<'de> Deserialize<'de>` written against real serde keep compiling.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error::custom(format!("invalid {}: {s:?} ({e})", stringify!($t)))
                    }),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // `{:?}` is Rust's shortest round-trip float formatting.
                Value::Num(format!("{self:?}"))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error::custom(format!("invalid {}: {s:?} ({e})", stringify!($t)))
                    }),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

/// Static strings deserialize by leaking the owned copy. This exists so
/// `#[derive(Deserialize)]` on structs holding `&'static str` database
/// references compiles; such structs are rebuilt rarely (if ever), so the
/// leak is bounded and intentional.
impl<'de> Deserialize<'de> for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

/// Helpers the derive macros expand to. Not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetch and deserialize object field `key`. Missing keys are an error
    /// (matching upstream serde's derive for fields without `#[serde(default)]`),
    /// except that `Option` fields tolerate absence because a missing key
    /// deserializes from the injected `Null`.
    pub fn obj_field<'de, T: Deserialize<'de>>(v: &Value, key: &str) -> Result<T, Error> {
        let Value::Obj(entries) = v else {
            return Err(Error::custom(format!("expected object, got {v:?}")));
        };
        match entries.iter().find(|(k, _)| k == key) {
            Some((_, field)) => {
                T::from_value(field).map_err(|e| Error::custom(format!("field {key:?}: {e}")))
            }
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field {key:?}"))),
        }
    }

    /// Split an enum value into `(variant_name, payload)`.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(tag) => Ok((tag, None)),
            Value::Obj(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
            other => Err(Error::custom(format!(
                "expected enum (string or single-key object), got {other:?}"
            ))),
        }
    }

    /// Error for an unrecognized variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error::custom(format!("unknown {ty} variant {tag:?}"))
    }

    /// Error for a variant that required a payload but got none.
    pub fn missing_payload(ty: &str, tag: &str) -> Error {
        Error::custom(format!("{ty}::{tag} requires a payload"))
    }

    /// Index into an array payload (tuple structs/variants).
    pub fn arr_item<'de, T: Deserialize<'de>>(v: &Value, idx: usize) -> Result<T, Error> {
        let Value::Arr(items) = v else {
            return Err(Error::custom(format!("expected array, got {v:?}")));
        };
        let item = items
            .get(idx)
            .ok_or_else(|| Error::custom(format!("missing tuple element {idx}")))?;
        T::from_value(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn u64_precision_preserved() {
        let big: u64 = u64::MAX - 1;
        let back: u64 = Deserialize::from_value(&big.to_value()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for f in [0.1f64, 1e300, -2.5, 123456.789] {
            let back: f64 = Deserialize::from_value(&f.to_value()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn missing_field_is_error_but_missing_option_is_none() {
        let obj = Value::Obj(vec![("a".into(), Value::Num("1".into()))]);
        assert!(__private::obj_field::<u32>(&obj, "b").is_err());
        let opt: Option<u32> = __private::obj_field(&obj, "b").unwrap();
        assert_eq!(opt, None);
    }
}
