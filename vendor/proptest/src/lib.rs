//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter_map`,
//! ranges and `any::<T>()` as strategies, `Just`, `prop_oneof!`,
//! `proptest::collection::{vec, btree_set}`, simple regex string
//! strategies (`"[a-z]{2,8}"`), tuple strategies, and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   per-test seed; cases are deterministic per (test name, case index),
//!   so failures reproduce exactly on re-run.
//! * **Deterministic seeding.** Upstream seeds from the OS; this stand-in
//!   hashes the test name, so CI runs are reproducible.
//! * Default case count is 64 (upstream 256) to keep the suite fast.

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------- rng

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

// ----------------------------------------------------------------- errors

/// Failure raised by `prop_assert*!` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Construct a failure with `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// --------------------------------------------------------------- strategy

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`, retrying otherwise.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keep only values passing `f`, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// How many resamples a filter gets before giving up. Generous because
/// rejection rates in this workspace's strategies are low.
const FILTER_RETRIES: usize = 1000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retries exhausted: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retries exhausted: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the alternatives; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// ----------------------------------------------------------- range/scalar

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Hit the endpoints occasionally: inclusive float ranges are used
        // for probabilities where p == 0 and p == 1 are the edge cases.
        let (lo, hi) = (*self.start(), *self.end());
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + rng.next_f64() * (hi - lo),
        }
    }
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy yielding arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

// ------------------------------------------------------------ collections

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec` of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of `element` with a size drawn from `size`. If the
    /// element domain is too small to reach the drawn size, yields as many
    /// distinct elements as a bounded number of draws produced.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end - self.size.start;
            let want = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < want && attempts < want * 100 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn vec_len_in_range() {
            let s = vec(0u8..255, 3..7);
            let mut rng = TestRng::new(1);
            for _ in 0..200 {
                let v = s.sample(&mut rng);
                assert!((3..7).contains(&v.len()));
            }
        }

        #[test]
        fn btree_set_is_distinct() {
            let s = btree_set(0u32..1000, 5..10);
            let mut rng = TestRng::new(2);
            let set = s.sample(&mut rng);
            assert!((5..10).contains(&set.len()));
        }
    }
}

// ------------------------------------------------------- regex strategies

/// `&str` strategies: the string is a regex-like pattern; sampling yields
/// a random matching string. Supports literals, `[...]` classes with
/// ranges, and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the subset
/// this workspace's tests use; `*`/`+` cap at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal.
        let atom: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = parse_class(&chars[i + 1..close]);
                i = close + 1;
                class
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().unwrap_or('\\');
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat lower bound"),
                        n.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("repeat count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let n = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        for _ in 0..n {
            out.push(atom[rng.below(atom.len())]);
        }
    }
    out
}

/// Expand a character class body (`a-z0-9_`) into its members.
fn parse_class(body: &[char]) -> Vec<char> {
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            for c in lo..=hi {
                members.push(char::from_u32(c).expect("class range"));
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    assert!(!members.is_empty(), "empty character class");
    members
}

// ----------------------------------------------------------------- macros

/// Define property tests. See crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a report, like upstream.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// `prop::collection::...` paths used by some suites.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::sample(&(b'a'..=b'z'), &mut rng);
            assert!(w.is_ascii_lowercase());
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_pattern_strategy_matches_shape() {
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{2,8}", &mut rng);
            assert!((2..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_union_covers_all_arms() {
        let mut rng = TestRng::new(5);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = TestRng::new(6);
        let s = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0u8..10, 1..5), x in 0.0f64..=1.0) {
            prop_assert!(!v.is_empty());
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
