//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! poison-free API (`lock()` returns the guard directly). A poisoned std
//! lock means a writer panicked mid-critical-section; matching
//! `parking_lot`, we ignore the poison flag and hand out the guard.

use std::sync::{self, PoisonError};

/// Poison-free mutex with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
