//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 API (closures receive the
//! scope handle, the result is a `thread::Result` carrying any worker
//! panic payload) implemented over `std::thread::scope`, which has
//! provided equivalent soundness guarantees since Rust 1.63.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Result of a scoped run: `Err` carries the first worker panic payload.
pub type ScopeResult<T> = thread::Result<T>;

/// Scope handle passed to [`scope`] closures and to spawned workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker. As in crossbeam 0.8, the worker closure receives
    /// the scope handle so it can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a spawned scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the worker, returning its result or panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// all workers are joined before this returns. A worker panic is reported
/// as `Err` (crossbeam semantics) instead of resuming the unwind.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, matching the upstream layout.
pub mod thread_mod {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        scope(|s| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                s.spawn(move |_| sums.lock().unwrap().push(chunk.iter().sum::<u64>()));
            }
        })
        .expect("no worker panicked");
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }

    #[test]
    fn worker_panic_is_err_not_unwind() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let r = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
