//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `bytes` it actually uses: a growable byte
//! buffer ([`BytesMut`]) and the [`BufMut`] write trait. Semantics match
//! upstream for this subset (big-endian integer writes, deref to `[u8]`).

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consume the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write-side buffer trait (the subset of `bytes::BufMut` used here).
/// Integer writes are big-endian, as on the wire.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_slice(b"xy");
        assert_eq!(
            &b[..],
            &[0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef, b'x', b'y']
        );
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn index_mut_patches_in_place() {
        let mut b = BytesMut::new();
        b.put_u16(0);
        b[0] = 0x7f;
        assert_eq!(b.to_vec(), vec![0x7f, 0]);
    }
}
