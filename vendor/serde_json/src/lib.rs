//! Offline stand-in for `serde_json`.
//!
//! JSON text encoding/decoding over the vendored `serde` stand-in's
//! [`Value`] tree: `to_string`/`to_writer`/`to_vec` on the
//! write side, `from_str`/`from_slice` on the read side. The emitted JSON
//! is standard (RFC 8259); numbers pass through as literal text so every
//! `u64` round-trips exactly.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("io: {e}")))
}

/// Deserialize a `T` from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("utf8: {e}")))?;
    from_str(s)
}

// -------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(text) => out.push_str(text),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate now so garbage fails at parse time, not field time.
        text.parse::<f64>()
            .map_err(|_| Error::new(format!("invalid number {text:?}")))?;
        Ok(Value::Num(text.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // library's writer; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("utf8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']', got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}', got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\tey\u{1F600}z";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1u64, u64::MAX, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
