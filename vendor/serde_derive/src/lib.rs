//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` stand-in's value-tree data model. Implemented directly
//! on `proc_macro` token trees (no syn/quote available offline); the
//! generated code is assembled as source text and re-parsed.
//!
//! Supported input shapes — the ones this workspace derives on:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialize as the inner value);
//! * enums with unit, newtype/tuple, and struct variants.
//!
//! Generic type parameters are not supported (nothing in the workspace
//! derives serde traits on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum; each variant is (name, fields).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive stand-in produced invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stand-in: generic type {name} is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::Tuple(count_tuple_fields(g.stream()))))
            }
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("expected enum body for {name}, got {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for {other} {name}")),
    }
}

/// Advance past `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected ':' after {field}, got {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(field);
    }
    Ok(fields)
}

/// Skip a type expression, stopping after the `,` that ends this field
/// (or at end of stream). Tracks `<...>` nesting so commas inside
/// generic arguments don't terminate the field.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Count the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        count += 1;
        skip_attrs_and_vis(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vshape)| match vshape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?}))"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Obj(vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(x0))])"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Arr(vec![{items}]))])",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Obj(vec![{entries}]))])",
                            entries = entries.join(", "),
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::obj_field(v, {f:?})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::arr_item(v, {i})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vshape)| match vshape {
                    VariantShape::Unit => {
                        format!("{v:?} => ::std::result::Result::Ok({name}::{v})")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{v:?} => {{\n\
                             let p = payload.ok_or_else(|| \
                                 ::serde::__private::missing_payload({name:?}, {v:?}))?;\n\
                             ::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(p)?))\n\
                         }}"
                    ),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::arr_item(p, {i})?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let p = payload.ok_or_else(|| \
                                     ::serde::__private::missing_payload({name:?}, {v:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{v}({items}))\n\
                             }}",
                            items = items.join(", "),
                        )
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::obj_field(p, {f:?})?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                                 let p = payload.ok_or_else(|| \
                                     ::serde::__private::missing_payload({name:?}, {v:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                             }}",
                            inits = inits.join(", "),
                        )
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = ::serde::__private::variant(v)?;\n\
                 let _ = &payload;\n\
                 match tag {{\n\
                     {arms},\n\
                     other => ::std::result::Result::Err(\
                         ::serde::__private::unknown_variant({name:?}, other)),\n\
                 }}",
                arms = arms.join(",\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
