//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range`, `gen`, `gen_bool` — over a SplitMix64 core. Streams
//! are deterministic per seed but do **not** match upstream `StdRng`
//! (ChaCha12); nothing in the workspace pins upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// The successor of `v` (for inclusive upper bounds); None at type max.
    fn successor(v: Self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Multiply-shift; bias is negligible for the simulation-sized
                // spans used here (same approach as netsim::SimRng).
                let r = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + r
            }
            fn successor(v: Self) -> Option<Self> {
                v.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn successor(v: Self) -> Option<Self> {
        // Inclusive float ranges sample the half-open range; the endpoint
        // has measure zero, matching upstream closely enough for tests.
        Some(v)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        match T::successor(hi) {
            Some(hi_open) => T::sample_half_open(rng, lo, hi_open),
            None => T::sample_half_open(rng, lo, hi),
        }
    }
}

/// Types with a canonical "uniform over the whole domain" distribution
/// (stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for u64 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64 core; see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..8u8);
            assert!(w < 8);
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
