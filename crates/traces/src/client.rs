//! The resolver/client population behind the passive traces.

use netgeo::Region;
use netsim::{Family, SimRng};
use rss::{RootLetter, B_ROOT_CHANGE_DATE};
use serde::{Deserialize, Serialize};

/// A client prefix (/24 for v4, /48 for v6 — the privacy aggregation the
/// real pipeline applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// Per-client behaviour parameters.
#[derive(Debug, Clone)]
pub struct ClientBehavior {
    pub id: ClientId,
    pub region: Region,
    pub family: Family,
    /// Mean queries per day toward the whole root system (heavy-tailed
    /// across clients).
    pub daily_rate: f64,
    /// Seconds after the b.root change at which this client switches to the
    /// new address; `None` = legacy resolver that never switches within any
    /// observed window.
    pub switch_after: Option<u32>,
    /// Whether the client primes (RFC 8109): after switching it still
    /// contacts the old address about once a day.
    pub primes: bool,
}

impl ClientBehavior {
    /// Has this client switched to the new b.root address by `time`?
    pub fn switched_at(&self, time: u32) -> bool {
        self.switched_by(time, B_ROOT_CHANGE_DATE)
    }

    /// [`switched_at`](Self::switched_at) against an arbitrary renumbering
    /// date — the scenario engine replays the same switching population on
    /// shifted timelines.
    pub fn switched_by(&self, time: u32, change_date: u32) -> bool {
        match self.switch_after {
            Some(delay) => time >= change_date.saturating_add(delay),
            None => false,
        }
    }
}

/// Population synthesis parameters for one vantage (ISP or one IXP region).
#[derive(Debug, Clone)]
pub struct PopulationModel {
    /// Number of client prefixes per family.
    pub clients_per_family: usize,
    /// Fraction of v4 clients that eventually switch.
    pub v4_switch_fraction: f64,
    /// Fraction of v6 clients that eventually switch.
    pub v6_switch_fraction: f64,
    /// Mean switch delay in days (exponential) for v4 clients.
    pub v4_switch_mean_days: f64,
    /// Mean switch delay in days for v6 clients.
    pub v6_switch_mean_days: f64,
    /// Fraction of switching v6 clients that prime (touch old once/day).
    pub v6_priming_fraction: f64,
    /// Fraction of switching v4 clients that prime.
    pub v4_priming_fraction: f64,
    /// Traffic volume multiplier per family `[v4, v6]`. At the paper's ISP,
    /// IPv6 carries ~10-21% of b.root traffic; at the IXPs it is the IPv4
    /// fraction that is small (§6).
    pub family_rate_multiplier: [f64; 2],
    /// Region the clients sit in.
    pub region: Region,
    pub seed: u64,
}

impl PopulationModel {
    /// The European-ISP model: eager, priming-heavy population — calibrated
    /// so the in-family traffic shift lands near the paper's 87.1% (v4) and
    /// 96.3% (v6) in the Feb-2024 window.
    pub fn isp_europe(seed: u64) -> Self {
        PopulationModel {
            clients_per_family: 4000,
            v4_switch_fraction: 0.88,
            v6_switch_fraction: 0.97,
            v4_switch_mean_days: 20.0,
            v6_switch_mean_days: 6.0,
            v6_priming_fraction: 0.85,
            v4_priming_fraction: 0.45,
            family_rate_multiplier: [1.0, 0.18],
            region: Region::Europe,
            seed,
        }
    }

    /// IXP population for `region` — the v6 switch eagerness differs
    /// sharply: EU ≈61% of v6 traffic shifts within a month of the change,
    /// NA only ≈17% (Figure 9).
    pub fn ixp(region: Region, seed: u64) -> Self {
        let (v6_frac, v6_days) = match region {
            Region::Europe => (0.80, 7.0),
            Region::NorthAmerica => (0.35, 22.0),
            _ => (0.55, 15.0),
        };
        PopulationModel {
            clients_per_family: 2500,
            v4_switch_fraction: 0.80,
            v6_switch_fraction: v6_frac,
            v4_switch_mean_days: 20.0,
            v6_switch_mean_days: v6_days,
            v6_priming_fraction: 0.6,
            v4_priming_fraction: 0.3,
            family_rate_multiplier: [0.15, 1.0],
            region,
            seed,
        }
    }
}

/// The synthesized population.
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    pub clients: Vec<ClientBehavior>,
}

impl ClientPopulation {
    /// Synthesize a population from the model. Deterministic per seed.
    pub fn synthesize(model: &PopulationModel) -> Self {
        let mut rng = SimRng::new(model.seed).derive("clients");
        let mut clients = Vec::with_capacity(model.clients_per_family * 2);
        for family in Family::BOTH {
            let (switch_frac, mean_days, priming_frac) = match family {
                Family::V4 => (
                    model.v4_switch_fraction,
                    model.v4_switch_mean_days,
                    model.v4_priming_fraction,
                ),
                Family::V6 => (
                    model.v6_switch_fraction,
                    model.v6_switch_mean_days,
                    model.v6_priming_fraction,
                ),
            };
            for _ in 0..model.clients_per_family {
                let id = ClientId(clients.len() as u32);
                // Heavy-tailed daily rate: log-normal-ish. The scale keeps
                // one priming query/day small relative to bulk traffic —
                // real resolvers send hundreds-to-thousands of root queries
                // a day, priming only at (re)start.
                let daily_rate = (1.5 * rng.next_gaussian()).exp()
                    * 2000.0
                    * model.family_rate_multiplier[family.index()];
                let switches = rng.chance(switch_frac);
                let switch_after = if switches {
                    // Exponential delay.
                    let u = rng.next_f64().max(1e-12);
                    Some((-u.ln() * mean_days * 86400.0) as u32)
                } else {
                    None
                };
                let primes = switches && rng.chance(priming_frac);
                clients.push(ClientBehavior {
                    id,
                    region: model.region,
                    family,
                    daily_rate: daily_rate.clamp(1.0, 100_000.0),
                    switch_after,
                    primes,
                });
            }
        }
        ClientPopulation { clients }
    }

    /// Clients of one family.
    pub fn of_family(&self, family: Family) -> impl Iterator<Item = &ClientBehavior> {
        self.clients.iter().filter(move |c| c.family == family)
    }
}

/// Per-letter share of root traffic at a vantage. ISP traffic is spread
/// broadly (b ≈4.9%); IXP traffic is dominated by k and d (Figure 13).
pub fn letter_share(letter: RootLetter, at_ixp: bool) -> f64 {
    use RootLetter::*;
    if at_ixp {
        match letter {
            K => 0.30,
            D => 0.24,
            F => 0.08,
            J => 0.07,
            E => 0.06,
            I => 0.06,
            L => 0.05,
            A => 0.035,
            C => 0.03,
            M => 0.025,
            B => 0.02,
            G => 0.015,
            H => 0.015,
        }
    } else {
        match letter {
            A => 0.10,
            B => 0.049,
            C => 0.07,
            D => 0.09,
            E => 0.08,
            F => 0.10,
            G => 0.05,
            H => 0.055,
            I => 0.08,
            J => 0.095,
            K => 0.10,
            L => 0.09,
            M => 0.041,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for at_ixp in [true, false] {
            let sum: f64 = RootLetter::ALL
                .iter()
                .map(|l| letter_share(*l, at_ixp))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} (ixp={at_ixp})");
        }
    }

    #[test]
    fn ixp_dominated_by_k_and_d() {
        let kd: f64 = letter_share(RootLetter::K, true) + letter_share(RootLetter::D, true);
        assert!(kd > 0.5);
    }

    #[test]
    fn isp_b_share_near_paper() {
        // Paper: 4.90% before the change.
        assert!((letter_share(RootLetter::B, false) - 0.049).abs() < 1e-9);
    }

    #[test]
    fn population_shape() {
        let pop = ClientPopulation::synthesize(&PopulationModel::isp_europe(1));
        assert_eq!(pop.clients.len(), 8000);
        assert_eq!(pop.of_family(Family::V4).count(), 4000);
        assert_eq!(pop.of_family(Family::V6).count(), 4000);
    }

    #[test]
    fn v6_switches_more_than_v4() {
        let pop = ClientPopulation::synthesize(&PopulationModel::isp_europe(2));
        let frac = |family: Family| {
            let total = pop.of_family(family).count() as f64;
            pop.of_family(family)
                .filter(|c| c.switch_after.is_some())
                .count() as f64
                / total
        };
        assert!(frac(Family::V6) > frac(Family::V4));
    }

    #[test]
    fn na_ixp_v6_slower_than_eu() {
        let eu = ClientPopulation::synthesize(&PopulationModel::ixp(Region::Europe, 3));
        let na = ClientPopulation::synthesize(&PopulationModel::ixp(Region::NorthAmerica, 3));
        let switched_within = |pop: &ClientPopulation, days: u32| {
            pop.of_family(Family::V6)
                .filter(|c| matches!(c.switch_after, Some(d) if d < days * 86400))
                .count()
        };
        assert!(switched_within(&eu, 30) > switched_within(&na, 30) * 2);
    }

    #[test]
    fn switched_at_respects_change_date() {
        let c = ClientBehavior {
            id: ClientId(0),
            region: Region::Europe,
            family: Family::V6,
            daily_rate: 10.0,
            switch_after: Some(86400),
            primes: true,
        };
        assert!(!c.switched_at(B_ROOT_CHANGE_DATE));
        assert!(c.switched_at(B_ROOT_CHANGE_DATE + 86400));
        let legacy = ClientBehavior {
            switch_after: None,
            ..c
        };
        assert!(!legacy.switched_at(u32::MAX));
    }

    #[test]
    fn deterministic_population() {
        let a = ClientPopulation::synthesize(&PopulationModel::isp_europe(9));
        let b = ClientPopulation::synthesize(&PopulationModel::isp_europe(9));
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.switch_after, y.switch_after);
            assert_eq!(x.primes, y.primes);
        }
    }
}
