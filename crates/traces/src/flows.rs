//! Flow records and aggregation buckets.

use crate::client::ClientId;
use netsim::Family;
use rss::{BRootPhase, RootLetter};
use serde::{Deserialize, Serialize};

/// What a flow is headed to: a letter's service prefix; for b.root the old
/// and new prefixes are distinct capture filters (as at the real ISP/IXPs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowTarget {
    pub letter: RootLetter,
    pub b_phase: BRootPhase,
}

impl FlowTarget {
    /// Targets the capture covers: 13 letters, b twice.
    pub fn all() -> Vec<FlowTarget> {
        let mut v = Vec::with_capacity(14);
        for letter in RootLetter::ALL {
            v.push(FlowTarget {
                letter,
                b_phase: BRootPhase::Old,
            });
            if letter == RootLetter::B {
                v.push(FlowTarget {
                    letter,
                    b_phase: BRootPhase::New,
                });
            }
        }
        v
    }

    /// Figure label (`V4old` style labels are produced by the analyses).
    pub fn label(&self) -> String {
        if self.letter == RootLetter::B {
            match self.b_phase {
                BRootPhase::Old => "b.root (old)".into(),
                BRootPhase::New => "b.root (new)".into(),
            }
        } else {
            self.letter.label()
        }
    }
}

/// A day bucket: days since the Unix epoch (flows are aggregated daily; the
/// single hourly window in Figure 7 uses [`FlowObservation::hour`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DayBucket(pub u32);

impl DayBucket {
    /// Bucket containing `time` (seconds since epoch).
    pub fn of(time: u32) -> Self {
        DayBucket(time / 86400)
    }

    /// Start-of-day timestamp.
    pub fn start(self) -> u32 {
        self.0 * 86400
    }
}

/// One aggregated, sampled flow observation.
///
/// Mirrors the real pipeline's privacy posture: client prefixes only, no
/// payload, counts instead of bytes (sampling makes absolute volumes
/// meaningless anyway — all figures are normalized).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowObservation {
    pub day: DayBucket,
    /// Hour 0-23 for the high-resolution pre-change day; None for daily
    /// aggregates.
    pub hour: Option<u8>,
    pub client: ClientId,
    pub family: Family,
    pub target: FlowTarget,
    /// Sampled flow count in this bucket.
    pub flows: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_targets() {
        assert_eq!(FlowTarget::all().len(), 14);
    }

    #[test]
    fn day_bucket_boundaries() {
        assert_eq!(DayBucket::of(0), DayBucket(0));
        assert_eq!(DayBucket::of(86399), DayBucket(0));
        assert_eq!(DayBucket::of(86400), DayBucket(1));
        assert_eq!(DayBucket(3).start(), 3 * 86400);
    }

    #[test]
    fn labels() {
        assert_eq!(
            FlowTarget {
                letter: RootLetter::B,
                b_phase: BRootPhase::New
            }
            .label(),
            "b.root (new)"
        );
        assert_eq!(
            FlowTarget {
                letter: RootLetter::K,
                b_phase: BRootPhase::Old
            }
            .label(),
            "k.root"
        );
    }
}
