//! Flow generators for the ISP-DNS-1 and IXP-DNS-1 observation windows.

use crate::client::{letter_share, ClientBehavior, ClientPopulation, PopulationModel};
use crate::flows::{DayBucket, FlowObservation, FlowTarget};
use dns_crypto::validity::timestamp_from_ymd as ts;
use netgeo::Region;
use netsim::{Family, SimRng};
use rss::{BRootPhase, RootLetter, B_ROOT_CHANGE_DATE};

/// Which capture point the flows come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VantageKind {
    /// The large European eyeball ISP (ISP-DNS-1).
    IspEurope,
    /// An IXP fabric in `region` (IXP-DNS-1 covers Europe and N. America).
    Ixp(Region),
}

impl VantageKind {
    fn at_ixp(self) -> bool {
        matches!(self, VantageKind::Ixp(_))
    }

    /// The region the vantage observes clients in.
    pub fn region(self) -> Region {
        match self {
            VantageKind::IspEurope => Region::Europe,
            VantageKind::Ixp(r) => r,
        }
    }
}

/// One capture window, with optional hourly resolution (the pre-change day
/// in Figure 7 is rendered hourly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservationWindow {
    pub from: u32,
    pub until: u32,
    pub hourly: bool,
}

impl ObservationWindow {
    /// The paper's ISP windows: one pre-change day (hourly), the four-week
    /// post-change window, and the April week.
    pub fn isp_windows() -> Vec<ObservationWindow> {
        vec![
            ObservationWindow {
                from: ts("20231008000000").unwrap(),
                until: ts("20231009000000").unwrap(),
                hourly: true,
            },
            ObservationWindow {
                from: ts("20240205000000").unwrap(),
                until: ts("20240304000000").unwrap(),
                hourly: false,
            },
            ObservationWindow {
                from: ts("20240422000000").unwrap(),
                until: ts("20240429000000").unwrap(),
                hourly: false,
            },
        ]
    }

    /// The paper's IXP windows.
    pub fn ixp_windows() -> Vec<ObservationWindow> {
        vec![
            ObservationWindow {
                from: ts("20231026000000").unwrap(),
                until: ts("20231228000000").unwrap(),
                hourly: false,
            },
            ObservationWindow {
                from: ts("20240422000000").unwrap(),
                until: ts("20240429000000").unwrap(),
                hourly: false,
            },
        ]
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub vantage: VantageKind,
    pub population: PopulationModel,
    /// Effective sampling divisor: flow counts are divided by this (the
    /// real captures are "heavily sampled").
    pub sampling: f64,
    /// ISP-only: the unexplained a.root traffic dip the paper flags on
    /// 2024-02-26 (Figure 12), as (day timestamp, remaining-traffic factor).
    pub a_root_dip: Option<(u32, f64)>,
    /// When the b.root renumbering takes effect for the modelled clients.
    /// Defaults to the historical date; scenario runs align it to their
    /// own renumbering event.
    pub b_change_date: u32,
    pub seed: u64,
}

impl TraceConfig {
    /// The ISP-DNS-1 stand-in.
    pub fn isp(seed: u64) -> Self {
        TraceConfig {
            vantage: VantageKind::IspEurope,
            population: PopulationModel::isp_europe(seed),
            sampling: 10.0,
            a_root_dip: Some((ts("20240226000000").unwrap(), 0.35)),
            b_change_date: B_ROOT_CHANGE_DATE,
            seed,
        }
    }

    /// One IXP-DNS-1 region stand-in.
    pub fn ixp(region: Region, seed: u64) -> Self {
        TraceConfig {
            vantage: VantageKind::Ixp(region),
            population: PopulationModel::ixp(region, seed),
            sampling: 10.0,
            a_root_dip: None,
            b_change_date: B_ROOT_CHANGE_DATE,
            seed,
        }
    }
}

/// Poisson sample (Knuth for small means, normal approximation above 30).
pub fn poisson(rng: &mut SimRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let v = mean + mean.sqrt() * rng.next_gaussian();
        return v.max(0.0).round() as u32;
    }
    let l = f64::exp(-mean);
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // numerically impossible fallback
        }
    }
}

/// Generate all flows for `windows` at this vantage.
///
/// Zero-count buckets are suppressed (as in real flow exports).
pub fn generate_flows(cfg: &TraceConfig, windows: &[ObservationWindow]) -> Vec<FlowObservation> {
    let population = ClientPopulation::synthesize(&cfg.population);
    let mut rng = SimRng::new(cfg.seed).derive("flows");
    let mut out = Vec::new();
    for window in windows {
        let mut day = window.from - window.from % 86400;
        while day < window.until {
            for client in &population.clients {
                emit_client_day(cfg, client, day, *window, &mut rng, &mut out);
            }
            day += 86400;
        }
    }
    out
}

/// Flows of one client on one day.
fn emit_client_day(
    cfg: &TraceConfig,
    client: &ClientBehavior,
    day: u32,
    window: ObservationWindow,
    rng: &mut SimRng,
    out: &mut Vec<FlowObservation>,
) {
    let bucket = DayBucket::of(day);
    let at_ixp = cfg.vantage.at_ixp();
    for letter in RootLetter::ALL {
        let mut share = letter_share(letter, at_ixp);
        if letter == RootLetter::A {
            if let Some((dip_day, factor)) = cfg.a_root_dip {
                if dip_day == day {
                    share *= factor;
                }
            }
        }
        let mean_day = client.daily_rate * share / cfg.sampling;
        if letter == RootLetter::B {
            emit_b_root(cfg, client, day, bucket, window, mean_day, rng, out);
        } else {
            emit_target(
                FlowTarget {
                    letter,
                    b_phase: BRootPhase::Old,
                },
                client,
                bucket,
                window,
                mean_day,
                rng,
                out,
            );
        }
    }
}

/// b.root flows: split across old/new addresses per switching state.
#[allow(clippy::too_many_arguments)]
fn emit_b_root(
    cfg: &TraceConfig,
    client: &ClientBehavior,
    day: u32,
    bucket: DayBucket,
    window: ObservationWindow,
    mean_day: f64,
    rng: &mut SimRng,
    out: &mut Vec<FlowObservation>,
) {
    let end_of_day = day + 86399;
    let (old_mean, new_mean) = if end_of_day < cfg.b_change_date {
        // Pre-change: new prefixes are operational but unpublished; a small
        // trickle (measurement/testing traffic) already reaches them —
        // v4-heavier, matching the paper's 0.7%/0.1% observation.
        let trickle = match client.family {
            Family::V4 => 0.008,
            Family::V6 => 0.002,
        };
        (mean_day * (1.0 - trickle), mean_day * trickle)
    } else if client.switched_by(day, cfg.b_change_date) {
        // Switched: bulk to new; primers touch old ~once a day (sampled).
        let prime_mean = if client.primes {
            1.0 / cfg.sampling
        } else {
            0.0
        };
        (prime_mean, mean_day)
    } else {
        (mean_day, 0.0)
    };
    emit_target(
        FlowTarget {
            letter: RootLetter::B,
            b_phase: BRootPhase::Old,
        },
        client,
        bucket,
        window,
        old_mean,
        rng,
        out,
    );
    emit_target(
        FlowTarget {
            letter: RootLetter::B,
            b_phase: BRootPhase::New,
        },
        client,
        bucket,
        window,
        new_mean,
        rng,
        out,
    );
}

/// Emit one (client, day, target) bucket — hourly when the window asks.
fn emit_target(
    target: FlowTarget,
    client: &ClientBehavior,
    bucket: DayBucket,
    window: ObservationWindow,
    mean_day: f64,
    rng: &mut SimRng,
    out: &mut Vec<FlowObservation>,
) {
    if window.hourly {
        for hour in 0..24u8 {
            // Diurnal shape: eyeball traffic peaks in the evening.
            let weight = diurnal_weight(hour);
            let flows = poisson(rng, mean_day * weight);
            if flows > 0 {
                out.push(FlowObservation {
                    day: bucket,
                    hour: Some(hour),
                    client: client.id,
                    family: client.family,
                    target,
                    flows,
                });
            }
        }
    } else {
        let flows = poisson(rng, mean_day);
        if flows > 0 {
            out.push(FlowObservation {
                day: bucket,
                hour: None,
                client: client.id,
                family: client.family,
                target,
                flows,
            });
        }
    }
}

/// Hour-of-day weight (sums to ~1 over 24 hours).
fn diurnal_weight(hour: u8) -> f64 {
    let h = hour as f64;
    let base = 1.0 + 0.8 * ((h - 20.0) * std::f64::consts::PI / 12.0).cos();
    base / 24.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_isp() -> TraceConfig {
        let mut cfg = TraceConfig::isp(7);
        cfg.population.clients_per_family = 300;
        cfg
    }

    #[test]
    fn windows_match_paper_dates() {
        let isp = ObservationWindow::isp_windows();
        assert_eq!(isp.len(), 3);
        assert!(isp[0].hourly);
        assert_eq!((isp[1].until - isp[1].from) / 86400, 28);
        let ixp = ObservationWindow::ixp_windows();
        assert_eq!((ixp[0].until - ixp[0].from) / 86400, 63);
    }

    #[test]
    fn poisson_mean_accuracy() {
        let mut rng = SimRng::new(1);
        for mean in [0.5, 3.0, 50.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, mean) as u64).sum();
            let got = sum as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean * 0.05 + 0.05,
                "mean {mean} got {got}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn pre_change_old_dominates() {
        let cfg = small_isp();
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[0]]);
        let old: u64 = flows
            .iter()
            .filter(|f| f.target.letter == RootLetter::B && f.target.b_phase == BRootPhase::Old)
            .map(|f| f.flows as u64)
            .sum();
        let new: u64 = flows
            .iter()
            .filter(|f| f.target.letter == RootLetter::B && f.target.b_phase == BRootPhase::New)
            .map(|f| f.flows as u64)
            .sum();
        let new_share = new as f64 / (old + new) as f64;
        assert!(new_share < 0.05, "new share pre-change: {new_share}");
    }

    #[test]
    fn post_change_new_dominates_at_isp() {
        let cfg = small_isp();
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[1]]);
        let count = |phase: BRootPhase, family: Family| -> u64 {
            flows
                .iter()
                .filter(|f| {
                    f.target.letter == RootLetter::B
                        && f.target.b_phase == phase
                        && f.family == family
                })
                .map(|f| f.flows as u64)
                .sum()
        };
        for family in Family::BOTH {
            let old = count(BRootPhase::Old, family);
            let new = count(BRootPhase::New, family);
            let shift = new as f64 / (old + new) as f64;
            assert!(shift > 0.7, "{family}: shift {shift}");
        }
        // v6 shifts more completely than v4 (priming).
        let shift = |family: Family| {
            let old = count(BRootPhase::Old, family);
            let new = count(BRootPhase::New, family);
            new as f64 / (old + new) as f64
        };
        assert!(shift(Family::V6) > shift(Family::V4));
    }

    #[test]
    fn eu_ixp_shifts_more_v6_than_na() {
        let window = ObservationWindow::ixp_windows()[0];
        let shift_of = |region: Region| {
            let mut cfg = TraceConfig::ixp(region, 11);
            cfg.population.clients_per_family = 300;
            let flows = generate_flows(&cfg, &[window]);
            let post: Vec<&FlowObservation> = flows
                .iter()
                .filter(|f| {
                    f.family == Family::V6
                        && f.target.letter == RootLetter::B
                        && f.day.start() >= B_ROOT_CHANGE_DATE
                })
                .collect();
            let new: u64 = post
                .iter()
                .filter(|f| f.target.b_phase == BRootPhase::New)
                .map(|f| f.flows as u64)
                .sum();
            let old: u64 = post
                .iter()
                .filter(|f| f.target.b_phase == BRootPhase::Old)
                .map(|f| f.flows as u64)
                .sum();
            new as f64 / (old + new) as f64
        };
        let eu = shift_of(Region::Europe);
        let na = shift_of(Region::NorthAmerica);
        assert!(eu > na + 0.2, "eu {eu} vs na {na}");
    }

    #[test]
    fn hourly_window_emits_hours() {
        let cfg = small_isp();
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[0]]);
        assert!(flows.iter().all(|f| f.hour.is_some()));
        let hours: std::collections::HashSet<u8> = flows.iter().filter_map(|f| f.hour).collect();
        assert!(hours.len() >= 20);
    }

    #[test]
    fn a_root_dip_applies() {
        let cfg = small_isp();
        let (dip_day, _) = cfg.a_root_dip.unwrap();
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[1]]);
        let a_on = |day: u32| -> u64 {
            flows
                .iter()
                .filter(|f| f.target.letter == RootLetter::A && f.day == DayBucket::of(day))
                .map(|f| f.flows as u64)
                .sum()
        };
        let dip = a_on(dip_day);
        let normal = a_on(dip_day - 86400);
        assert!((dip as f64) < normal as f64 * 0.6, "dip {dip} vs {normal}");
    }

    #[test]
    fn deterministic_generation() {
        let cfg = small_isp();
        let w = [ObservationWindow::isp_windows()[2]];
        assert_eq!(generate_flows(&cfg, &w), generate_flows(&cfg, &w));
    }

    #[test]
    fn diurnal_weights_sum_to_one() {
        let sum: f64 = (0..24).map(diurnal_weight).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }
}
