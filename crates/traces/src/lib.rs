//! Passive trace synthesis: the ISP-DNS-1 and IXP-DNS-1 stand-ins.
//!
//! The paper's passive datasets are proprietary sampled flow captures at a
//! large European eyeball ISP and 14 IXPs, covering the old/new b.root
//! prefixes around the 2023-11-27 renumbering. This crate generates
//! behaviourally equivalent flow streams from an explicit resolver
//! population model:
//!
//! * clients (already aggregated to /24 / /48 prefixes, like the real
//!   privacy pipeline) issue queries to all 13 letters with
//!   vantage-specific traffic shares (k/d dominate at IXPs; b ≈4.9% of root
//!   traffic at the ISP);
//! * after the address change, each client *switches* to the new b.root
//!   address after an exponential delay — or never (legacy resolvers), the
//!   paper's "reluctant" population;
//! * switched clients still touch the old address ~once a day (priming at
//!   startup, RFC 8109), which is exactly the Figure 8 signature;
//! * switch eagerness differs by family and region (v6 > v4; EU > NA),
//!   reproducing Figures 7 and 9's contrast.
//!
//! Modules: [`client`] (population & behaviour), [`flows`] (records and
//! aggregation), [`gen`] (the generators for the ISP and IXP windows).

pub mod client;
pub mod flows;
pub mod gen;

pub use client::{ClientBehavior, ClientId, ClientPopulation, PopulationModel};
pub use flows::{DayBucket, FlowObservation, FlowTarget};
pub use gen::{generate_flows, ObservationWindow, TraceConfig, VantageKind};
