//! Property-based tests for the passive-trace generators.

use netgeo::Region;
use netsim::{Family, SimRng};
use proptest::prelude::*;
use rss::{BRootPhase, RootLetter, B_ROOT_CHANGE_DATE};
use traces::client::{ClientPopulation, PopulationModel};
use traces::gen::{generate_flows, poisson, ObservationWindow, TraceConfig};

fn region_strategy() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Europe),
        Just(Region::NorthAmerica),
        Just(Region::Asia),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn poisson_nonnegative_and_zero_for_zero_mean(mean in 0.0f64..100.0, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let v = poisson(&mut rng, mean);
        if mean == 0.0 {
            prop_assert_eq!(v, 0);
        }
        // Sanity bound: far tail beyond 20 sigma is effectively impossible.
        prop_assert!((v as f64) < mean + 20.0 * mean.sqrt() + 20.0);
    }

    #[test]
    fn population_switch_delays_respect_fractions(seed in any::<u64>(), region in region_strategy()) {
        let model = PopulationModel::ixp(region, seed);
        let pop = ClientPopulation::synthesize(&model);
        let frac = |family: Family, expected: f64| {
            let total = pop.of_family(family).count() as f64;
            let switching = pop
                .of_family(family)
                .filter(|c| c.switch_after.is_some())
                .count() as f64;
            let got = switching / total;
            // Within 5 points of the configured fraction.
            (got - expected).abs() < 0.05
        };
        prop_assert!(frac(Family::V4, model.v4_switch_fraction));
        prop_assert!(frac(Family::V6, model.v6_switch_fraction));
    }

    #[test]
    fn flows_only_within_windows(seed in any::<u64>()) {
        let mut cfg = TraceConfig::isp(seed);
        cfg.population.clients_per_family = 50;
        let windows = ObservationWindow::isp_windows();
        let flows = generate_flows(&cfg, &windows);
        for f in &flows {
            let day_start = f.day.start();
            let inside = windows
                .iter()
                .any(|w| day_start >= w.from - w.from % 86400 && day_start < w.until);
            prop_assert!(inside, "flow on day {day_start} outside all windows");
            prop_assert!(f.flows > 0, "zero-count bucket emitted");
        }
    }

    #[test]
    fn pre_change_days_have_negligible_new_traffic(seed in any::<u64>()) {
        let mut cfg = TraceConfig::isp(seed);
        cfg.population.clients_per_family = 100;
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[0]]);
        let (mut old, mut new) = (0u64, 0u64);
        for f in &flows {
            if f.target.letter == RootLetter::B && f.day.start() < B_ROOT_CHANGE_DATE {
                match f.target.b_phase {
                    BRootPhase::Old => old += f.flows as u64,
                    BRootPhase::New => new += f.flows as u64,
                }
            }
        }
        if old + new > 1000 {
            prop_assert!((new as f64) < (old + new) as f64 * 0.05, "new {new} old {old}");
        }
    }

    #[test]
    fn generation_deterministic_per_seed(seed in any::<u64>()) {
        let mut cfg = TraceConfig::ixp(Region::Europe, seed);
        cfg.population.clients_per_family = 30;
        let w = [ObservationWindow::ixp_windows()[1]];
        prop_assert_eq!(generate_flows(&cfg, &w), generate_flows(&cfg, &w));
    }
}
