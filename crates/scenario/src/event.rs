//! The typed change events a scenario can schedule.

use dns_zone::rollout::RolloutPhase;
use netsim::anycast::SiteId;
use netsim::AsId;
use rss::{Renumbering, RootLetter};

/// Degraded per-letter serving behaviour (the paper's Table 2 fault
/// classes, promoted to schedulable events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradedMode {
    /// Every site of the letter serves the zone of `stuck_day` (letter-wide
    /// version of the d.root Tokyo/Leeds stale episodes).
    StaleZone { stuck_day: u32 },
    /// Transfers from the letter arrive bit-flipped with probability
    /// `prob` (server-side corruption, unlike the per-VP faulty-RAM model).
    BitflipZone { prob: f64 },
    /// Zones are generated in a forced ZONEMD roll-out phase, detached
    /// from the dated timeline (e.g. a premature switch to `Validating`).
    ZonemdPhase { phase: RolloutPhase },
}

/// A typed change event. Every kind is deterministic: applying the same
/// scenario to the same world always mutates the same state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// `site` of `letter` stops announcing the service prefix (hardware
    /// failure, maintenance, de-peering).
    SiteOutage { letter: RootLetter, site: SiteId },
    /// `site` of `letter` *enters* service at activation time. The site
    /// must exist in the catalog; the engine holds it out of service from
    /// the start of the run until the event activates (the racked-but-not-
    /// announced provisioning state).
    SiteAddition { letter: RootLetter, site: SiteId },
    /// The letter's service prefix is renumbered — the generalization of
    /// b.root's 2023-11-27 change to any letter and date.
    PrefixRenumbering { change: Renumbering },
    /// Routing instability burst: the letter's churn pressure is scaled by
    /// `boost` for the duration.
    RouteFlapBurst { letter: RootLetter, boost: f64 },
    /// The direct link between ASes `a` and `b` fails (both families,
    /// both directions); routing for every letter is recomputed.
    PeeringLinkFailure { a: AsId, b: AsId },
    /// A letter serves degraded data for the duration.
    Degraded {
        letter: RootLetter,
        mode: DegradedMode,
    },
    /// DDoS-style latency inflation: the letter's measured RTTs are scaled
    /// by `factor` for the duration.
    RttInflation { letter: RootLetter, factor: f64 },
    /// Water-torture NXDOMAIN flood against the letter: random-subdomain
    /// queries at `intensity`× the benign rate from a spoofed botnet.
    AttackFlood { letter: RootLetter, intensity: u32 },
    /// Reflection/amplification burst: large-answer apex queries spoofing
    /// `victim`'s source address, aimed at the letter.
    ReflectionBurst {
        letter: RootLetter,
        victim: AsId,
        intensity: u32,
    },
    /// One legitimate client (`client`'s stub) floods the letter with
    /// benign-shaped queries from its real, unspoofed address.
    QueryStorm {
        letter: RootLetter,
        client: AsId,
        intensity: u32,
    },
}

/// What part of the world an event touches. Two events whose windows
/// overlap in time must have distinct scopes — the engine's snapshot/revert
/// bookkeeping is per-scope, and stacked mutations of the same scope would
/// make revert order-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Everything keyed to one deployment.
    Letter(RootLetter),
    /// One inter-AS link (normalized so `(a, b)` and `(b, a)` collide).
    Link(AsId, AsId),
    /// Adversarial traffic aimed at one deployment. Distinct from
    /// [`Scope::Letter`]: attack traffic mutates nothing the engine has
    /// to snapshot, so an attack may run *during* a letter-scoped fault —
    /// but two concurrent attacks on the same letter would make the
    /// projected [`rootd::AttackPlan`] ambiguous.
    Traffic(RootLetter),
}

impl EventKind {
    /// The event's scope (see [`Scope`]).
    pub fn scope(&self) -> Scope {
        match *self {
            EventKind::SiteOutage { letter, .. }
            | EventKind::SiteAddition { letter, .. }
            | EventKind::RouteFlapBurst { letter, .. }
            | EventKind::Degraded { letter, .. }
            | EventKind::RttInflation { letter, .. } => Scope::Letter(letter),
            EventKind::PrefixRenumbering { change } => Scope::Letter(change.letter),
            EventKind::AttackFlood { letter, .. }
            | EventKind::ReflectionBurst { letter, .. }
            | EventKind::QueryStorm { letter, .. } => Scope::Traffic(letter),
            EventKind::PeeringLinkFailure { a, b } => {
                if a.0 <= b.0 {
                    Scope::Link(a, b)
                } else {
                    Scope::Link(b, a)
                }
            }
        }
    }

    /// Whether the event has a wire-visible signature a transport-level
    /// fault plan can express: site outages (dead air), RTT inflation
    /// (delay), and zone bitflips (corrupt bytes). Routing-only and
    /// zone-content events are invisible at the transport layer — the
    /// `chaos` projections skip exactly the kinds this returns `false`
    /// for (a test pins the two in sync).
    pub fn wire_visible(&self) -> bool {
        matches!(
            self,
            EventKind::SiteOutage { .. }
                | EventKind::RttInflation { .. }
                | EventKind::Degraded {
                    mode: DegradedMode::BitflipZone { .. },
                    ..
                }
        )
    }

    /// Whether applying or reverting this event changes routing ground
    /// truth (and thus requires invalidating cross-epoch engine state).
    pub fn mutates_routing(&self) -> bool {
        matches!(
            self,
            EventKind::SiteOutage { .. }
                | EventKind::SiteAddition { .. }
                | EventKind::PeeringLinkFailure { .. }
        )
    }

    /// Short human label, e.g. `outage(d/3)`.
    pub fn label(&self) -> String {
        match *self {
            EventKind::SiteOutage { letter, site } => format!("outage({}/{})", letter.ch(), site.0),
            EventKind::SiteAddition { letter, site } => {
                format!("addition({}/{})", letter.ch(), site.0)
            }
            EventKind::PrefixRenumbering { change } => format!("renumber({})", change.letter.ch()),
            EventKind::RouteFlapBurst { letter, boost } => {
                format!("flap({}×{boost})", letter.ch())
            }
            EventKind::PeeringLinkFailure { a, b } => format!("linkdown(AS{}-AS{})", a.0, b.0),
            EventKind::Degraded { letter, mode } => {
                let tag = match mode {
                    DegradedMode::StaleZone { .. } => "stale",
                    DegradedMode::BitflipZone { .. } => "bitflip",
                    DegradedMode::ZonemdPhase { .. } => "zonemd",
                };
                format!("degraded({}/{tag})", letter.ch())
            }
            EventKind::RttInflation { letter, factor } => {
                format!("rtt({}×{factor})", letter.ch())
            }
            EventKind::AttackFlood { letter, intensity } => {
                format!("flood({}×{intensity})", letter.ch())
            }
            EventKind::ReflectionBurst {
                letter,
                victim,
                intensity,
            } => format!("reflect({}×{intensity}→AS{})", letter.ch(), victim.0),
            EventKind::QueryStorm {
                letter,
                client,
                intensity,
            } => format!("storm({}×{intensity}@AS{})", letter.ch(), client.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_scope_is_order_insensitive() {
        let ab = EventKind::PeeringLinkFailure {
            a: AsId(3),
            b: AsId(9),
        };
        let ba = EventKind::PeeringLinkFailure {
            a: AsId(9),
            b: AsId(3),
        };
        assert_eq!(ab.scope(), ba.scope());
    }

    #[test]
    fn renumbering_scope_is_its_letter() {
        let e = EventKind::PrefixRenumbering {
            change: Renumbering::B_ROOT,
        };
        assert_eq!(e.scope(), Scope::Letter(RootLetter::B));
        assert!(!e.mutates_routing());
    }

    #[test]
    fn attack_scope_is_traffic_not_letter() {
        let flood = EventKind::AttackFlood {
            letter: RootLetter::B,
            intensity: 10,
        };
        assert_eq!(flood.scope(), Scope::Traffic(RootLetter::B));
        // An attack and a fault on the same letter may overlap in time —
        // their scopes differ; two attacks on the same letter may not.
        let fault = EventKind::RttInflation {
            letter: RootLetter::B,
            factor: 2.0,
        };
        assert_ne!(flood.scope(), fault.scope());
        let storm = EventKind::QueryStorm {
            letter: RootLetter::B,
            client: AsId(1),
            intensity: 5,
        };
        assert_eq!(flood.scope(), storm.scope());
        assert!(!flood.wire_visible());
        assert!(!flood.mutates_routing());
    }

    #[test]
    fn labels_are_distinct_per_kind() {
        let labels: Vec<String> = [
            EventKind::SiteOutage {
                letter: RootLetter::D,
                site: SiteId(3),
            },
            EventKind::SiteAddition {
                letter: RootLetter::D,
                site: SiteId(3),
            },
            EventKind::PrefixRenumbering {
                change: Renumbering::B_ROOT,
            },
            EventKind::RouteFlapBurst {
                letter: RootLetter::G,
                boost: 5.0,
            },
            EventKind::PeeringLinkFailure {
                a: AsId(1),
                b: AsId(2),
            },
            EventKind::Degraded {
                letter: RootLetter::K,
                mode: DegradedMode::BitflipZone { prob: 0.5 },
            },
            EventKind::RttInflation {
                letter: RootLetter::A,
                factor: 4.0,
            },
            EventKind::AttackFlood {
                letter: RootLetter::B,
                intensity: 10,
            },
            EventKind::ReflectionBurst {
                letter: RootLetter::B,
                victim: AsId(7),
                intensity: 10,
            },
            EventKind::QueryStorm {
                letter: RootLetter::B,
                client: AsId(7),
                intensity: 20,
            },
        ]
        .iter()
        .map(|e| e.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
