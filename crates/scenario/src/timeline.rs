//! Scenarios: validated, ordered event timelines.

use crate::event::EventKind;
use rss::Renumbering;
use std::fmt;

/// One scheduled event: a kind, an activation time, and an optional end.
/// `until: None` means the event stays in force until the engine's
/// teardown (a permanent change, like a renumbering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioEvent {
    /// Activation time (seconds since epoch).
    pub at: u32,
    /// End of the event's window (exclusive); `None` = permanent.
    pub until: Option<u32>,
    pub kind: EventKind,
}

impl ScenarioEvent {
    /// The window end used for ordering/overlap math (`u32::MAX` when
    /// permanent).
    pub fn effective_until(&self) -> u32 {
        self.until.unwrap_or(u32::MAX)
    }
}

/// Why a scenario failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// An event's `until` is not after its `at`.
    EmptyWindow { label: String, at: u32, until: u32 },
    /// Two events with the same scope have overlapping windows.
    OverlappingScope { first: String, second: String },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyWindow { label, at, until } => {
                write!(f, "event {label}: window [{at}, {until}) is empty")
            }
            ScenarioError::OverlappingScope { first, second } => {
                write!(f, "events {first} and {second} overlap in the same scope")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named, seeded, validated timeline of change events.
///
/// Invariants held by construction (and pinned by this crate's proptests):
/// events are sorted by activation time, every explicit window is
/// non-empty, and no two events with the same [`crate::Scope`] overlap in
/// time.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    seed: u64,
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Validate and build a scenario; events are sorted by activation time
    /// (stable, so same-time events keep their given order).
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        mut events: Vec<ScenarioEvent>,
    ) -> Result<Scenario, ScenarioError> {
        events.sort_by_key(|e| e.at);
        for e in &events {
            if let Some(until) = e.until {
                if until <= e.at {
                    return Err(ScenarioError::EmptyWindow {
                        label: e.kind.label(),
                        at: e.at,
                        until,
                    });
                }
            }
        }
        for i in 0..events.len() {
            for j in (i + 1)..events.len() {
                let (a, b) = (&events[i], &events[j]);
                if a.kind.scope() == b.kind.scope()
                    && a.at < b.effective_until()
                    && b.at < a.effective_until()
                {
                    return Err(ScenarioError::OverlappingScope {
                        first: a.kind.label(),
                        second: b.kind.label(),
                    });
                }
            }
        }
        Ok(Scenario {
            name: name.into(),
            seed,
            events,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scenario identity seed — part of the deterministic replay key.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events, sorted by activation time.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// The epoch cut points strictly inside `(start, end)`: every event
    /// activation and every explicit window end, sorted and deduplicated.
    pub fn boundaries(&self, start: u32, end: u32) -> Vec<u32> {
        let mut cuts: Vec<u32> = Vec::new();
        for e in &self.events {
            cuts.push(e.at);
            if let Some(until) = e.until {
                cuts.push(until);
            }
        }
        cuts.retain(|&t| t > start && t < end);
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    }

    /// The first prefix renumbering on the timeline, if any — used to align
    /// passive-trace generation with the scenario.
    pub fn renumbering(&self) -> Option<Renumbering> {
        self.events.iter().find_map(|e| match e.kind {
            EventKind::PrefixRenumbering { change } => Some(change),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::anycast::SiteId;
    use rss::RootLetter;

    fn outage(at: u32, until: Option<u32>, site: u32) -> ScenarioEvent {
        ScenarioEvent {
            at,
            until,
            kind: EventKind::SiteOutage {
                letter: RootLetter::D,
                site: SiteId(site),
            },
        }
    }

    #[test]
    fn events_are_sorted_by_activation() {
        let s = Scenario::new(
            "t",
            1,
            vec![outage(300, Some(400), 1), outage(100, Some(200), 2)],
        )
        .unwrap();
        assert_eq!(s.events()[0].at, 100);
        assert_eq!(s.events()[1].at, 300);
    }

    #[test]
    fn empty_window_rejected() {
        assert!(matches!(
            Scenario::new("t", 1, vec![outage(100, Some(100), 1)]),
            Err(ScenarioError::EmptyWindow { .. })
        ));
    }

    #[test]
    fn same_scope_overlap_rejected() {
        // Same letter, overlapping windows — rejected even for different
        // sites (scope is per-letter).
        assert!(matches!(
            Scenario::new(
                "t",
                1,
                vec![outage(100, Some(300), 1), outage(200, Some(400), 2)]
            ),
            Err(ScenarioError::OverlappingScope { .. })
        ));
        // Permanent event overlaps everything after it in the same scope.
        assert!(Scenario::new(
            "t",
            1,
            vec![outage(100, None, 1), outage(500, Some(600), 2)]
        )
        .is_err());
        // Touching windows (end == next start) are fine.
        assert!(Scenario::new(
            "t",
            1,
            vec![outage(100, Some(200), 1), outage(200, Some(300), 2)]
        )
        .is_ok());
    }

    #[test]
    fn different_scopes_may_overlap() {
        let flap = ScenarioEvent {
            at: 150,
            until: Some(250),
            kind: EventKind::RouteFlapBurst {
                letter: RootLetter::G,
                boost: 5.0,
            },
        };
        assert!(Scenario::new("t", 1, vec![outage(100, Some(300), 1), flap]).is_ok());
    }

    #[test]
    fn boundaries_are_clamped_sorted_dedup() {
        let s = Scenario::new(
            "t",
            1,
            vec![
                outage(100, Some(300), 1),
                ScenarioEvent {
                    at: 300,
                    until: Some(900),
                    kind: EventKind::RouteFlapBurst {
                        letter: RootLetter::G,
                        boost: 2.0,
                    },
                },
            ],
        )
        .unwrap();
        // 300 appears twice (an until and an at) but is emitted once;
        // 900 is outside (start, end) and dropped.
        assert_eq!(s.boundaries(50, 800), vec![100, 300]);
        assert_eq!(s.boundaries(100, 800), vec![300]);
    }
}
