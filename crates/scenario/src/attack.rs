//! Scenario events projected onto the load generator: a [`Scenario`]'s
//! adversarial-traffic events, viewed from one letter's fleet, become a
//! `rootd` [`AttackPlan`] the attack engine can execute.
//!
//! Only traffic-scoped events map to attack shapes:
//!
//! * [`EventKind::AttackFlood`] — a water-torture NXDOMAIN flood from a
//!   spoofed botnet ([`rootd::attack::WATER_TORTURE_BOTNET`] sources);
//! * [`EventKind::ReflectionBurst`] — amplification-shaped apex queries
//!   spoofing the victim AS's source address;
//! * [`EventKind::QueryStorm`] — one stub client flooding from its real
//!   address.
//!
//! This is the traffic-side sibling of [`crate::chaos`]: wire faults
//! become a `FaultPlan` for the transports, attack traffic becomes an
//! `AttackPlan` for the loadgen, and both ride the same [`simclock`]
//! axis so one projection serves an entire clock-driven run.
//!
//! Two projections exist, mirroring the chaos pair:
//! [`attack_plan_at`] freezes the attack active at one wall instant,
//! while [`attack_plan_on_clock`] maps every event window onto the
//! shared axis. The `Traffic` scope's overlap validation guarantees at
//! most one attack per letter at any instant, so the frozen projection
//! yields zero or one window.

use crate::event::EventKind;
use crate::timeline::Scenario;
use rootd::attack::WATER_TORTURE_BOTNET;
use rootd::{AttackPlan, AttackShape, AttackWindow};
use rss::RootLetter;
use simclock::TimeAxis;

/// The shape one traffic-scoped event aimed at `letter` contributes,
/// independent of timing. Events aimed at other letters (and all
/// non-attack kinds) project to `None`.
fn event_shape(kind: &EventKind, letter: RootLetter) -> Option<AttackShape> {
    match *kind {
        EventKind::AttackFlood {
            letter: l,
            intensity,
        } if l == letter => Some(AttackShape::WaterTorture {
            intensity,
            botnet: WATER_TORTURE_BOTNET,
        }),
        EventKind::ReflectionBurst {
            letter: l,
            victim,
            intensity,
        } if l == letter => Some(AttackShape::Reflection {
            victim: victim.0,
            intensity,
        }),
        EventKind::QueryStorm {
            letter: l,
            client,
            intensity,
        } if l == letter => Some(AttackShape::QueryStorm {
            client: client.0,
            intensity,
        }),
        _ => None,
    }
}

/// Seed the projected plan's attack streams derive from. Distinct from
/// both chaos projections' xors so the three fault/attack streams never
/// correlate.
fn plan_seed(scenario: &Scenario) -> u64 {
    scenario.seed() ^ 0xa77a_c400
}

/// The attack plan in force against `letter` at wall instant `t`: the
/// (at most one, by `Scope::Traffic` overlap validation) active attack
/// becomes a single all-time window, for code that steps time itself.
/// The plan seed derives from the scenario seed, so the same scenario at
/// the same instant always yields the same attack stream.
pub fn attack_plan_at(scenario: &Scenario, letter: RootLetter, t: u32) -> AttackPlan {
    let mut plan = AttackPlan {
        seed: plan_seed(scenario),
        windows: Vec::new(),
    };
    for event in scenario.events() {
        if t < event.at || t >= event.effective_until() {
            continue;
        }
        if let Some(shape) = event_shape(&event.kind, letter) {
            plan.windows.push(AttackWindow {
                start_ms: 0,
                end_ms: u64::MAX,
                shape,
            });
        }
    }
    plan
}

/// The whole scenario's adversarial traffic against `letter` projected
/// onto one virtual clock: every attack event becomes a windowed
/// [`AttackWindow`] on the `axis` that maps the scenario's wall-clock
/// seconds onto virtual milliseconds. The same plan serves the whole
/// run, and every attack query stays a pure function of
/// `(scenario seed, tick, slot)`.
pub fn attack_plan_on_clock(scenario: &Scenario, letter: RootLetter, axis: TimeAxis) -> AttackPlan {
    let mut plan = AttackPlan {
        seed: plan_seed(scenario),
        windows: Vec::new(),
    };
    for event in scenario.events() {
        let Some(shape) = event_shape(&event.kind, letter) else {
            continue;
        };
        let start = axis.wall_to_ms(event.at);
        let end = match event.until {
            Some(until) => axis.wall_to_ms(until),
            None => u64::MAX,
        };
        plan.windows.push(AttackWindow {
            start_ms: start,
            end_ms: end,
            shape,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ScenarioEvent;
    use netsim::AsId;

    fn scenario() -> Scenario {
        Scenario::new(
            "attack-map",
            11,
            vec![
                ScenarioEvent {
                    at: 100,
                    until: Some(200),
                    kind: EventKind::AttackFlood {
                        letter: RootLetter::B,
                        intensity: 10,
                    },
                },
                ScenarioEvent {
                    at: 250,
                    until: Some(300),
                    kind: EventKind::ReflectionBurst {
                        letter: RootLetter::B,
                        victim: AsId(7),
                        intensity: 8,
                    },
                },
                ScenarioEvent {
                    at: 100,
                    until: None,
                    kind: EventKind::QueryStorm {
                        letter: RootLetter::D,
                        client: AsId(3),
                        intensity: 20,
                    },
                },
                // A fault on the same letter, overlapping the flood: the
                // Traffic scope keeps this a valid timeline.
                ScenarioEvent {
                    at: 100,
                    until: Some(200),
                    kind: EventKind::RttInflation {
                        letter: RootLetter::B,
                        factor: 2.0,
                    },
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn active_attacks_project_to_shapes() {
        let s = scenario();
        let b = attack_plan_at(&s, RootLetter::B, 150);
        assert_eq!(
            b.shape_at(0),
            Some(AttackShape::WaterTorture {
                intensity: 10,
                botnet: WATER_TORTURE_BOTNET,
            })
        );
        assert_eq!(b.windows.len(), 1);
        let d = attack_plan_at(&s, RootLetter::D, 150);
        assert_eq!(
            d.shape_at(0),
            Some(AttackShape::QueryStorm {
                client: 3,
                intensity: 20,
            })
        );
        // An uninvolved letter is quiet; faults never project.
        assert_eq!(attack_plan_at(&s, RootLetter::K, 150).windows, vec![]);
    }

    #[test]
    fn expired_and_future_attacks_do_not_project() {
        let s = scenario();
        assert!(attack_plan_at(&s, RootLetter::B, 50).windows.is_empty());
        // Flood [100, 200) is over at 220, reflection [250, 300) not yet on.
        assert!(attack_plan_at(&s, RootLetter::B, 220).windows.is_empty());
        assert!(matches!(
            attack_plan_at(&s, RootLetter::B, 260).shape_at(0),
            Some(AttackShape::Reflection { victim: 7, .. })
        ));
        // The permanent storm on D never expires.
        assert!(attack_plan_at(&s, RootLetter::D, u32::MAX - 1)
            .shape_at(0)
            .is_some());
    }

    #[test]
    fn clock_plan_projects_whole_windows_onto_the_axis() {
        let s = scenario();
        let axis = simclock::TimeAxis::anchored_at(0);
        let plan = attack_plan_on_clock(&s, RootLetter::B, axis);
        assert_eq!(plan.windows.len(), 2);
        // Flood window [100 s, 200 s) ⇒ [100_000, 200_000) ms.
        assert_eq!(plan.shape_at(99_999), None);
        assert!(matches!(
            plan.shape_at(100_000),
            Some(AttackShape::WaterTorture { .. })
        ));
        assert_eq!(plan.shape_at(200_000), None);
        assert!(matches!(
            plan.shape_at(250_000),
            Some(AttackShape::Reflection { .. })
        ));
        // The permanent storm on D never ends on the axis either.
        let d = attack_plan_on_clock(&s, RootLetter::D, axis);
        assert!(d.shape_at(u64::MAX - 1).is_some());
        // At any instant, the clock plan agrees with the frozen plan.
        for t in [50u32, 150, 220, 260, 400] {
            let frozen = attack_plan_at(&s, RootLetter::B, t);
            assert_eq!(
                frozen.shape_at(0),
                plan.shape_at(axis.wall_to_ms(t)),
                "divergence at t={t}"
            );
        }
    }

    #[test]
    fn plan_seed_is_pure_and_distinct_from_the_fault_streams() {
        let s = scenario();
        let axis = simclock::TimeAxis::anchored_at(0);
        let plan = attack_plan_on_clock(&s, RootLetter::B, axis);
        assert_eq!(plan.seed, attack_plan_at(&s, RootLetter::B, 150).seed);
        // Same scenario, different projection targets: seeds agree (the
        // letter selects windows, not streams) …
        assert_eq!(
            plan.seed,
            attack_plan_on_clock(&s, RootLetter::D, axis).seed
        );
        // … but the attack streams never share a seed with either chaos
        // projection of the same scenario.
        assert_ne!(plan.seed, crate::chaos::fault_plan_on_clock(&s, axis).seed);
        assert_ne!(
            plan.seed,
            crate::chaos::fault_plan_for_fleet(&s, RootLetter::B, axis).seed
        );
    }
}
