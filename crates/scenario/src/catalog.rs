//! Built-in scenarios.
//!
//! [`broot_renumbering`] re-expresses the paper's one historical change
//! event — the 2023-11-27 b.root prefix renumbering — as a scenario, and
//! doubles as the equivalence anchor: driving it through the engine must
//! reproduce the legacy continuous pipeline's outputs exactly (the engine
//! adds intensified-probing windows around the change, but the default
//! schedule's 2023-11-20..12-06 high-resolution window already covers it,
//! and [`vantage::Schedule::interval_at`] takes any matching window).

use crate::event::EventKind;
use crate::timeline::{Scenario, ScenarioEvent};
use dns_crypto::validity::timestamp_from_ymd;
use netsim::anycast::SiteId;
use rss::{Renumbering, RootLetter};

/// The 2023 b.root renumbering as a one-event scenario.
pub fn broot_renumbering() -> Scenario {
    Scenario::new(
        "broot_renumbering",
        0xB007,
        vec![ScenarioEvent {
            at: Renumbering::B_ROOT.change_date,
            until: None,
            kind: EventKind::PrefixRenumbering {
                change: Renumbering::B_ROOT,
            },
        }],
    )
    .expect("built-in scenario is valid")
}

/// A three-event demo timeline: a d.root site outage in August, the
/// historical b.root renumbering in November, and a g.root route-flap
/// burst in December. Scopes are disjoint, so the windows may be placed
/// freely.
pub fn outage_renumber_flap() -> Scenario {
    let ts = |s: &str| timestamp_from_ymd(s).expect("valid date");
    Scenario::new(
        "outage_renumber_flap",
        0x5CE_2A01,
        vec![
            ScenarioEvent {
                at: ts("20230810000000"),
                until: Some(ts("20230820000000")),
                kind: EventKind::SiteOutage {
                    letter: RootLetter::D,
                    site: SiteId(0),
                },
            },
            ScenarioEvent {
                at: Renumbering::B_ROOT.change_date,
                until: None,
                kind: EventKind::PrefixRenumbering {
                    change: Renumbering::B_ROOT,
                },
            },
            ScenarioEvent {
                at: ts("20231210000000"),
                until: Some(ts("20231217000000")),
                kind: EventKind::RouteFlapBurst {
                    letter: RootLetter::G,
                    boost: 5.0,
                },
            },
        ],
    )
    .expect("built-in scenario is valid")
}

/// Names of all built-in scenarios, lookup-able via [`builtin`].
pub fn names() -> &'static [&'static str] {
    &["broot_renumbering", "outage_renumber_flap"]
}

/// Look up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    match name {
        "broot_renumbering" => Some(broot_renumbering()),
        "outage_renumber_flap" => Some(outage_renumber_flap()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;

    #[test]
    fn builtins_resolve_by_name() {
        for &name in names() {
            let s = builtin(name).expect("listed builtin exists");
            assert_eq!(s.name(), name);
        }
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn broot_scenario_carries_the_historical_change() {
        let s = broot_renumbering();
        let r = s.renumbering().expect("has a renumbering");
        assert_eq!(r, Renumbering::B_ROOT);
        assert_eq!(s.events()[0].at, rss::B_ROOT_CHANGE_DATE);
    }

    #[test]
    fn demo_scenario_scopes_are_disjoint() {
        let s = outage_renumber_flap();
        let scopes: Vec<Scope> = s.events().iter().map(|e| e.kind.scope()).collect();
        let mut dedup = scopes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), scopes.len());
        assert_eq!(s.events().len(), 3);
    }
}
