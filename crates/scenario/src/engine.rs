//! The scenario engine: drives a measurement through a timeline in epochs.
//!
//! The run is cut at every event boundary inside the schedule span. Before
//! each epoch the engine reverts events whose window has ended and applies
//! events that have become active — snapshotting whatever world state the
//! mutation touches — then runs the epoch's rounds through the ordinary
//! [`MeasurementEngine`] with churn/RTT state carried across the boundary
//! in an [`EngineSession`]. After the last epoch every remaining mutation
//! is reverted, so the world comes back in its pre-run state (pinned by
//! this crate's apply→revert proptest against [`World::routing_hash`]).

use crate::event::{DegradedMode, EventKind};
use crate::snapshot::{apply_event, revert_event, WorldSnapshot};
use crate::timeline::Scenario;
use analysis::zonemd_pipeline::validate_transfers;
use dns_zone::Zone;
use netsim::anycast::SiteId;
use rss::RootLetter;
use std::sync::Arc;
use vantage::{
    EngineOverrides, EngineSession, MeasurementConfig, MeasurementEngine, ProbeRecord, Round,
    TransferRecord, World,
};

/// How the engine runs a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The measurement to drive (schedule, churn, RTT, fault windows).
    /// Per-letter overrides are managed by the engine per epoch; any
    /// overrides set here are replaced.
    pub base: MeasurementConfig,
    /// Half-width (seconds) of the intensified-probing window opened
    /// around every event boundary — the paper's 15-minute rounds around
    /// the b.root change, generalized. `0` disables intensification.
    pub burst_half_width: u32,
    /// Worker threads per epoch run.
    pub workers: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            base: MeasurementConfig::default(),
            // 12 h on each side of a boundary, matching the order of the
            // paper's high-resolution windows around known change events.
            burst_half_width: 43_200,
            workers: 4,
        }
    }
}

/// Everything observed during one epoch, tagged with the events in force.
#[derive(Debug, Clone)]
pub struct EpochRun {
    /// Epoch position on the timeline (0 = before any event).
    pub index: usize,
    /// Epoch window `[start, end)` (seconds since epoch).
    pub start: u32,
    pub end: u32,
    /// Labels of the events active during this epoch (empty = baseline).
    pub active: Vec<String>,
    pub probes: Vec<ProbeRecord>,
    pub transfers: Vec<TransferRecord>,
    /// Zone-validation failure observations among this epoch's transfers,
    /// validated *while the epoch's world state was in force* (a forced
    /// ZONEMD phase changes what validates).
    pub validation_failures: u64,
}

/// The zone a serving layer would publish during one epoch, as captured
/// by [`ScenarioEngine::epoch_zones`].
#[derive(Debug, Clone)]
pub struct EpochZone {
    /// Epoch position on the timeline (0 = before any event).
    pub index: usize,
    /// Epoch window `[start, end)` (seconds since epoch).
    pub start: u32,
    pub end: u32,
    /// Labels of the events active during this epoch (empty = baseline).
    pub active: Vec<String>,
    /// The zone in force at the epoch's start, with any event-driven
    /// world state (e.g. a forced ZONEMD phase) applied.
    pub zone: Arc<Zone>,
}

/// A completed scenario run: one [`EpochRun`] per epoch, in timeline order.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub scenario_name: String,
    pub epochs: Vec<EpochRun>,
}

impl ScenarioRun {
    /// All probe records across epochs, in epoch order.
    pub fn all_probes(&self) -> Vec<ProbeRecord> {
        self.epochs.iter().flat_map(|e| e.probes.clone()).collect()
    }

    /// All transfer records across epochs, in epoch order.
    pub fn all_transfers(&self) -> Vec<TransferRecord> {
        self.epochs
            .iter()
            .flat_map(|e| e.transfers.clone())
            .collect()
    }
}

/// The engine. Owns no world — `run` borrows one mutably for the duration
/// and hands it back in its original state.
#[derive(Debug, Clone, Default)]
pub struct ScenarioEngine {
    pub config: ScenarioConfig,
}

impl ScenarioEngine {
    pub fn new(config: ScenarioConfig) -> ScenarioEngine {
        ScenarioEngine { config }
    }

    /// The virtual-time axis of this engine's runs: virtual millisecond 0
    /// is the measurement schedule's start second. Epoch boundaries,
    /// [`crate::chaos::fault_plan_on_clock`] windows, and any client
    /// driven by a shared [`simclock::ClockHandle`] all map wall time
    /// through this one anchor, which is what keeps the four formerly
    /// private timelines (rounds, epochs, fault windows, client waits)
    /// on a single axis.
    pub fn time_axis(&self) -> simclock::TimeAxis {
        simclock::TimeAxis::anchored_at(self.config.base.schedule.start)
    }

    /// Drive `world` through `scenario`, returning one [`EpochRun`] per
    /// epoch. Deterministic: same world build, scenario, and config ⇒
    /// bit-identical output.
    pub fn run(&self, world: &mut World, scenario: &Scenario) -> ScenarioRun {
        // Hold every to-be-added site out of service from the start: a
        // SiteAddition event *introduces* the site at activation time.
        let mut held: Vec<(RootLetter, SiteId)> = Vec::new();
        for ev in scenario.events() {
            if let EventKind::SiteAddition { letter, site } = ev.kind {
                if world.withdraw_site(letter, site) {
                    held.push((letter, site));
                }
            }
        }

        let mut schedule = self.config.base.schedule.clone();
        let cuts = scenario.boundaries(schedule.start, schedule.end);
        if self.config.burst_half_width > 0 {
            schedule = schedule.with_bursts_around(&cuts, self.config.burst_half_width);
        }
        let rounds: Vec<Round> = schedule.rounds().collect();
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(schedule.start);
        bounds.extend_from_slice(&cuts);
        bounds.push(schedule.end);

        let mut session = EngineSession::new();
        let mut applied: Vec<(usize, WorldSnapshot)> = Vec::new();
        let mut applied_ever = vec![false; scenario.events().len()];
        let mut epochs = Vec::new();

        for (index, w) in bounds.windows(2).enumerate() {
            let (w_start, w_end) = (w[0], w[1]);
            let mut routing_changed = false;

            // Revert events whose window ended at or before this epoch.
            let mut still = Vec::with_capacity(applied.len());
            for (idx, snap) in applied.drain(..) {
                if scenario.events()[idx].effective_until() <= w_start {
                    routing_changed |= revert_event(world, snap);
                } else {
                    still.push((idx, snap));
                }
            }
            applied = still;

            // Apply events newly active at this epoch's start.
            for (idx, ev) in scenario.events().iter().enumerate() {
                if ev.at <= w_start && ev.effective_until() > w_start && !applied_ever[idx] {
                    applied_ever[idx] = true;
                    let (snap, changed) = apply_event(world, ev.kind);
                    routing_changed |= changed;
                    applied.push((idx, snap));
                }
            }

            if routing_changed {
                session.invalidate_routing(&self.config.base.churn);
            }

            let active: Vec<String> = applied
                .iter()
                .map(|&(idx, _)| scenario.events()[idx].kind.label())
                .collect();
            let mut overrides = EngineOverrides::default();
            for &(idx, _) in &applied {
                add_override(&mut overrides, scenario.events()[idx].kind);
            }
            let epoch_cfg = MeasurementConfig {
                schedule: schedule.clone(),
                overrides,
                ..self.config.base.clone()
            };
            let epoch_rounds: Vec<Round> = rounds
                .iter()
                .copied()
                .filter(|r| r.time >= w_start && r.time < w_end)
                .collect();
            let engine = MeasurementEngine::new(world, epoch_cfg);
            let sink = engine.run_rounds_session(&mut session, &epoch_rounds, self.config.workers);
            // Validate now, while this epoch's zone state is in force.
            let table2 = validate_transfers(world, &sink.transfers);
            let validation_failures: u64 = table2.rows.iter().map(|r| r.observations as u64).sum();
            epochs.push(EpochRun {
                index,
                start: w_start,
                end: w_end,
                active,
                probes: sink.probes,
                transfers: sink.transfers,
                validation_failures,
            });
        }

        // Teardown: undo everything still applied, then release held
        // sites, returning the world to its pre-run state.
        for (_, snap) in applied.drain(..) {
            revert_event(world, snap);
        }
        for (letter, site) in held {
            world.restore_site(letter, site);
        }

        ScenarioRun {
            scenario_name: scenario.name().to_string(),
            epochs,
        }
    }

    /// Replay the epoch walk of [`run`](ScenarioEngine::run) without
    /// measuring, capturing the zone a serving layer (e.g. `rootd`) would
    /// publish during each epoch. Events are applied and reverted exactly
    /// as in a full run, so zone-affecting world state (a forced ZONEMD
    /// phase, say) shows up in the captured zones; the world comes back
    /// untouched. Epoch windows and labels match `run`'s one-to-one.
    pub fn epoch_zones(&self, world: &mut World, scenario: &Scenario) -> Vec<EpochZone> {
        let schedule = &self.config.base.schedule;
        let cuts = scenario.boundaries(schedule.start, schedule.end);
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(schedule.start);
        bounds.extend_from_slice(&cuts);
        bounds.push(schedule.end);

        let mut applied: Vec<(usize, WorldSnapshot)> = Vec::new();
        let mut applied_ever = vec![false; scenario.events().len()];
        let mut zones = Vec::new();

        for (index, w) in bounds.windows(2).enumerate() {
            let (w_start, w_end) = (w[0], w[1]);

            let mut still = Vec::with_capacity(applied.len());
            for (idx, snap) in applied.drain(..) {
                if scenario.events()[idx].effective_until() <= w_start {
                    revert_event(world, snap);
                } else {
                    still.push((idx, snap));
                }
            }
            applied = still;

            for (idx, ev) in scenario.events().iter().enumerate() {
                if ev.at <= w_start && ev.effective_until() > w_start && !applied_ever[idx] {
                    applied_ever[idx] = true;
                    let (snap, _) = apply_event(world, ev.kind);
                    applied.push((idx, snap));
                }
            }

            let active: Vec<String> = applied
                .iter()
                .map(|&(idx, _)| scenario.events()[idx].kind.label())
                .collect();
            zones.push(EpochZone {
                index,
                start: w_start,
                end: w_end,
                active,
                zone: world.zone_at(w_start),
            });
        }

        for (_, snap) in applied.drain(..) {
            revert_event(world, snap);
        }
        zones
    }
}

/// Fold one active event into the epoch's per-letter override set.
fn add_override(ov: &mut EngineOverrides, kind: EventKind) {
    match kind {
        EventKind::RouteFlapBurst { letter, boost } => {
            ov.letter_mut(letter).churn_boost *= boost;
        }
        EventKind::RttInflation { letter, factor } => {
            ov.letter_mut(letter).rtt_factor *= factor;
        }
        EventKind::Degraded {
            letter,
            mode: DegradedMode::StaleZone { stuck_day },
        } => {
            ov.letter_mut(letter).stale_stuck_day = Some(stuck_day);
        }
        EventKind::Degraded {
            letter,
            mode: DegradedMode::BitflipZone { prob },
        } => {
            ov.letter_mut(letter).extra_bitflip_prob = prob;
        }
        _ => {}
    }
}
