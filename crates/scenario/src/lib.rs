//! Timeline-driven change events for the simulated root server system.
//!
//! The paper measures '.' *under change* — but a single historical change
//! (the 2023 b.root renumbering). This crate makes change a first-class
//! object: a [`Scenario`] is a named, seeded timeline of typed
//! [`EventKind`]s — site outages and additions, prefix renumberings,
//! route-flap bursts, peering-link failures, degraded serving behaviour,
//! DDoS-style RTT inflation — and the [`ScenarioEngine`] drives a
//! measurement through it deterministically:
//!
//! 1. the timeline is cut into *epochs* at event boundaries;
//! 2. before each epoch the engine reverts expired events and applies
//!    newly active ones (snapshotting the mutated netsim/rss state);
//! 3. the epoch's rounds run through the ordinary measurement engine with
//!    churn state carried across boundaries ([`vantage::EngineSession`]),
//!    so an event-free scenario reproduces the continuous pipeline's
//!    record stream bit for bit;
//! 4. every record lands in its epoch's [`EpochRun`]; [`report`] turns a
//!    run into the before/during/after diff table
//!    ([`analysis::epochs::EpochDiffReport`]).
//!
//! The historical b.root renumbering is re-expressed as the built-in
//! [`catalog::broot_renumbering`] scenario and doubles as the equivalence
//! anchor: driving it through the engine reproduces the legacy pipeline's
//! outputs exactly (see this crate's `broot_equivalence` test).

pub mod attack;
pub mod catalog;
pub mod chaos;
pub mod engine;
pub mod event;
pub mod report;
pub mod snapshot;
pub mod timeline;

pub use attack::{attack_plan_at, attack_plan_on_clock};
pub use chaos::{failure_plan_on_clock, fault_plan_at, fault_plan_for_fleet, fault_plan_on_clock};
pub use engine::{EpochRun, EpochZone, ScenarioConfig, ScenarioEngine, ScenarioRun};
pub use event::{DegradedMode, EventKind, Scope};
pub use report::epoch_diff;
pub use snapshot::{apply_event, revert_event, WorldSnapshot};
pub use timeline::{Scenario, ScenarioError, ScenarioEvent};
