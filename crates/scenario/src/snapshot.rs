//! Shared event apply/revert machinery.
//!
//! One scenario event mutates world state (withdraw a site, disable a
//! link, force a ZONEMD phase); [`apply_event`] performs the mutation and
//! returns a [`WorldSnapshot`] that [`revert_event`] uses to undo it
//! *exactly* — the apply→revert round trip is proven bit-identical against
//! [`vantage::World::routing_hash`] by this crate's proptests. The
//! machinery lives here (rather than inside the engine) so other
//! subsystems can drive a world through event state without running a
//! measurement: the scenario engine's epoch walk and the planner's
//! timeline-pinned candidate scoring both build on these two functions.

use crate::event::{DegradedMode, EventKind};
use dns_zone::rollout::RolloutPhase;
use netsim::anycast::SiteId;
use rss::RootLetter;
use vantage::World;

/// What [`apply_event`] saved so [`revert_event`] can undo the mutation
/// exactly.
pub enum WorldSnapshot {
    /// Nothing to save (override-only or analysis-only events).
    None,
    /// A withdrawn site; revert restores it.
    Outage { letter: RootLetter, site: SiteId },
    /// A site brought into service; revert withdraws it again.
    Addition { letter: RootLetter, site: SiteId },
    /// A disabled link with its prior carriage flags (`None` when the
    /// link did not exist and nothing was changed).
    Link {
        a: netsim::AsId,
        b: netsim::AsId,
        prior: Option<(bool, bool)>,
    },
    /// The ZONEMD override in force before this event set its own.
    Zonemd { prev: Option<RolloutPhase> },
}

/// Apply one event's world mutation. Returns the snapshot for
/// [`revert_event`] and whether routing ground truth changed.
pub fn apply_event(world: &mut World, kind: EventKind) -> (WorldSnapshot, bool) {
    match kind {
        EventKind::SiteOutage { letter, site } => {
            if world.withdraw_site(letter, site) {
                (WorldSnapshot::Outage { letter, site }, true)
            } else {
                (WorldSnapshot::None, false)
            }
        }
        EventKind::SiteAddition { letter, site } => {
            if world.restore_site(letter, site) {
                (WorldSnapshot::Addition { letter, site }, true)
            } else {
                (WorldSnapshot::None, false)
            }
        }
        EventKind::PeeringLinkFailure { a, b } => {
            let prior = world.topology.disable_link(a, b);
            if prior.is_some() {
                world.recompute_all();
            }
            (WorldSnapshot::Link { a, b, prior }, prior.is_some())
        }
        EventKind::Degraded {
            mode: DegradedMode::ZonemdPhase { phase },
            ..
        } => {
            let prev = world.zonemd_override();
            world.set_zonemd_override(Some(phase));
            (WorldSnapshot::Zonemd { prev }, false)
        }
        // Renumbering is an identity change, not a topology change: the
        // measurement already targets both prefixes and the analysis/trace
        // layers read the change date from the scenario. Attack traffic
        // mutates nothing server-side either — it projects onto the
        // loadgen via `attack_plan_on_clock`, the way wire faults project
        // via `fault_plan_on_clock`.
        EventKind::PrefixRenumbering { .. }
        | EventKind::RouteFlapBurst { .. }
        | EventKind::RttInflation { .. }
        | EventKind::Degraded { .. }
        | EventKind::AttackFlood { .. }
        | EventKind::ReflectionBurst { .. }
        | EventKind::QueryStorm { .. } => (WorldSnapshot::None, false),
    }
}

/// Undo one applied event. Returns whether routing ground truth changed.
pub fn revert_event(world: &mut World, snap: WorldSnapshot) -> bool {
    match snap {
        WorldSnapshot::None => false,
        WorldSnapshot::Outage { letter, site } => world.restore_site(letter, site),
        WorldSnapshot::Addition { letter, site } => world.withdraw_site(letter, site),
        WorldSnapshot::Link { a, b, prior } => match prior {
            Some((v4, v6)) => {
                world.topology.set_link_carriage(a, b, v4, v6);
                world.recompute_all();
                true
            }
            None => false,
        },
        WorldSnapshot::Zonemd { prev } => {
            world.set_zonemd_override(prev);
            false
        }
    }
}
