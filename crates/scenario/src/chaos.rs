//! Scenario events projected onto the wire: a [`Scenario`]'s active
//! change events, viewed from one client, become a `rootd`
//! [`FaultPlan`] that a `FaultyTransport` can execute.
//!
//! Only events with a wire-visible signature map to faults:
//!
//! * [`DegradedMode::BitflipZone`] — transfers from the letter arrive
//!   bit-flipped: a per-exchange `bitflip_prob` on both protocols;
//! * [`EventKind::RttInflation`] — DDoS-style latency: the base RTT is
//!   scaled by the event's factor (past the client timeout this turns
//!   into timeouts, which is the point);
//! * [`EventKind::SiteOutage`] — anycast routes one client to one site,
//!   so from that client's seat a site outage is an upstream that went
//!   dark: a full blackhole window.
//!
//! Zone-content events (`StaleZone`, `ZonemdPhase`) stay with the
//! scenario engine's zone generation — they corrupt *data*, not the
//! wire, and the refresh client must catch them via validation rather
//! than transport errors.

use crate::event::{DegradedMode, EventKind};
use crate::timeline::Scenario;
use rootd::{FaultPlan, FaultSpec};

/// Baseline one-exchange latency (virtual ms) that [`EventKind::RttInflation`]
/// scales. Chosen so factors ≳25 with the default 1 s client timeout start
/// producing client-visible timeouts.
pub const BASE_RTT_MS: u64 = 40;

/// The fault plan in force at instant `t`: every wire-visible event whose
/// window covers `t` contributes a per-upstream spec, keyed by the
/// letter's index. Upstreams without an active event stay clean. The plan
/// seed derives from the scenario seed, so the same scenario at the same
/// instant always yields the same fault stream.
pub fn fault_plan_at(scenario: &Scenario, t: u32) -> FaultPlan {
    let mut plan = FaultPlan::clean(scenario.seed() ^ 0xc4a0_5000);
    for event in scenario.events() {
        if t < event.at || t >= event.effective_until() {
            continue;
        }
        match event.kind {
            EventKind::Degraded {
                letter,
                mode: DegradedMode::BitflipZone { prob },
            } => {
                plan.set_both(
                    letter.index() as u64,
                    FaultSpec {
                        bitflip_prob: prob,
                        ..FaultSpec::clean()
                    },
                );
            }
            EventKind::RttInflation { letter, factor } => {
                let delay = (BASE_RTT_MS as f64 * factor) as u64;
                plan.set_both(
                    letter.index() as u64,
                    FaultSpec {
                        delay_ms: delay,
                        delay_jitter_ms: delay / 4,
                        ..FaultSpec::clean()
                    },
                );
            }
            EventKind::SiteOutage { letter, .. } => {
                plan.set_both(letter.index() as u64, FaultSpec::blackhole());
            }
            _ => {}
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ScenarioEvent;
    use netsim::anycast::SiteId;
    use rootd::Protocol;
    use rss::RootLetter;

    fn scenario() -> Scenario {
        Scenario::new(
            "chaos-map",
            11,
            vec![
                ScenarioEvent {
                    at: 100,
                    until: Some(200),
                    kind: EventKind::Degraded {
                        letter: RootLetter::C,
                        mode: DegradedMode::BitflipZone { prob: 0.25 },
                    },
                },
                ScenarioEvent {
                    at: 150,
                    until: None,
                    kind: EventKind::RttInflation {
                        letter: RootLetter::D,
                        factor: 50.0,
                    },
                },
                ScenarioEvent {
                    at: 100,
                    until: Some(300),
                    kind: EventKind::SiteOutage {
                        letter: RootLetter::A,
                        site: SiteId(0),
                    },
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn active_events_project_to_specs() {
        let s = scenario();
        let plan = fault_plan_at(&s, 160);
        let a = RootLetter::A.index() as u64;
        let c = RootLetter::C.index() as u64;
        let d = RootLetter::D.index() as u64;
        assert!(!plan.spec(a, Protocol::Udp).blackholes.is_empty());
        assert_eq!(plan.spec(c, Protocol::Tcp).bitflip_prob, 0.25);
        assert_eq!(plan.spec(d, Protocol::Udp).delay_ms, 50 * BASE_RTT_MS);
        // An uninvolved letter stays clean.
        let k = RootLetter::K.index() as u64;
        assert!(plan.spec(k, Protocol::Udp).is_clean());
    }

    #[test]
    fn expired_and_future_events_do_not_project() {
        let s = scenario();
        let before = fault_plan_at(&s, 50);
        let c = RootLetter::C.index() as u64;
        assert!(before.spec(c, Protocol::Udp).is_clean());
        // Bitflip window [100, 200) is over at 250; the outage isn't.
        let later = fault_plan_at(&s, 250);
        assert!(later.spec(c, Protocol::Udp).is_clean());
        let a = RootLetter::A.index() as u64;
        assert!(!later.spec(a, Protocol::Udp).blackholes.is_empty());
        // Permanent RttInflation never expires.
        let d = RootLetter::D.index() as u64;
        assert!(!later.spec(d, Protocol::Udp).is_clean());
    }

    #[test]
    fn plan_seed_is_a_pure_function_of_the_scenario_seed() {
        let s = scenario();
        assert_eq!(fault_plan_at(&s, 160).seed, fault_plan_at(&s, 160).seed);
        assert_ne!(
            fault_plan_at(&s, 160).seed,
            Scenario::new("other", 12, vec![])
                .map(|o| fault_plan_at(&o, 160).seed)
                .unwrap()
        );
    }
}
