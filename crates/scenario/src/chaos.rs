//! Scenario events projected onto the wire: a [`Scenario`]'s active
//! change events, viewed from one client, become a `rootd`
//! [`FaultPlan`] that a `FaultyTransport` can execute.
//!
//! Only events with a wire-visible signature map to faults:
//!
//! * [`DegradedMode::BitflipZone`] — transfers from the letter arrive
//!   bit-flipped: a per-exchange `bitflip_prob` on both protocols;
//! * [`EventKind::RttInflation`] — DDoS-style latency: the base RTT is
//!   scaled by the event's factor (past the client timeout this turns
//!   into timeouts, which is the point);
//! * [`EventKind::SiteOutage`] — anycast routes one client to one site,
//!   so from that client's seat a site outage is an upstream that went
//!   dark: a full blackhole window.
//!
//! Zone-content events (`StaleZone`, `ZonemdPhase`) stay with the
//! scenario engine's zone generation — they corrupt *data*, not the
//! wire, and the refresh client must catch them via validation rather
//! than transport errors.
//!
//! Two projections exist: [`fault_plan_at`] freezes the events active at
//! one wall instant (for code that steps time itself), while
//! [`fault_plan_on_clock`] maps every event window onto a shared
//! [`simclock`] axis so one plan serves an entire clock-driven run.

use crate::event::{DegradedMode, EventKind};
use crate::timeline::Scenario;
use netsim::rng::SimRng;
use rootd::recovery::FailureKind;
use rootd::{FailurePlan, FaultPlan, FaultSpec};
use rss::RootLetter;
use simclock::TimeAxis;

/// Baseline one-exchange latency (virtual ms) that [`EventKind::RttInflation`]
/// scales. Chosen so factors ≳25 with the default 1 s client timeout start
/// producing client-visible timeouts.
pub const BASE_RTT_MS: u64 = 40;

/// The fault plan in force at instant `t`: every wire-visible event whose
/// window covers `t` contributes a per-upstream spec, keyed by the
/// letter's index. Upstreams without an active event stay clean. The plan
/// seed derives from the scenario seed, so the same scenario at the same
/// instant always yields the same fault stream.
pub fn fault_plan_at(scenario: &Scenario, t: u32) -> FaultPlan {
    let mut plan = FaultPlan::clean(scenario.seed() ^ 0xc4a0_5000);
    for event in scenario.events() {
        if t < event.at || t >= event.effective_until() {
            continue;
        }
        if let Some((upstream, spec)) = event_spec(&event.kind) {
            plan.set_both(upstream, spec);
        }
    }
    plan
}

/// The spec one wire-visible event contributes, independent of timing.
fn event_spec(kind: &EventKind) -> Option<(u64, FaultSpec)> {
    match *kind {
        EventKind::Degraded {
            letter,
            mode: DegradedMode::BitflipZone { prob },
        } => Some((
            letter.index() as u64,
            FaultSpec {
                bitflip_prob: prob,
                ..FaultSpec::clean()
            },
        )),
        EventKind::RttInflation { letter, factor } => {
            let delay = (BASE_RTT_MS as f64 * factor) as u64;
            Some((
                letter.index() as u64,
                FaultSpec {
                    delay_ms: delay,
                    delay_jitter_ms: delay / 4,
                    ..FaultSpec::clean()
                },
            ))
        }
        EventKind::SiteOutage { letter, .. } => {
            Some((letter.index() as u64, FaultSpec::blackhole()))
        }
        _ => None,
    }
}

/// The whole scenario projected onto one virtual clock: every
/// wire-visible event becomes a *windowed* per-upstream spec on the
/// `axis` that maps the scenario's wall-clock seconds onto virtual
/// milliseconds. Unlike [`fault_plan_at`] — one frozen instant per call —
/// the returned plan covers the full timeline, so a transport driven by a
/// shared [`simclock::ClockHandle`] moves *through* the event windows as
/// its clients spend time: the same plan serves the whole run, and every
/// fault decision stays a pure function of `(scenario seed, exchange
/// key)`.
pub fn fault_plan_on_clock(scenario: &Scenario, axis: TimeAxis) -> FaultPlan {
    let mut plan = FaultPlan::clean(scenario.seed() ^ 0xc4a0_5000);
    for event in scenario.events() {
        let Some((upstream, spec)) = event_spec(&event.kind) else {
            continue;
        };
        let start = axis.wall_to_ms(event.at);
        let end = match event.until {
            Some(until) => axis.wall_to_ms(until),
            None => u64::MAX,
        };
        plan.set_both_windowed(upstream, (start, end), spec);
    }
    plan
}

/// The *fleet*-side projection of the same scenario: the load generator
/// keys its per-site transports by site id (which anycast site answers a
/// client), so an outage of one of `letter`'s sites becomes a blackhole
/// window on that site's transport, on the same `axis` the client-seat
/// plan uses. Letter-wide wire events (RTT inflation, zone bitflips)
/// describe what *clients of the letter as a whole* experience and stay
/// with [`fault_plan_on_clock`]; a site outage is the only event
/// addressed to a specific site.
pub fn fault_plan_for_fleet(scenario: &Scenario, letter: RootLetter, axis: TimeAxis) -> FaultPlan {
    let mut plan = FaultPlan::clean(scenario.seed() ^ 0xc4a0_5117);
    for event in scenario.events() {
        let EventKind::SiteOutage { letter: l, site } = event.kind else {
            continue;
        };
        if l != letter {
            continue;
        }
        let start = axis.wall_to_ms(event.at);
        let end = match event.until {
            Some(until) => axis.wall_to_ms(until),
            None => u64::MAX,
        };
        plan.set_both_windowed(u64::from(site.0), (start, end), FaultSpec::blackhole());
    }
    plan
}

/// The *farm*-side projection: scenario events become a site-level
/// [`FailurePlan`] the serving farm's chaos runner executes against its
/// health/recovery control plane, on the same `axis` as the client and
/// fleet plans.
///
/// * [`EventKind::SiteOutage`] — the site goes dark for the window. A
///   seeded coin decides *how*: an engine **crash** (needs the recovery
///   controller's restart ladder) or a network **blackhole** (heals when
///   the window ends) — the paper's measurements can't tell the two
///   apart from outside, but the farm's recovery path differs, so the
///   projection exercises both;
/// * [`EventKind::RttInflation`] — a letter-wide slowdown becomes a
///   **stall** window on every one of the letter's rostered sites
///   (serving continues, late);
/// * [`DegradedMode::BitflipZone`] — corrupt zone data at the letter
///   becomes a **poisoned reload** pushed at the window start, which the
///   validated reload path must refuse.
///
/// `roster` lists each letter's served site ids (what `Farm::letters`
/// exposes) so letter-wide events fan out to the letter's actual sites.
/// The plan seed is derived from the scenario seed with its own tag —
/// distinct from the client-seat and fleet fault streams.
pub fn failure_plan_on_clock(
    scenario: &Scenario,
    axis: TimeAxis,
    roster: &[(RootLetter, Vec<u32>)],
) -> FailurePlan {
    let mut plan = FailurePlan::none(scenario.seed() ^ 0xc4a0_5a11);
    let sites_of = |letter: RootLetter| -> &[u32] {
        roster
            .iter()
            .find(|(l, _)| *l == letter)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[])
    };
    for event in scenario.events() {
        let start = axis.wall_to_ms(event.at);
        let end = match event.until {
            Some(until) => axis.wall_to_ms(until),
            None => u64::MAX,
        };
        match event.kind {
            EventKind::SiteOutage { letter, site } => {
                let crash = SimRng::new(plan.seed)
                    .derive_ids(&[0xfa11, letter.index() as u64, u64::from(site.0), start])
                    .chance(0.5);
                let kind = if crash {
                    FailureKind::Crash
                } else {
                    FailureKind::Blackhole
                };
                plan.add(letter, site.0, kind, (start, end));
            }
            EventKind::RttInflation { letter, factor } => {
                let delay_ms = (BASE_RTT_MS as f64 * factor) as u64;
                for &site in sites_of(letter) {
                    plan.add(letter, site, FailureKind::Stall { delay_ms }, (start, end));
                }
            }
            EventKind::Degraded {
                letter,
                mode: DegradedMode::BitflipZone { .. },
            } => {
                plan.add_poisoned_reload(letter, start);
            }
            _ => {}
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ScenarioEvent;
    use netsim::anycast::SiteId;
    use rootd::Protocol;
    use rss::RootLetter;

    fn scenario() -> Scenario {
        Scenario::new(
            "chaos-map",
            11,
            vec![
                ScenarioEvent {
                    at: 100,
                    until: Some(200),
                    kind: EventKind::Degraded {
                        letter: RootLetter::C,
                        mode: DegradedMode::BitflipZone { prob: 0.25 },
                    },
                },
                ScenarioEvent {
                    at: 150,
                    until: None,
                    kind: EventKind::RttInflation {
                        letter: RootLetter::D,
                        factor: 50.0,
                    },
                },
                ScenarioEvent {
                    at: 100,
                    until: Some(300),
                    kind: EventKind::SiteOutage {
                        letter: RootLetter::A,
                        site: SiteId(0),
                    },
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn active_events_project_to_specs() {
        let s = scenario();
        let plan = fault_plan_at(&s, 160);
        let a = RootLetter::A.index() as u64;
        let c = RootLetter::C.index() as u64;
        let d = RootLetter::D.index() as u64;
        assert!(!plan.spec(a, Protocol::Udp).blackholes.is_empty());
        assert_eq!(plan.spec(c, Protocol::Tcp).bitflip_prob, 0.25);
        assert_eq!(plan.spec(d, Protocol::Udp).delay_ms, 50 * BASE_RTT_MS);
        // An uninvolved letter stays clean.
        let k = RootLetter::K.index() as u64;
        assert!(plan.spec(k, Protocol::Udp).is_clean());
    }

    #[test]
    fn expired_and_future_events_do_not_project() {
        let s = scenario();
        let before = fault_plan_at(&s, 50);
        let c = RootLetter::C.index() as u64;
        assert!(before.spec(c, Protocol::Udp).is_clean());
        // Bitflip window [100, 200) is over at 250; the outage isn't.
        let later = fault_plan_at(&s, 250);
        assert!(later.spec(c, Protocol::Udp).is_clean());
        let a = RootLetter::A.index() as u64;
        assert!(!later.spec(a, Protocol::Udp).blackholes.is_empty());
        // Permanent RttInflation never expires.
        let d = RootLetter::D.index() as u64;
        assert!(!later.spec(d, Protocol::Udp).is_clean());
    }

    #[test]
    fn clock_plan_projects_whole_windows_onto_the_axis() {
        let s = scenario();
        // Anchor the axis 100 s before the first event, so event seconds
        // land at (at - 0) * 1000 virtual ms.
        let axis = simclock::TimeAxis::anchored_at(0);
        let plan = fault_plan_on_clock(&s, axis);
        let a = RootLetter::A.index() as u64;
        let c = RootLetter::C.index() as u64;
        let d = RootLetter::D.index() as u64;
        // Outage window [100 s, 300 s) ⇒ [100_000, 300_000) ms.
        assert!(plan.spec_at(a, Protocol::Udp, 99_999).is_clean());
        assert!(!plan
            .spec_at(a, Protocol::Udp, 100_000)
            .blackholes
            .is_empty());
        assert!(plan.spec_at(a, Protocol::Udp, 300_000).is_clean());
        // Bitflip window [100 s, 200 s).
        assert_eq!(plan.spec_at(c, Protocol::Tcp, 150_000).bitflip_prob, 0.25);
        assert!(plan.spec_at(c, Protocol::Tcp, 200_000).is_clean());
        // The permanent RTT inflation never ends.
        assert_eq!(
            plan.spec_at(d, Protocol::Udp, u64::MAX - 1).delay_ms,
            50 * BASE_RTT_MS
        );
        // At any instant, the clock plan agrees with the frozen plan.
        for t in [50u32, 160, 250] {
            let frozen = fault_plan_at(&s, t);
            let t_ms = axis.wall_to_ms(t);
            for u in [a, c, d] {
                assert_eq!(
                    frozen.spec(u, Protocol::Udp),
                    plan.spec_at(u, Protocol::Udp, t_ms),
                    "divergence at t={t} upstream={u}"
                );
            }
        }
    }

    #[test]
    fn fleet_plan_keys_outages_by_site_id() {
        let s = scenario();
        let axis = simclock::TimeAxis::anchored_at(0);
        // Only the outage addresses a site, and only A's fleet sees it.
        let plan = fault_plan_for_fleet(&s, RootLetter::A, axis);
        assert!(!plan
            .spec_at(0, Protocol::Udp, 150_000)
            .blackholes
            .is_empty());
        assert!(plan.spec_at(0, Protocol::Udp, 99_999).is_clean());
        assert!(plan.spec_at(0, Protocol::Udp, 300_000).is_clean());
        // Letter-wide events (bitflip on C, RTT on D) do not project to
        // any site of their fleets — they are client-seat faults.
        let c_fleet = fault_plan_for_fleet(&s, RootLetter::C, axis);
        assert!(c_fleet.spec_at(0, Protocol::Tcp, 150_000).is_clean());
        // An uninvolved fleet's plan is clean everywhere.
        let d_fleet = fault_plan_for_fleet(&s, RootLetter::D, axis);
        assert!(d_fleet.spec_at(0, Protocol::Udp, 200_000).is_clean());
        // The two projections derive distinct fault streams.
        assert_ne!(plan.seed, fault_plan_on_clock(&s, axis).seed);
    }

    #[test]
    fn event_spec_coverage_matches_wire_visible() {
        use netsim::AsId;
        use rss::Renumbering;
        let kinds = [
            EventKind::SiteOutage {
                letter: RootLetter::A,
                site: SiteId(0),
            },
            EventKind::SiteAddition {
                letter: RootLetter::A,
                site: SiteId(0),
            },
            EventKind::PrefixRenumbering {
                change: Renumbering::B_ROOT,
            },
            EventKind::RouteFlapBurst {
                letter: RootLetter::A,
                boost: 2.0,
            },
            EventKind::PeeringLinkFailure {
                a: AsId(1),
                b: AsId(2),
            },
            EventKind::Degraded {
                letter: RootLetter::A,
                mode: DegradedMode::BitflipZone { prob: 0.1 },
            },
            EventKind::Degraded {
                letter: RootLetter::A,
                mode: DegradedMode::StaleZone { stuck_day: 0 },
            },
            EventKind::RttInflation {
                letter: RootLetter::A,
                factor: 2.0,
            },
            // Attack traffic is loadgen-side, not a transport fault: it
            // projects through `attack::attack_plan_on_clock` instead.
            EventKind::AttackFlood {
                letter: RootLetter::A,
                intensity: 10,
            },
            EventKind::ReflectionBurst {
                letter: RootLetter::A,
                victim: AsId(1),
                intensity: 10,
            },
            EventKind::QueryStorm {
                letter: RootLetter::A,
                client: AsId(1),
                intensity: 10,
            },
        ];
        for kind in kinds {
            assert_eq!(
                event_spec(&kind).is_some(),
                kind.wire_visible(),
                "projection and predicate disagree on {}",
                kind.label()
            );
        }
    }

    #[test]
    fn failure_plan_projects_outages_stalls_and_poisoned_reloads() {
        let s = scenario();
        let axis = simclock::TimeAxis::anchored_at(0);
        let roster = vec![
            (RootLetter::A, vec![0, 7]),
            (RootLetter::C, vec![3]),
            (RootLetter::D, vec![4, 5]),
        ];
        let plan = failure_plan_on_clock(&s, axis, &roster);
        // The outage projects to exactly one window on A's site 0, as a
        // crash or a blackhole (never a stall).
        let w = plan.windows_for(RootLetter::A, 0);
        assert_eq!(w.len(), 1);
        assert_eq!((w[0].start_ms, w[0].end_ms), (100_000, 300_000));
        assert!(matches!(
            w[0].kind,
            FailureKind::Crash | FailureKind::Blackhole
        ));
        // The uninvolved site of A stays clean.
        assert!(plan.windows_for(RootLetter::A, 7).is_empty());
        // The letter-wide RTT inflation stalls every rostered D site.
        for site in [4, 5] {
            let w = plan.windows_for(RootLetter::D, site);
            assert_eq!(w.len(), 1, "site {site}");
            assert_eq!(w[0].start_ms, 150_000);
            assert_eq!(w[0].end_ms, u64::MAX);
            assert_eq!(
                w[0].kind,
                FailureKind::Stall {
                    delay_ms: 50 * BASE_RTT_MS
                }
            );
        }
        // The zone bitflip becomes a poisoned reload at C.
        assert_eq!(plan.poisoned_reloads.len(), 1);
        assert_eq!(plan.poisoned_reloads[0].letter, RootLetter::C);
        assert_eq!(plan.poisoned_reloads[0].at_ms, 100_000);
        // Replay identity: same scenario, same plan; own seed stream.
        let again = failure_plan_on_clock(&s, axis, &roster);
        assert_eq!(
            plan.windows_for(RootLetter::A, 0),
            again.windows_for(RootLetter::A, 0)
        );
        assert_eq!(plan.poisoned_reloads, again.poisoned_reloads);
        assert_ne!(plan.seed, fault_plan_on_clock(&s, axis).seed);
        assert_ne!(
            plan.seed,
            fault_plan_for_fleet(&s, RootLetter::A, axis).seed
        );
    }

    #[test]
    fn plan_seed_is_a_pure_function_of_the_scenario_seed() {
        let s = scenario();
        assert_eq!(fault_plan_at(&s, 160).seed, fault_plan_at(&s, 160).seed);
        assert_ne!(
            fault_plan_at(&s, 160).seed,
            Scenario::new("other", 12, vec![])
                .map(|o| fault_plan_at(&o, 160).seed)
                .unwrap()
        );
    }
}
