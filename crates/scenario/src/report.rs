//! From a [`ScenarioRun`] to the before/during/after diff report.

use crate::engine::ScenarioRun;
use crate::timeline::Scenario;
use analysis::epochs::{EpochDiffReport, EpochStats};
use rss::RootLetter;
use traces::TraceConfig;
use vantage::population::Population;

/// Build the per-epoch diff report of `run` for one focus letter.
///
/// Epoch labels: `baseline` while no event is active, the `+`-joined
/// labels of the active events during an event epoch, and `after` once
/// all events have expired again.
pub fn epoch_diff(
    run: &ScenarioRun,
    letter: RootLetter,
    population: &Population,
) -> EpochDiffReport {
    let epochs = run
        .epochs
        .iter()
        .map(|e| {
            let label = if e.active.is_empty() {
                if e.index == 0 { "baseline" } else { "after" }.to_string()
            } else {
                e.active.join("+")
            };
            let mut stats =
                EpochStats::compute(label, letter, population, &e.probes, e.start, e.end);
            stats.validation_failures = e.validation_failures as usize;
            stats
        })
        .collect();
    EpochDiffReport { letter, epochs }
}

/// Align a passive-trace configuration with `scenario`: if the timeline
/// renumbers a letter, traffic generation switches prefixes on the
/// scenario's date instead of the hardcoded historical one.
pub fn align_trace_config(mut cfg: TraceConfig, scenario: &Scenario) -> TraceConfig {
    if let Some(r) = scenario.renumbering() {
        cfg.b_change_date = r.change_date;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::engine::EpochRun;
    use rss::Renumbering;

    #[test]
    fn labels_follow_active_events() {
        let run = ScenarioRun {
            scenario_name: "t".into(),
            epochs: vec![
                EpochRun {
                    index: 0,
                    start: 0,
                    end: 100,
                    active: vec![],
                    probes: vec![],
                    transfers: vec![],
                    validation_failures: 0,
                },
                EpochRun {
                    index: 1,
                    start: 100,
                    end: 200,
                    active: vec!["outage(d/0)".into(), "flap(g×5)".into()],
                    probes: vec![],
                    transfers: vec![],
                    validation_failures: 7,
                },
                EpochRun {
                    index: 2,
                    start: 200,
                    end: 300,
                    active: vec![],
                    probes: vec![],
                    transfers: vec![],
                    validation_failures: 0,
                },
            ],
        };
        let world = vantage::World::build(&vantage::WorldBuildConfig::tiny());
        let report = epoch_diff(&run, RootLetter::D, &world.population);
        let labels: Vec<&str> = report.epochs.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["baseline", "outage(d/0)+flap(g×5)", "after"]);
        assert_eq!(report.epochs[1].validation_failures, 7);
    }

    #[test]
    fn trace_alignment_takes_scenario_change_date() {
        let cfg = align_trace_config(TraceConfig::isp(1), &catalog::broot_renumbering());
        assert_eq!(cfg.b_change_date, Renumbering::B_ROOT.change_date);
    }
}
