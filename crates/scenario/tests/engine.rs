//! Scenario-engine integration tests: replay determinism, equivalence with
//! the continuous pipeline (the b.root anchor), event composition, and the
//! full event-kind apply/revert lifecycle.

use analysis::BRootShift;
use dns_zone::rollout::RolloutPhase;
use netsim::anycast::SiteId;
use rss::{Renumbering, RootLetter};
use scenario::{
    catalog, epoch_diff, DegradedMode, EventKind, Scenario, ScenarioConfig, ScenarioEngine,
    ScenarioEvent,
};
use traces::gen::{generate_flows, ObservationWindow, TraceConfig};
use vantage::records::{ProbeRecord, TransferRecord};
use vantage::{
    MeasurementConfig, MeasurementEngine, Schedule, World, WorldBuildConfig, MEASUREMENT_START,
};

fn tiny_world() -> World {
    World::build(&WorldBuildConfig::tiny())
}

fn short_config() -> MeasurementConfig {
    MeasurementConfig {
        schedule: Schedule::subsampled(400),
        ..Default::default()
    }
}

/// A two-day, 6-hourly schedule for cheap event-lifecycle tests.
fn two_day_schedule(days: u32) -> Schedule {
    Schedule {
        start: MEASUREMENT_START,
        end: MEASUREMENT_START + days * 86_400,
        base_interval: 21_600,
        burst_interval: 10_800,
        burst_windows: vec![],
        axfr_from: MEASUREMENT_START,
        subsample: 1,
    }
}

fn probe_key(
    p: &ProbeRecord,
) -> (
    vantage::population::VpId,
    u32,
    vantage::records::Target,
    netsim::Family,
) {
    (p.vp, p.time, p.target, p.family)
}

fn transfer_key(
    t: &TransferRecord,
) -> (
    vantage::population::VpId,
    u32,
    vantage::records::Target,
    netsim::Family,
) {
    (t.vp, t.time, t.target, t.family)
}

fn sorted(
    mut probes: Vec<ProbeRecord>,
    mut transfers: Vec<TransferRecord>,
) -> (Vec<ProbeRecord>, Vec<TransferRecord>) {
    probes.sort_by_key(probe_key);
    transfers.sort_by_key(transfer_key);
    (probes, transfers)
}

#[test]
fn event_free_scenario_matches_continuous_run() {
    // Baseline equivalence: a scenario with no events is just the ordinary
    // measurement — one epoch, bit-identical records.
    let mut world = tiny_world();
    let empty = Scenario::new("empty", 1, vec![]).unwrap();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: short_config(),
        burst_half_width: 43_200,
        workers: 3,
    });
    let run = engine.run(&mut world, &empty);
    assert_eq!(run.epochs.len(), 1);
    assert!(run.epochs[0].active.is_empty());

    let continuous = MeasurementEngine::new(&world, short_config()).run_parallel(3);
    assert_eq!(
        sorted(run.all_probes(), run.all_transfers()),
        sorted(continuous.probes, continuous.transfers),
    );
}

#[test]
fn replay_is_deterministic() {
    // Same world build + same scenario + same config ⇒ bit-identical runs.
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: short_config(),
        burst_half_width: 21_600,
        workers: 2,
    });
    let scenario = catalog::outage_renumber_flap();
    let mut w1 = tiny_world();
    let a = engine.run(&mut w1, &scenario);
    let mut w2 = tiny_world();
    let b = engine.run(&mut w2, &scenario);
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.active, eb.active);
        assert_eq!(ea.probes, eb.probes);
        assert_eq!(ea.transfers, eb.transfers);
        assert_eq!(ea.validation_failures, eb.validation_failures);
    }
}

#[test]
fn broot_scenario_matches_continuous_pipeline() {
    // The equivalence anchor: the built-in b.root renumbering scenario must
    // reproduce the legacy continuous pipeline exactly, on both the active
    // and the passive side — the engine's intensified-probing window around
    // the change falls inside the schedule's existing 2023-11-20..12-06
    // high-resolution window, so the round grid is unchanged, and the
    // session carries churn state across the epoch cut.
    let mut world = tiny_world();
    let scenario = catalog::broot_renumbering();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: short_config(),
        burst_half_width: 43_200,
        workers: 3,
    });
    let run = engine.run(&mut world, &scenario);
    assert_eq!(run.epochs.len(), 2, "one cut at the change date");
    assert_eq!(run.epochs[1].start, rss::B_ROOT_CHANGE_DATE);
    assert_eq!(run.epochs[1].active, vec!["renumber(b)".to_string()]);

    // Active side: concatenated epochs == one continuous run.
    let continuous = MeasurementEngine::new(&world, short_config()).run_parallel(3);
    assert_eq!(
        sorted(run.all_probes(), run.all_transfers()),
        sorted(continuous.probes, continuous.transfers),
    );

    // Passive side: aligning the trace config to the scenario's change
    // date is the identity for the historical date, so the traffic-shift
    // analysis is reproduced verbatim.
    let seed = world.seed();
    let windows = ObservationWindow::isp_windows();
    let mut legacy_cfg = TraceConfig::isp(seed);
    legacy_cfg.population.clients_per_family = 120;
    let legacy_flows = generate_flows(&legacy_cfg, &windows);
    let mut aligned_cfg = scenario::report::align_trace_config(TraceConfig::isp(seed), &scenario);
    aligned_cfg.population.clients_per_family = 120;
    let scenario_flows = generate_flows(&aligned_cfg, &windows);
    assert_eq!(legacy_flows, scenario_flows);
    let day = traces::DayBucket(Renumbering::B_ROOT.change_date / 86_400);
    let legacy =
        BRootShift::compute(&legacy_flows).render("b.root", traces::DayBucket(day.0 - 7), day);
    let ours =
        BRootShift::compute(&scenario_flows).render("b.root", traces::DayBucket(day.0 - 7), day);
    assert_eq!(legacy, ours);

    // And the per-epoch diff report covers the renumbering scenario.
    let report = epoch_diff(&run, RootLetter::B, &world.population);
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(report.epochs[0].label, "baseline");
    assert_eq!(report.epochs[1].label, "renumber(b)");
    assert!(report.render().contains("renumber(b)"));
}

#[test]
fn outage_epoch_diff_shows_catchment_shift() {
    let mut world = tiny_world();
    // Pick a d.root site that actually serves traffic in this world: the
    // busiest one in a cheap pre-run over the first few rounds.
    let cfg = MeasurementConfig {
        schedule: two_day_schedule(2),
        ..Default::default()
    };
    let pre = MeasurementEngine::new(&world, cfg.clone()).run_parallel(2);
    let mut served: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for p in &pre.probes {
        if p.target.letter == RootLetter::D {
            if let Some(site) = p.site {
                *served.entry(site.0).or_default() += 1;
            }
        }
    }
    let top_site = *served
        .iter()
        .max_by_key(|(_, n)| **n)
        .expect("d.root serves traffic")
        .0;

    let schedule = two_day_schedule(6);
    let outage_from = schedule.start + 2 * 86_400;
    let outage_until = schedule.start + 4 * 86_400;
    let scenario = Scenario::new(
        "d_outage",
        7,
        vec![ScenarioEvent {
            at: outage_from,
            until: Some(outage_until),
            kind: EventKind::SiteOutage {
                letter: RootLetter::D,
                site: SiteId(top_site),
            },
        }],
    )
    .unwrap();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: MeasurementConfig {
            schedule,
            ..Default::default()
        },
        burst_half_width: 0,
        workers: 2,
    });
    let run = engine.run(&mut world, &scenario);
    assert_eq!(run.epochs.len(), 3, "baseline / outage / after");

    // No probe in the outage epoch may be served by the withdrawn site.
    for p in &run.epochs[1].probes {
        if p.target.letter == RootLetter::D {
            assert_ne!(p.site, Some(SiteId(top_site)));
        }
    }

    let report = epoch_diff(&run, RootLetter::D, &world.population);
    assert_eq!(report.epochs.len(), 3);
    assert!(report.epochs[0].catchment.contains_key(&top_site));
    assert!(!report.epochs[1].catchment.contains_key(&top_site));
    // The withdrawn site's share had to move somewhere else.
    assert!(report.epochs[0].catchment_shift(&report.epochs[1]) > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("baseline"));
    assert!(rendered.contains("outage(d/"));
    assert!(rendered.contains("after"));
}

#[test]
fn flap_burst_composes_without_touching_other_letters() {
    // A route-flap burst on g.root must not perturb any other letter's
    // record stream, nor g.root's own records before the burst starts —
    // the override draws no extra randomness and the per-probe rng is
    // derived per (vp, target, family, round).
    let schedule = two_day_schedule(4);
    let burst_at = schedule.start + 86_400;
    let cfg = MeasurementConfig {
        schedule: schedule.clone(),
        ..Default::default()
    };
    let mut world = tiny_world();
    let baseline = MeasurementEngine::new(&world, cfg.clone()).run_parallel(2);
    let scenario = Scenario::new(
        "g_flap",
        9,
        vec![ScenarioEvent {
            at: burst_at,
            until: Some(burst_at + 86_400),
            kind: EventKind::RouteFlapBurst {
                letter: RootLetter::G,
                boost: 8.0,
            },
        }],
    )
    .unwrap();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: cfg,
        burst_half_width: 0,
        workers: 2,
    });
    let run = engine.run(&mut world, &scenario);

    let split = |probes: Vec<ProbeRecord>| {
        let mut others: Vec<ProbeRecord> = probes
            .iter()
            .filter(|p| p.target.letter != RootLetter::G)
            .cloned()
            .collect();
        let mut g_before: Vec<ProbeRecord> = probes
            .into_iter()
            .filter(|p| p.target.letter == RootLetter::G && p.time < burst_at)
            .collect();
        others.sort_by_key(probe_key);
        g_before.sort_by_key(probe_key);
        (others, g_before)
    };
    assert_eq!(split(run.all_probes()), split(baseline.probes));
}

#[test]
fn all_event_kinds_apply_and_revert_cleanly() {
    let mut world = tiny_world();
    // An adjacent AS pair for the link-failure event.
    let a = world.topology.nodes()[0].id;
    let b = world.topology.links(a)[0].to;
    let start = MEASUREMENT_START;
    let mid = start + 86_400;
    let until = Some(mid);
    // All seven event kinds at once, each in its own scope.
    let events = vec![
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::SiteOutage {
                letter: RootLetter::D,
                site: SiteId(0),
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::SiteAddition {
                letter: RootLetter::C,
                site: SiteId(0),
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::PrefixRenumbering {
                change: Renumbering {
                    letter: RootLetter::B,
                    change_date: start,
                },
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::RouteFlapBurst {
                letter: RootLetter::G,
                boost: 4.0,
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::PeeringLinkFailure { a, b },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::Degraded {
                letter: RootLetter::K,
                mode: DegradedMode::BitflipZone { prob: 1.0 },
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::Degraded {
                letter: RootLetter::M,
                mode: DegradedMode::ZonemdPhase {
                    phase: RolloutPhase::Validating,
                },
            },
        },
        ScenarioEvent {
            at: start,
            until,
            kind: EventKind::RttInflation {
                letter: RootLetter::A,
                factor: 3.0,
            },
        },
    ];
    let scenario = Scenario::new("everything", 11, events).unwrap();

    let hashes_before: Vec<u64> = RootLetter::ALL
        .iter()
        .map(|&l| world.routing_hash(l))
        .collect();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: MeasurementConfig {
            schedule: two_day_schedule(2),
            ..Default::default()
        },
        burst_half_width: 0,
        workers: 2,
    });
    let run = engine.run(&mut world, &scenario);

    assert_eq!(run.epochs.len(), 2);
    assert_eq!(
        run.epochs[0].active.len(),
        8,
        "all events active in epoch 0"
    );
    assert!(run.epochs[1].active.is_empty());
    assert!(!run.epochs[0].probes.is_empty());
    // The letter-wide bitflip degradation must show up as validation
    // failures during — and only during — its window.
    assert!(run.epochs[0].validation_failures > 0);

    // Teardown restored the world exactly: routing, withdrawals, zone state.
    let hashes_after: Vec<u64> = RootLetter::ALL
        .iter()
        .map(|&l| world.routing_hash(l))
        .collect();
    assert_eq!(hashes_before, hashes_after);
    assert!(world.zonemd_override().is_none());
    for &l in RootLetter::ALL.iter() {
        assert!(world.withdrawn_sites(l).is_empty());
    }
}
