//! Property tests for the scenario timeline invariants: ordering by
//! activation time, same-scope overlap rejection, and apply→revert
//! restoring the routing ground truth exactly.

use netsim::anycast::SiteId;
use proptest::prelude::*;
use rss::RootLetter;
use scenario::{EventKind, Scenario, ScenarioConfig, ScenarioEngine, ScenarioEvent};
use std::sync::{Mutex, OnceLock};
use vantage::{MeasurementConfig, Schedule, World, WorldBuildConfig, MEASUREMENT_START};

/// One shared world: building it per proptest case would dominate runtime,
/// and each case returns it in its pre-run state (that is the property).
fn world() -> &'static Mutex<World> {
    static WORLD: OnceLock<Mutex<World>> = OnceLock::new();
    WORLD.get_or_init(|| Mutex::new(World::build(&WorldBuildConfig::tiny())))
}

/// Events pinned to distinct letters so scopes never collide and
/// construction always succeeds.
fn distinct_scope_events() -> impl Strategy<Value = Vec<ScenarioEvent>> {
    prop::collection::vec((0u32..1_000, 1u32..500, 0u32..6, any::<bool>()), 1..8).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (at, width, site, permanent))| {
                let letter = RootLetter::ALL[i % 13];
                ScenarioEvent {
                    at,
                    until: (!permanent).then_some(at + width),
                    kind: if i % 2 == 0 {
                        EventKind::SiteOutage {
                            letter,
                            site: SiteId(site),
                        }
                    } else {
                        EventKind::RttInflation {
                            letter,
                            factor: 2.0,
                        }
                    },
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn events_are_sorted_by_activation_time(events in distinct_scope_events()) {
        let s = Scenario::new("p", 0, events).unwrap();
        for w in s.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn overlapping_same_scope_windows_rejected(
        a1 in 0u32..1_000,
        w1 in 1u32..500,
        offset in 0u32..499,
        w2 in 1u32..500,
    ) {
        // Second window starts strictly inside the first.
        let a2 = a1 + (offset % w1);
        let mk = |at: u32, width: u32, site: u32| ScenarioEvent {
            at,
            until: Some(at + width),
            kind: EventKind::SiteOutage {
                letter: RootLetter::D,
                site: SiteId(site),
            },
        };
        let res = Scenario::new("p", 0, vec![mk(a1, w1, 0), mk(a2, w2, 1)]);
        prop_assert!(matches!(res, Err(scenario::ScenarioError::OverlappingScope { .. })));
    }

    #[test]
    fn apply_revert_restores_routing_hash(seed in any::<u64>(), n_events in 1usize..6) {
        // Random mutating events, all active from the very start; a
        // zero-round schedule makes the run pure apply→revert. After the
        // run the routing fingerprint of every letter must be back.
        let mut world = world().lock().unwrap();
        let mut events = Vec::new();
        let n_nodes = world.topology.len() as u64;
        for i in 0..n_events {
            let letter = RootLetter::ALL[(seed as usize + i) % 13];
            let kind = match (seed >> (i * 8)) % 3 {
                0 => EventKind::SiteOutage {
                    letter,
                    site: SiteId(((seed >> (i * 4)) % 5) as u32),
                },
                1 => {
                    let a = netsim::AsId(((seed >> (i * 3)) % n_nodes) as u32);
                    let b = world.topology.links(a).first().map(|l| l.to).unwrap_or(a);
                    EventKind::PeeringLinkFailure { a, b }
                }
                _ => EventKind::RouteFlapBurst { letter, boost: 3.0 },
            };
            events.push(ScenarioEvent { at: MEASUREMENT_START, until: None, kind });
        }
        // Distinct-scope filtering: keep the first event per scope.
        let mut seen = Vec::new();
        events.retain(|e| {
            let s = e.kind.scope();
            if seen.contains(&s) {
                false
            } else {
                seen.push(s);
                true
            }
        });
        let scenario = Scenario::new("p", seed, events).unwrap();
        let before: Vec<u64> = RootLetter::ALL.iter().map(|&l| world.routing_hash(l)).collect();
        let engine = ScenarioEngine::new(ScenarioConfig {
            base: MeasurementConfig {
                schedule: Schedule {
                    start: MEASUREMENT_START,
                    end: MEASUREMENT_START,
                    ..Default::default()
                },
                ..Default::default()
            },
            burst_half_width: 0,
            workers: 1,
        });
        engine.run(&mut world, &scenario);
        let after: Vec<u64> = RootLetter::ALL.iter().map(|&l| world.routing_hash(l)).collect();
        prop_assert_eq!(before, after);
        for &l in RootLetter::ALL.iter() {
            prop_assert!(world.withdrawn_sites(l).is_empty());
        }
    }
}
