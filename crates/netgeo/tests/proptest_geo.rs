//! Property-based tests for the geodesy layer.

use netgeo::{fiber_rtt_ms, haversine_km, Coord, EARTH_RADIUS_KM};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = Coord> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| Coord::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_symmetric(a in coord(), b in coord()) {
        prop_assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn distance_nonnegative_and_bounded(a in coord(), b in coord()) {
        let d = haversine_km(a, b);
        prop_assert!(d >= 0.0);
        // Max distance is half the circumference.
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn distance_zero_iff_same_point(a in coord()) {
        prop_assert_eq!(haversine_km(a, a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in coord(), b in coord(), c in coord()) {
        let ab = haversine_km(a, b);
        let bc = haversine_km(b, c);
        let ac = haversine_km(a, c);
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn normalization_idempotent(lat in -200.0f64..200.0, lon in -500.0f64..500.0) {
        let c = Coord::new(lat, lon);
        let again = Coord::new(c.lat, c.lon);
        prop_assert_eq!(c, again);
        prop_assert!((-90.0..=90.0).contains(&c.lat));
        prop_assert!((-180.0..=180.0).contains(&c.lon));
    }

    #[test]
    fn rtt_monotone_in_distance(a in 0.0f64..20000.0, b in 0.0f64..20000.0) {
        if a < b {
            prop_assert!(fiber_rtt_ms(a) <= fiber_rtt_ms(b));
        }
    }
}
