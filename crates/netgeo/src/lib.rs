//! Geodesy for the `roots-go-deep` network simulation.
//!
//! Provides coordinates, great-circle distance, a fibre-propagation delay
//! model, the six-continent region scheme the paper reports on, and a city
//! database (with IATA codes) used to place root server sites, vantage
//! points, ASes and IXPs on the globe.

pub mod city;
pub mod coord;
pub mod delay;
pub mod region;

pub use city::{City, CityDb};
pub use coord::{haversine_km, Coord, EARTH_RADIUS_KM};
pub use delay::{fiber_rtt_ms, ms_per_km, PATH_STRETCH};
pub use region::Region;
