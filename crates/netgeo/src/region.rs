//! The six-continent region scheme used throughout the paper
//! (Tables 3 and 4, Figures 4, 6, 14, 15).

use serde::{Deserialize, Serialize};

/// A continent-level region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    SouthAmerica,
    Oceania,
}

impl Region {
    /// All regions in the order the paper's tables list them.
    pub const ALL: [Region; 6] = [
        Region::Africa,
        Region::Asia,
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Oceania,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Region::Africa => "Africa",
            Region::Asia => "Asia",
            Region::Europe => "Europe",
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Oceania => "Oceania",
        }
    }

    /// Stable index (the order of [`Region::ALL`]); handy for array-backed
    /// per-region accumulators.
    pub fn index(self) -> usize {
        match self {
            Region::Africa => 0,
            Region::Asia => 1,
            Region::Europe => 2,
            Region::NorthAmerica => 3,
            Region::SouthAmerica => 4,
            Region::Oceania => 5,
        }
    }

    /// Parse from the table names (case-insensitive, spaces optional).
    pub fn parse(s: &str) -> Option<Region> {
        let canon: String = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase();
        match canon.as_str() {
            "africa" => Some(Region::Africa),
            "asia" => Some(Region::Asia),
            "europe" => Some(Region::Europe),
            "northamerica" | "n.america" => Some(Region::NorthAmerica),
            "southamerica" | "s.america" => Some(Region::SouthAmerica),
            "oceania" => Some(Region::Oceania),
            _ => None,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_six_unique_regions() {
        let mut set = std::collections::HashSet::new();
        for r in Region::ALL {
            assert!(set.insert(r));
        }
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for r in Region::ALL {
            assert_eq!(Region::parse(r.name()), Some(r));
        }
        assert_eq!(Region::parse("N. America"), Some(Region::NorthAmerica));
        assert_eq!(Region::parse("atlantis"), None);
    }
}
