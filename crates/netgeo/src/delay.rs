//! Fibre propagation delay model.
//!
//! The paper's rule of thumb (§6): "Due to the speed of light in fiber every
//! 1,000 km induces ~10 ms of delay" — i.e. ~5 ms one-way per 1,000 km at
//! refractive index ≈1.47, doubled for the round trip. Real paths are not
//! great circles, so a path-stretch factor accounts for fibre routing.

/// Multiplier applied to great-circle distance to approximate actual fibre
/// route length. Literature values range 1.2–2.0; 1.25 keeps the simulated
/// RTT magnitudes in the range the paper reports (Figure 6).
pub const PATH_STRETCH: f64 = 1.25;

/// One-way propagation delay per kilometre of fibre, in milliseconds.
///
/// c/1.47 ≈ 204,000 km/s → ~4.9 µs/km one-way.
pub fn ms_per_km() -> f64 {
    1000.0 / 204_000.0
}

/// Round-trip time over `km` of great-circle distance, in milliseconds,
/// including path stretch. Excludes queueing/processing (the simulator adds
/// per-hop costs separately).
pub fn fiber_rtt_ms(km: f64) -> f64 {
    2.0 * km * PATH_STRETCH * ms_per_km()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousand_km_is_about_ten_ms() {
        // The paper's rule of thumb: 1,000 km ≈ 10 ms RTT.
        let rtt = fiber_rtt_ms(1000.0);
        assert!((rtt - 10.0).abs() < 3.0, "got {rtt}");
    }

    #[test]
    fn zero_distance_zero_delay() {
        assert_eq!(fiber_rtt_ms(0.0), 0.0);
    }

    #[test]
    fn monotone_in_distance() {
        assert!(fiber_rtt_ms(2000.0) > fiber_rtt_ms(1000.0));
    }

    #[test]
    fn transatlantic_magnitude() {
        // ~6,200 km Frankfurt–NYC should be roughly 60–90 ms RTT.
        let rtt = fiber_rtt_ms(6200.0);
        assert!((55.0..100.0).contains(&rtt), "got {rtt}");
    }
}
