//! City database used to place root server sites, vantage points, ASes and
//! IXPs on the globe.
//!
//! Coordinates are approximate city centroids (public geographic facts,
//! rounded to two decimals — a few km of error is irrelevant at the
//! 1,000 km ≈ 10 ms scale the analyses work at). Every city carries the IATA
//! code of its main airport because root operators name instances after
//! airports, and the paper matches `{a,c,j,e}.root` instances via exactly
//! those codes (§4.2, footnote 2).

use crate::coord::Coord;
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// One city entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// City name, lowercase-ascii, used in synthesized hostnames.
    pub name: &'static str,
    /// IATA code of the principal airport, lowercase.
    pub iata: &'static str,
    /// ISO 3166-1 alpha-2 country code, lowercase.
    pub country: &'static str,
    /// Continent-level region.
    pub region: Region,
    /// Approximate centroid.
    pub coord: Coord,
}

macro_rules! city {
    ($name:literal, $iata:literal, $cc:literal, $region:ident, $lat:literal, $lon:literal) => {
        City {
            name: $name,
            iata: $iata,
            country: $cc,
            region: Region::$region,
            coord: Coord {
                lat: $lat,
                lon: $lon,
            },
        }
    };
}

/// The static city table. Sorted by region then name; `CityDb` provides
/// indexed access.
pub const CITIES: &[City] = &[
    // --- Africa ---
    city!("abidjan", "abj", "ci", Africa, 5.36, -4.01),
    city!("accra", "acc", "gh", Africa, 5.60, -0.19),
    city!("addisababa", "add", "et", Africa, 9.01, 38.75),
    city!("cairo", "cai", "eg", Africa, 30.04, 31.24),
    city!("capetown", "cpt", "za", Africa, -33.92, 18.42),
    city!("casablanca", "cmn", "ma", Africa, 33.57, -7.59),
    city!("dakar", "dss", "sn", Africa, 14.69, -17.44),
    city!("daressalaam", "dar", "tz", Africa, -6.79, 39.21),
    city!("durban", "dur", "za", Africa, -29.86, 31.03),
    city!("gaborone", "gbe", "bw", Africa, -24.63, 25.92),
    city!("johannesburg", "jnb", "za", Africa, -26.20, 28.05),
    city!("kampala", "ebb", "ug", Africa, 0.35, 32.58),
    city!("kigali", "kgl", "rw", Africa, -1.94, 30.06),
    city!("lagos", "los", "ng", Africa, 6.52, 3.38),
    city!("lusaka", "lun", "zm", Africa, -15.39, 28.32),
    city!("maputo", "mpm", "mz", Africa, -25.97, 32.58),
    city!("mauritius", "mru", "mu", Africa, -20.16, 57.50),
    city!("mombasa", "mba", "ke", Africa, -4.04, 39.67),
    city!("nairobi", "nbo", "ke", Africa, -1.29, 36.82),
    city!("tunis", "tun", "tn", Africa, 36.81, 10.18),
    // --- Asia ---
    city!("almaty", "ala", "kz", Asia, 43.26, 76.93),
    city!("amman", "amm", "jo", Asia, 31.95, 35.93),
    city!("bangkok", "bkk", "th", Asia, 13.76, 100.50),
    city!("beijing", "pek", "cn", Asia, 39.90, 116.41),
    city!("chennai", "maa", "in", Asia, 13.08, 80.27),
    city!("colombo", "cmb", "lk", Asia, 6.93, 79.85),
    city!("delhi", "del", "in", Asia, 28.61, 77.21),
    city!("dhaka", "dac", "bd", Asia, 23.81, 90.41),
    city!("doha", "doh", "qa", Asia, 25.29, 51.53),
    city!("dubai", "dxb", "ae", Asia, 25.20, 55.27),
    city!("hanoi", "han", "vn", Asia, 21.03, 105.85),
    city!("hongkong", "hkg", "hk", Asia, 22.32, 114.17),
    city!("istanbul", "ist", "tr", Asia, 41.01, 28.98),
    city!("jakarta", "cgk", "id", Asia, -6.21, 106.85),
    city!("kaohsiung", "khh", "tw", Asia, 22.63, 120.30),
    city!("karachi", "khi", "pk", Asia, 24.86, 67.01),
    city!("kathmandu", "ktm", "np", Asia, 27.72, 85.32),
    city!("kualalumpur", "kul", "my", Asia, 3.139, 101.69),
    city!("manila", "mnl", "ph", Asia, 14.60, 120.98),
    city!("mumbai", "bom", "in", Asia, 19.08, 72.88),
    city!("osaka", "kix", "jp", Asia, 34.69, 135.50),
    city!("phnompenh", "pnh", "kh", Asia, 11.56, 104.92),
    city!("riyadh", "ruh", "sa", Asia, 24.71, 46.68),
    city!("seoul", "icn", "kr", Asia, 37.57, 126.98),
    city!("singapore", "sin", "sg", Asia, 1.35, 103.82),
    city!("taipei", "tpe", "tw", Asia, 25.03, 121.57),
    city!("tashkent", "tas", "uz", Asia, 41.30, 69.24),
    city!("telaviv", "tlv", "il", Asia, 32.09, 34.78),
    city!("tokyo", "nrt", "jp", Asia, 35.68, 139.69),
    city!("ulaanbaatar", "uln", "mn", Asia, 47.89, 106.91),
    // --- Europe ---
    city!("amsterdam", "ams", "nl", Europe, 52.37, 4.90),
    city!("athens", "ath", "gr", Europe, 37.98, 23.73),
    city!("barcelona", "bcn", "es", Europe, 41.39, 2.17),
    city!("belgrade", "beg", "rs", Europe, 44.79, 20.45),
    city!("berlin", "ber", "de", Europe, 52.52, 13.41),
    city!("bratislava", "bts", "sk", Europe, 48.15, 17.11),
    city!("brussels", "bru", "be", Europe, 50.85, 4.35),
    city!("bucharest", "otp", "ro", Europe, 44.43, 26.10),
    city!("budapest", "bud", "hu", Europe, 47.50, 19.04),
    city!("copenhagen", "cph", "dk", Europe, 55.68, 12.57),
    city!("dublin", "dub", "ie", Europe, 53.35, -6.26),
    city!("frankfurt", "fra", "de", Europe, 50.11, 8.68),
    city!("geneva", "gva", "ch", Europe, 46.20, 6.14),
    city!("hamburg", "ham", "de", Europe, 53.55, 9.99),
    city!("helsinki", "hel", "fi", Europe, 60.17, 24.94),
    city!("kyiv", "kbp", "ua", Europe, 50.45, 30.52),
    city!("leeds", "lba", "gb", Europe, 53.80, -1.55),
    city!("lisbon", "lis", "pt", Europe, 38.72, -9.14),
    city!("london", "lhr", "gb", Europe, 51.51, -0.13),
    city!("luxembourg", "lux", "lu", Europe, 49.61, 6.13),
    city!("madrid", "mad", "es", Europe, 40.42, -3.70),
    city!("manchester", "man", "gb", Europe, 53.48, -2.24),
    city!("marseille", "mrs", "fr", Europe, 43.30, 5.37),
    city!("milan", "mxp", "it", Europe, 45.46, 9.19),
    city!("moscow", "svo", "ru", Europe, 55.76, 37.62),
    city!("munich", "muc", "de", Europe, 48.14, 11.58),
    city!("oslo", "osl", "no", Europe, 59.91, 10.75),
    city!("paris", "cdg", "fr", Europe, 48.86, 2.35),
    city!("prague", "prg", "cz", Europe, 50.08, 14.44),
    city!("reykjavik", "kef", "is", Europe, 64.15, -21.94),
    city!("riga", "rix", "lv", Europe, 56.95, 24.11),
    city!("rome", "fco", "it", Europe, 41.90, 12.50),
    city!("sofia", "sof", "bg", Europe, 42.70, 23.32),
    city!("stockholm", "arn", "se", Europe, 59.33, 18.07),
    city!("tallinn", "tll", "ee", Europe, 59.44, 24.75),
    city!("vienna", "vie", "at", Europe, 48.21, 16.37),
    city!("vilnius", "vno", "lt", Europe, 54.69, 25.28),
    city!("warsaw", "waw", "pl", Europe, 52.23, 21.01),
    city!("zurich", "zrh", "ch", Europe, 47.38, 8.54),
    // --- North America ---
    city!("ashburn", "iad", "us", NorthAmerica, 39.04, -77.49),
    city!("atlanta", "atl", "us", NorthAmerica, 33.75, -84.39),
    city!("boston", "bos", "us", NorthAmerica, 42.36, -71.06),
    city!("calgary", "yyc", "ca", NorthAmerica, 51.05, -114.07),
    city!("chicago", "ord", "us", NorthAmerica, 41.88, -87.63),
    city!("dallas", "dfw", "us", NorthAmerica, 32.78, -96.80),
    city!("denver", "den", "us", NorthAmerica, 39.74, -104.99),
    city!("guatemalacity", "gua", "gt", NorthAmerica, 14.63, -90.51),
    city!("houston", "iah", "us", NorthAmerica, 29.76, -95.37),
    city!("kansascity", "mci", "us", NorthAmerica, 39.10, -94.58),
    city!("losangeles", "lax", "us", NorthAmerica, 34.05, -118.24),
    city!("mexicocity", "mex", "mx", NorthAmerica, 19.43, -99.13),
    city!("miami", "mia", "us", NorthAmerica, 25.76, -80.19),
    city!("minneapolis", "msp", "us", NorthAmerica, 44.98, -93.27),
    city!("montreal", "yul", "ca", NorthAmerica, 45.50, -73.57),
    city!("newyork", "jfk", "us", NorthAmerica, 40.71, -74.01),
    city!("panamacity", "pty", "pa", NorthAmerica, 8.98, -79.52),
    city!("phoenix", "phx", "us", NorthAmerica, 33.45, -112.07),
    city!("saltlakecity", "slc", "us", NorthAmerica, 40.76, -111.89),
    city!("sanfrancisco", "sfo", "us", NorthAmerica, 37.77, -122.42),
    city!("sanjose", "sjc", "us", NorthAmerica, 37.34, -121.89),
    city!("seattle", "sea", "us", NorthAmerica, 47.61, -122.33),
    city!("toronto", "yyz", "ca", NorthAmerica, 43.65, -79.38),
    city!("vancouver", "yvr", "ca", NorthAmerica, 49.28, -123.12),
    city!("washington", "dca", "us", NorthAmerica, 38.91, -77.04),
    // --- South America ---
    city!("asuncion", "asu", "py", SouthAmerica, -25.26, -57.58),
    city!("bogota", "bog", "co", SouthAmerica, 4.71, -74.07),
    city!("buenosaires", "eze", "ar", SouthAmerica, -34.60, -58.38),
    city!("caracas", "ccs", "ve", SouthAmerica, 10.48, -66.90),
    city!("fortaleza", "for", "br", SouthAmerica, -3.73, -38.53),
    city!("lima", "lim", "pe", SouthAmerica, -12.05, -77.04),
    city!("montevideo", "mvd", "uy", SouthAmerica, -34.90, -56.16),
    city!("portoalegre", "poa", "br", SouthAmerica, -30.03, -51.23),
    city!("quito", "uio", "ec", SouthAmerica, -0.18, -78.47),
    city!("riodejaneiro", "gig", "br", SouthAmerica, -22.91, -43.17),
    city!("santiago", "scl", "cl", SouthAmerica, -33.45, -70.67),
    city!("saopaulo", "gru", "br", SouthAmerica, -23.55, -46.63),
    // --- Oceania ---
    city!("adelaide", "adl", "au", Oceania, -34.93, 138.60),
    city!("auckland", "akl", "nz", Oceania, -36.85, 174.76),
    city!("brisbane", "bne", "au", Oceania, -27.47, 153.03),
    city!("christchurch", "chc", "nz", Oceania, -43.53, 172.64),
    city!("melbourne", "mel", "au", Oceania, -37.81, 144.96),
    city!("nadi", "nan", "fj", Oceania, -17.80, 177.42),
    city!("noumea", "nou", "nc", Oceania, -22.26, 166.45),
    city!("perth", "per", "au", Oceania, -31.95, 115.86),
    city!("sydney", "syd", "au", Oceania, -33.87, 151.21),
    city!("wellington", "wlg", "nz", Oceania, -41.29, 174.78),
];

/// Indexed access over [`CITIES`].
#[derive(Debug, Clone)]
pub struct CityDb;

impl CityDb {
    /// All cities.
    pub fn all() -> &'static [City] {
        CITIES
    }

    /// Cities in `region`.
    pub fn in_region(region: Region) -> impl Iterator<Item = &'static City> {
        CITIES.iter().filter(move |c| c.region == region)
    }

    /// Look up by city name.
    pub fn by_name(name: &str) -> Option<&'static City> {
        CITIES.iter().find(|c| c.name == name)
    }

    /// Look up by IATA code (lowercase or uppercase).
    pub fn by_iata(iata: &str) -> Option<&'static City> {
        let lower = iata.to_ascii_lowercase();
        CITIES.iter().find(|c| c.iata == lower)
    }

    /// The city nearest to `coord`.
    pub fn nearest(coord: Coord) -> &'static City {
        CITIES
            .iter()
            .min_by(|a, b| {
                a.coord
                    .distance_km(&coord)
                    .partial_cmp(&b.coord.distance_km(&coord))
                    .unwrap()
            })
            .expect("city table is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iata_codes_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in CITIES {
            assert!(seen.insert(c.iata), "duplicate IATA {}", c.iata);
        }
    }

    #[test]
    fn names_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in CITIES {
            assert!(seen.insert(c.name), "duplicate name {}", c.name);
        }
    }

    #[test]
    fn every_region_has_cities() {
        for r in Region::ALL {
            assert!(CityDb::in_region(r).count() >= 10, "region {r} too small");
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(CityDb::by_name("tokyo").unwrap().iata, "nrt");
        assert_eq!(CityDb::by_iata("FRA").unwrap().name, "frankfurt");
        assert_eq!(CityDb::by_iata("fra").unwrap().name, "frankfurt");
        assert!(CityDb::by_name("gotham").is_none());
    }

    #[test]
    fn nearest_returns_self_for_city_coord() {
        let fra = CityDb::by_name("frankfurt").unwrap();
        assert_eq!(CityDb::nearest(fra.coord).name, "frankfurt");
    }

    #[test]
    fn coordinates_in_range() {
        for c in CITIES {
            assert!((-90.0..=90.0).contains(&c.coord.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.coord.lon), "{}", c.name);
        }
    }

    #[test]
    fn leeds_and_tokyo_present_for_table2() {
        // Table 2's stale d.root sites are in Tokyo and Leeds; the catalog
        // must be able to place them.
        assert!(CityDb::by_name("tokyo").is_some());
        assert!(CityDb::by_name("leeds").is_some());
    }
}
