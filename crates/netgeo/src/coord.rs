//! Geographic coordinates and great-circle distance.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the globe, degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

impl Coord {
    /// Construct a coordinate, normalizing longitude into `[-180, 180]` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        Coord { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(&self, other: &Coord) -> f64 {
        haversine_km(*self, *other)
    }
}

/// Haversine great-circle distance between two coordinates, in kilometres.
pub fn haversine_km(a: Coord, b: Coord) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let c = Coord::new(52.5, 13.4);
        assert_eq!(haversine_km(c, c), 0.0);
    }

    #[test]
    fn known_city_pairs() {
        // Frankfurt (50.11, 8.68) to New York (40.71, -74.01): ~6,200 km.
        let fra = Coord::new(50.11, 8.68);
        let nyc = Coord::new(40.71, -74.01);
        let d = haversine_km(fra, nyc);
        assert!(approx(d, 6200.0, 100.0), "got {d}");

        // London to Sydney: ~17,000 km.
        let lon = Coord::new(51.51, -0.13);
        let syd = Coord::new(-33.87, 151.21);
        let d = haversine_km(lon, syd);
        assert!(approx(d, 17000.0, 200.0), "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = Coord::new(10.0, 20.0);
        let b = Coord::new(-30.0, 140.0);
        assert!(approx(haversine_km(a, b), haversine_km(b, a), 1e-9));
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(0.0, 180.0);
        let d = haversine_km(a, b);
        assert!(
            approx(d, std::f64::consts::PI * EARTH_RADIUS_KM, 1.0),
            "got {d}"
        );
    }

    #[test]
    fn crossing_dateline_is_short() {
        let a = Coord::new(0.0, 179.5);
        let b = Coord::new(0.0, -179.5);
        let d = haversine_km(a, b);
        assert!(d < 150.0, "got {d}");
    }

    #[test]
    fn longitude_normalization() {
        assert_eq!(Coord::new(0.0, 190.0).lon, -170.0);
        assert_eq!(Coord::new(0.0, -190.0).lon, 170.0);
        assert_eq!(Coord::new(0.0, 360.0).lon, 0.0);
    }

    #[test]
    fn latitude_clamped() {
        assert_eq!(Coord::new(95.0, 0.0).lat, 90.0);
        assert_eq!(Coord::new(-95.0, 0.0).lat, -90.0);
    }

    #[test]
    fn triangle_inequality_samples() {
        let pts = [
            Coord::new(0.0, 0.0),
            Coord::new(45.0, 45.0),
            Coord::new(-30.0, 120.0),
        ];
        let ab = haversine_km(pts[0], pts[1]);
        let bc = haversine_km(pts[1], pts[2]);
        let ac = haversine_km(pts[0], pts[2]);
        assert!(ac <= ab + bc + 1e-6);
    }
}
