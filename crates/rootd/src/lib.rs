//! `rootd`: a wire-level authoritative root server engine.
//!
//! The measurement crates model root servers as in-process structs
//! (`rss::RootServer` answers `Message` values directly). This crate is the
//! *serving* layer the north star asks for: request bytes in, response
//! bytes out, through the real codec path.
//!
//! * [`index`] — [`ZoneIndex`]: the signed root zone precompiled into hash
//!   lookups (positive RRsets with covering RRSIGs, TLD referral bundles
//!   with glue, the NSEC chain for negative proofs);
//! * [`engine`] — [`Rootd`]: parse with `dns_wire::Message::from_wire`,
//!   answer (authoritative data, referrals, NXDOMAIN, CHAOS identity,
//!   AXFR), encode honoring the advertised EDNS payload size with TC-bit
//!   truncation at record boundaries;
//! * [`cache`] — [`AnswerCache`]: wire responses precompiled per zone
//!   epoch, served by splicing the request id/RD/question into stored
//!   bytes (zero allocation on hits);
//! * [`transport`] — the [`Transport`] abstraction with two impls: the
//!   deterministic [`InprocTransport`] (tests, `localroot` refresh) and
//!   [`LoopbackTransport`] over real UDP and TCP sockets on 127.0.0.1;
//! * [`faults`] — [`FaultyTransport`]: a seeded chaos decorator over any
//!   transport (loss, duplication, reordering, delay, bitflips, mid-AXFR
//!   truncation, blackholes, garbage) driven by a [`FaultPlan`], with
//!   per-fault counters and bit-identical replay;
//! * [`loadgen`] — a multithreaded load generator replaying seeded,
//!   B-Root-shaped query mixes (Ginesin & Mirkovic's composition study)
//!   from simulated clients against per-site engines, with log-bucketed
//!   latency histograms (p50/p95/p99) and throughput reporting;
//! * [`rrl`] — [`Rrl`]: BIND-style response-rate limiting with
//!   per-(source-prefix, response-class) fixed-window budgets and
//!   slip/TC behavior, epoch-swapped alongside the serving state;
//! * [`attack`] — seeded adversarial workloads (water-torture NXDOMAIN
//!   floods, spoofed reflection, priming floods, per-client query
//!   storms) interleaved with benign load on the shared virtual-time
//!   axis, replaying bit-identically across worker counts;
//! * [`health`] — the per-site health state machine (Healthy → Suspect
//!   → Dead → Probation) fed by watchdog probes, and the
//!   [`HealthTimeline`] the farm's failover steering reads;
//! * [`recovery`] — deterministic site failure injection
//!   ([`FailurePlan`]: crash / stall / blackhole windows, poisoned
//!   reloads) and the recovery controller ([`run_control_plane`]):
//!   capped-exponential restart backoff on the shared virtual clock,
//!   producing the piecewise-constant [`ControlPlane`] that keeps chaos
//!   runs bit-identical across shard counts.

pub mod attack;
pub mod cache;
pub mod engine;
pub mod farm;
pub mod faults;
pub mod health;
pub mod index;
pub mod loadgen;
pub mod recovery;
pub mod rrl;
pub mod transport;

pub use attack::{AttackConfig, AttackPlan, AttackReport, AttackShape, AttackWindow, EpochTraffic};
pub use cache::AnswerCache;
pub use engine::{
    BatchTally, ReloadError, Rootd, ServeOutcome, ServeVerdict, SharedState, SiteIdentity,
};
pub use farm::{
    ChaosOutcome, Farm, FarmChaosConfig, FarmChaosReport, FarmConfig, FarmReport, FloodWindow,
};
pub use faults::{FaultCounters, FaultPlan, FaultSpec, FaultyTransport, Protocol};
pub use health::{HealthConfig, HealthTimeline, ProbeOutcome, SiteHealth, SiteStatus};
pub use index::{Lookup, Referral, ZoneIndex};
pub use loadgen::{ArrivalSchedule, LoadReport, LoadgenConfig, QueryClass, QueryMix, SiteFleet};
pub use recovery::{
    run_control_plane, ControlPlane, FailureKind, FailurePlan, FailureWindow, LetterControl,
    PoisonedReload, RecoveryLog, RecoveryPolicy,
};
pub use rrl::{BucketStat, ResponseClass, Rrl, RrlConfig, RrlCounters, RrlDecision};
pub use transport::{
    InprocTransport, LoopbackServer, LoopbackTransport, Transport, TransportError, UdpBatch,
};
