//! Precompiled answer cache: the zero-allocation UDP fast path.
//!
//! At build time every reachable answer shape — (qname, qtype) × EDNS
//! state {none, EDNS, EDNS+DO} — is run through the exact same answerer
//! code the fallback path uses and the resulting wire bytes
//! are stored, together with pre-truncated variants at the EDNS budget
//! buckets {512, 1232, 4096}. Serving a hit is then a hash lookup plus a
//! splice: copy the stored bytes into the caller's scratch buffer and
//! patch the message id, the RD bit, and the question region (which
//! preserves the client's qname casing; compression pointers into the
//! question stay valid because suffix matching is case-insensitive).
//!
//! NXDOMAIN cannot be enumerated — junk qnames are unbounded — so it is
//! served from *templates*: one pre-encoded negative response per NSEC
//! chain link, built against a root (".") question, with every
//! compression pointer logged so the tail can be relocated when the real
//! qname is longer than one byte. A template refuses (falls back) when
//! the qname shares a label suffix with any record name in the response,
//! because the fallback encoder would compress against the question there
//! and produce different — equally valid — bytes.
//!
//! Everything else falls through to the full parse/respond path: AXFR,
//! FORMERR, NSID requests, non-canonical OPT records, payload budgets
//! that are neither a bucket nor large enough for the full response, and
//! names below a delegation (referral qnames are unbounded too, and cold).

use crate::engine::{encode_limited_into, Answerer};
use crate::index::{RrsetEntry, ZoneIndex};
use dns_wire::edns::{set_edns, Edns};
use dns_wire::rdata::Rdata;
use dns_wire::wire::WireWriter;
use dns_wire::{Class, Message, Name, Question, Rcode, RrType};
use std::collections::{HashMap, HashSet};

/// Offset where the question section of a message ends when the qname is
/// the 1-byte root: 12-byte header + 1 + qtype (2) + qclass (2).
const ROOT_QEND: usize = 17;

/// Maximum qname wire length (RFC 1035).
const MAX_QNAME: usize = 255;

/// Maximum labels in a qname (every label costs at least 2 wire bytes).
const MAX_LABELS: usize = 127;

/// EDNS budget buckets with pre-truncated variants. Clients overwhelmingly
/// advertise one of these (RFC 1035 floor, the flag-day 1232, our own
/// 4096 ceiling); anything else falls back when the full response is over
/// budget.
const BUCKETS: [usize; 3] = [512, 1232, 4096];

/// The CHAOS identity names answered per-site (RFC 4892 conventions).
const CHAOS_NAMES: [&str; 4] = [
    "hostname.bind.",
    "id.server.",
    "version.bind.",
    "version.server.",
];

/// Qtypes precompiled per zone name. Covers every type the zone can hold
/// plus the common NODATA probes; other types fall back (and answer
/// NODATA/REFUSED identically, just slower).
const CACHED_QTYPES: [RrType; 13] = [
    RrType::A,
    RrType::Ns,
    RrType::Cname,
    RrType::Soa,
    RrType::Mx,
    RrType::Txt,
    RrType::Aaaa,
    RrType::Ds,
    RrType::Rrsig,
    RrType::Nsec,
    RrType::Dnskey,
    RrType::Zonemd,
    RrType::Any,
];

/// One fully pre-encoded response, with truncated variants for every
/// budget bucket it overflows.
#[derive(Debug)]
struct ResponseSet {
    full: Box<[u8]>,
    t512: Option<Box<[u8]>>,
    t1232: Option<Box<[u8]>>,
    t4096: Option<Box<[u8]>>,
}

impl ResponseSet {
    /// The stored bytes to serve under `limit`, if any: the full response
    /// when it fits, the exact bucket variant when the budget is a bucket,
    /// fallback otherwise.
    fn select(&self, limit: usize) -> Option<&[u8]> {
        if self.full.len() <= limit {
            return Some(&self.full);
        }
        match limit {
            512 => self.t512.as_deref(),
            1232 => self.t1232.as_deref(),
            4096 => self.t4096.as_deref(),
            _ => None,
        }
    }
}

/// All precompiled responses for one (qtype, class) at one name.
#[derive(Debug)]
struct ExactShape {
    qtype: u16,
    class: u16,
    /// Indexed by EDNS state: 0 = no EDNS, 1 = EDNS, 2 = EDNS+DO.
    states: [ResponseSet; 3],
}

/// A parametric negative response: pre-encoded against a root question,
/// relocated to the real qname at serve time.
#[derive(Debug)]
struct NegTemplate {
    /// The 12-byte header (id and RD patched per query).
    head: [u8; 12],
    /// Everything after the question section.
    tail: Box<[u8]>,
    /// Compression pointers inside the tail, as (offset from tail start of
    /// the 2-byte pointer, original target). Targets shift by the qname
    /// length delta at serve time.
    fixups: Box<[(u16, u16)]>,
    /// Label-suffix keys (see [`WireWriter::compressed_suffixes`]) the
    /// response's record names registered. A qname with any of these as a
    /// suffix would compress differently — fall back.
    excluded: HashSet<Vec<u8>>,
}

impl NegTemplate {
    fn emit(&self, req: &[u8], q: &FastQuery, out: &mut Vec<u8>) -> bool {
        let qend = 12 + q.qlen + 4;
        if qend + self.tail.len() > q.limit {
            return false;
        }
        for j in 0..q.nlabels {
            let start = q.labels[j].0 as usize - 1;
            if self.excluded.contains(&q.lc[start..q.qlen - 1]) {
                return false;
            }
        }
        out.clear();
        out.extend_from_slice(&self.head);
        out[0] = req[0];
        out[1] = req[1];
        out[2] = (out[2] & !0x01) | (req[2] & 0x01);
        out.extend_from_slice(&req[12..qend]);
        out.extend_from_slice(&self.tail);
        let delta = q.qlen - 1;
        if delta > 0 {
            for &(pos, target) in self.fixups.iter() {
                let p = qend + pos as usize;
                let v = 0xc000u16 | (target as usize + delta) as u16;
                out[p] = (v >> 8) as u8;
                out[p + 1] = v as u8;
            }
        }
        true
    }
}

/// A zero-copy parse of the one-question requests the cache can serve.
/// Anything it rejects goes to the fallback path, which accepts a
/// strictly larger set — so rejecting here is always safe.
struct FastQuery {
    /// Lowercased qname wire bytes (the exact-map key is `lc[..qlen]`).
    lc: [u8; MAX_QNAME],
    /// Qname wire length including the root byte.
    qlen: usize,
    /// (offset into `lc`, length) per label, leftmost first.
    labels: [(u8, u8); MAX_LABELS],
    nlabels: usize,
    qtype: u16,
    class: u16,
    /// 0 = no EDNS, 1 = EDNS, 2 = EDNS+DO.
    state: usize,
    /// Response budget (512 without EDNS, clamped advertised size with).
    limit: usize,
}

impl FastQuery {
    /// Parse a request the fast path can answer: opcode QUERY, not a
    /// response, exactly one question with an uncompressed qname, and at
    /// most one additional record which must be a bare canonical OPT (no
    /// options, version 0, no extended rcode). AA/TC request bits are
    /// ignored and RD is echoed, exactly like the fallback path.
    fn parse(req: &[u8]) -> Option<FastQuery> {
        if req.len() < ROOT_QEND || req[2] & 0xf8 != 0 {
            return None;
        }
        if req[4] != 0
            || req[5] != 1
            || req[6] != 0
            || req[7] != 0
            || req[8] != 0
            || req[9] != 0
            || req[10] != 0
            || req[11] > 1
        {
            return None;
        }
        let mut q = FastQuery {
            lc: [0; MAX_QNAME],
            qlen: 0,
            labels: [(0, 0); MAX_LABELS],
            nlabels: 0,
            qtype: 0,
            class: 0,
            state: 0,
            limit: 512,
        };
        let mut pos = 12;
        let mut w = 0usize;
        loop {
            let len = *req.get(pos)? as usize;
            if len == 0 {
                q.lc[w] = 0;
                w += 1;
                pos += 1;
                break;
            }
            // No compression pointers in qnames; enforce the 255-byte
            // name and 127-label ceilings the full parser applies.
            if len & 0xc0 != 0 || q.nlabels == MAX_LABELS || w + len + 2 > MAX_QNAME {
                return None;
            }
            let label = req.get(pos + 1..pos + 1 + len)?;
            q.lc[w] = len as u8;
            q.labels[q.nlabels] = ((w + 1) as u8, len as u8);
            for (dst, src) in q.lc[w + 1..w + 1 + len].iter_mut().zip(label) {
                *dst = src.to_ascii_lowercase();
            }
            q.nlabels += 1;
            w += 1 + len;
            pos += 1 + len;
        }
        q.qlen = w;
        let meta = req.get(pos..pos + 4)?;
        q.qtype = u16::from_be_bytes([meta[0], meta[1]]);
        q.class = u16::from_be_bytes([meta[2], meta[3]]);
        let qend = pos + 4;
        if req[11] == 0 {
            if req.len() != qend {
                return None;
            }
        } else {
            if req.len() != qend + 11 {
                return None;
            }
            let opt = &req[qend..];
            // name ".", TYPE 41, zero RDLENGTH.
            if opt[0] != 0 || opt[1] != 0 || opt[2] != 41 || opt[9] != 0 || opt[10] != 0 {
                return None;
            }
            // TTL = [ext-rcode, version, DO | Z-hi, Z-lo]: only version 0
            // with no extended rcode and no Z bits is cacheable.
            let dnssec_ok = match [opt[5], opt[6], opt[7], opt[8]] {
                [0, 0, 0, 0] => false,
                [0, 0, 0x80, 0] => true,
                _ => return None,
            };
            let payload = u16::from_be_bytes([opt[3], opt[4]]) as usize;
            q.state = if dnssec_ok { 2 } else { 1 };
            q.limit = payload.clamp(512, 4096);
        }
        Some(q)
    }

    /// The lowercased last label (TLD position), empty for the root.
    fn last_label(&self) -> &[u8] {
        if self.nlabels == 0 {
            return &[];
        }
        let (off, len) = self.labels[self.nlabels - 1];
        &self.lc[off as usize..off as usize + len as usize]
    }
}

/// Precompiled wire responses for one zone epoch. Built from (and
/// invalidated with) a [`crate::index::ZoneIndex`]; see the module docs
/// for the serve-time contract.
#[derive(Debug)]
pub struct AnswerCache {
    /// Lowercase canonical qname wire → the shapes cached at that name.
    exact: HashMap<Vec<u8>, Vec<ExactShape>>,
    /// Lowercase delegated TLD labels: names under these are referrals and
    /// fall back.
    tlds: HashSet<Vec<u8>>,
    /// NSEC chain owner labels (lowercased, canonical chain order),
    /// mirroring `ZoneIndex::covering_nsec`'s search space.
    nsec_owners: Vec<Vec<Vec<u8>>>,
    /// NXDOMAIN templates: no EDNS, EDNS, and EDNS+DO per chain link.
    nx_plain: Option<NegTemplate>,
    nx_edns: Option<NegTemplate>,
    nx_do: Vec<Option<NegTemplate>>,
    /// EDNS+DO template for an unsigned zone (empty NSEC chain).
    nx_do_unsigned: Option<NegTemplate>,
}

impl AnswerCache {
    /// Precompile every reachable shape by running it through `answerer` —
    /// the same code the fallback path executes — so cached and uncached
    /// responses are byte-identical by construction.
    pub(crate) fn build(answerer: &Answerer<'_>) -> AnswerCache {
        Self::build_inner(answerer, true)
    }

    /// Identity-free variant for state shared across a letter's sites
    /// ([`crate::engine::SharedState`]): every zone shape is precompiled,
    /// but no CHAOS identity names — those differ per site and live in
    /// each engine's own [`ChaosCache`]. IN-class queries *for* the chaos
    /// names still serve byte-identically: they are not zone names, so
    /// both this cache's NXDOMAIN template and the legacy fallback build
    /// the same negative response.
    pub(crate) fn build_zone(index: &ZoneIndex) -> AnswerCache {
        // The answerer's identity fields are only read when building
        // CHAOS shapes, which `include_chaos = false` skips.
        let version = Rdata::Txt(Vec::new());
        let answerer = Answerer {
            index,
            hostname: None,
            chaos_hostname: None,
            chaos_version: &version,
        };
        Self::build_inner(&answerer, false)
    }

    fn build_inner(answerer: &Answerer<'_>, include_chaos: bool) -> AnswerCache {
        let index = answerer.index;
        let mut exact: HashMap<Vec<u8>, Vec<ExactShape>> = HashMap::new();
        for name in index.names() {
            let shapes = exact.entry(name.canonical_wire()).or_default();
            for qtype in CACHED_QTYPES {
                shapes.push(build_shape(answerer, name, qtype, Class::In));
            }
        }
        if include_chaos {
            for chaos in CHAOS_NAMES {
                let name = Name::parse(chaos).expect("static chaos name");
                exact
                    .entry(name.canonical_wire())
                    .or_default()
                    .push(build_shape(answerer, &name, RrType::Txt, Class::Ch));
            }
        }
        let tlds = index
            .tld_labels()
            .into_iter()
            .map(String::into_bytes)
            .collect();
        let nsec_owners: Vec<Vec<Vec<u8>>> = index
            .nsec_chain()
            .iter()
            .map(|(owner, _)| {
                owner
                    .labels()
                    .map(|l| l.to_ascii_lowercase())
                    .collect::<Vec<_>>()
            })
            .collect();
        let nx_do: Vec<Option<NegTemplate>> = index
            .nsec_chain()
            .iter()
            .map(|(_, entry)| build_negative(answerer, 2, Some(entry)))
            .collect();
        let nx_do_unsigned = if nsec_owners.is_empty() {
            build_negative(answerer, 2, None)
        } else {
            None
        };
        AnswerCache {
            exact,
            tlds,
            nsec_owners,
            nx_plain: build_negative(answerer, 0, None),
            nx_edns: build_negative(answerer, 1, None),
            nx_do,
            nx_do_unsigned,
        }
    }

    /// Number of precompiled exact responses (shapes × EDNS states).
    pub fn entries(&self) -> usize {
        self.exact.values().map(|s| s.len() * 3).sum()
    }

    /// Try to serve `req` from the cache into `out`. Returns false — with
    /// `out` in an unspecified state — when the request must take the
    /// fallback path.
    pub(crate) fn serve(&self, req: &[u8], out: &mut Vec<u8>) -> bool {
        let Some(q) = FastQuery::parse(req) else {
            return false;
        };
        if q.qtype == RrType::Axfr.to_u16() {
            // AXFR-over-UDP answers with an empty TC response regardless
            // of qname; let the fallback build it.
            return false;
        }
        if let Some(shapes) = self.exact.get(&q.lc[..q.qlen]) {
            let Some(shape) = shapes
                .iter()
                .find(|s| s.qtype == q.qtype && s.class == q.class)
            else {
                return false;
            };
            let Some(bytes) = shape.states[q.state].select(q.limit) else {
                return false;
            };
            out.clear();
            out.extend_from_slice(bytes);
            splice_request(req, q.qlen, out);
            return true;
        }
        if q.class != Class::In.to_u16() {
            return false;
        }
        if self.tlds.contains(q.last_label()) {
            // Below a delegation: referral qnames are unbounded, fall back.
            return false;
        }
        // Not a zone name, not under a cut: NXDOMAIN.
        let template = match q.state {
            0 => self.nx_plain.as_ref(),
            1 => self.nx_edns.as_ref(),
            _ => match self.covering_link(&q) {
                Some(i) => self.nx_do[i].as_ref(),
                None => self.nx_do_unsigned.as_ref(),
            },
        };
        match template {
            Some(t) => t.emit(req, &q, out),
            None => false,
        }
    }

    /// The NSEC chain link covering the query name — the same wrap-around
    /// binary search as `ZoneIndex::covering_nsec`, against the parsed
    /// lowercase labels (no `Name` allocation).
    fn covering_link(&self, q: &FastQuery) -> Option<usize> {
        if self.nsec_owners.is_empty() {
            return None;
        }
        let idx = match self
            .nsec_owners
            .binary_search_by(|owner| owner_cmp_query(owner, q))
        {
            Ok(i) => i,
            Err(0) => self.nsec_owners.len() - 1,
            Err(i) => i - 1,
        };
        Some(idx)
    }
}

/// Splice the live request's id, RD bit, and question bytes into a
/// pre-encoded response already copied into `out` (the stored bytes were
/// built from an id-0, RD-clear query for the same canonical qname).
fn splice_request(req: &[u8], qlen: usize, out: &mut [u8]) {
    out[0] = req[0];
    out[1] = req[1];
    out[2] = (out[2] & !0x01) | (req[2] & 0x01);
    let qend = 12 + qlen + 4;
    out[12..qend].copy_from_slice(&req[12..qend]);
}

/// Per-engine CHAOS identity shapes, consulted after a shared zone-only
/// [`AnswerCache`] ([`AnswerCache::build_zone`]) declines. All sites of a
/// letter share the zone cache; each engine keeps its own four identity
/// answers here, built through the same [`build_shape`] path the legacy
/// per-engine cache uses — so shared-state and standalone engines stay
/// byte-identical on the CHAOS channel too.
#[derive(Debug)]
pub(crate) struct ChaosCache {
    /// (canonical qname wire, TXT/CH shape) for each of [`CHAOS_NAMES`].
    shapes: Vec<(Vec<u8>, ExactShape)>,
}

impl ChaosCache {
    pub(crate) fn build(answerer: &Answerer<'_>) -> ChaosCache {
        let shapes = CHAOS_NAMES
            .iter()
            .map(|chaos| {
                let name = Name::parse(chaos).expect("static chaos name");
                (
                    name.canonical_wire(),
                    build_shape(answerer, &name, RrType::Txt, Class::Ch),
                )
            })
            .collect();
        ChaosCache { shapes }
    }

    /// Serve a CHAOS identity query from the per-engine shapes. Returns
    /// false (with `out` unspecified) for anything else — including the
    /// shapes the legacy cache also declines (odd payloads, NSID).
    pub(crate) fn serve(&self, req: &[u8], out: &mut Vec<u8>) -> bool {
        let Some(q) = FastQuery::parse(req) else {
            return false;
        };
        let Some((_, shape)) = self.shapes.iter().find(|(name, s)| {
            s.qtype == q.qtype && s.class == q.class && name.as_slice() == &q.lc[..q.qlen]
        }) else {
            return false;
        };
        let Some(bytes) = shape.states[q.state].select(q.limit) else {
            return false;
        };
        out.clear();
        out.extend_from_slice(bytes);
        splice_request(req, q.qlen, out);
        true
    }
}

/// `Name::canonical_cmp` over pre-lowercased labels: compare label-wise
/// from the right; the name that runs out of labels first sorts earlier.
fn owner_cmp_query(owner: &[Vec<u8>], q: &FastQuery) -> std::cmp::Ordering {
    let mut i = owner.len();
    let mut j = q.nlabels;
    loop {
        match (i, j) {
            (0, 0) => return std::cmp::Ordering::Equal,
            (0, _) => return std::cmp::Ordering::Less,
            (_, 0) => return std::cmp::Ordering::Greater,
            _ => {}
        }
        i -= 1;
        j -= 1;
        let (off, len) = q.labels[j];
        let query_label = &q.lc[off as usize..off as usize + len as usize];
        match owner[i].as_slice().cmp(query_label) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
}

/// A build-time query for one EDNS state (id 0, RD clear — both are
/// spliced from the live request at serve time).
fn state_query(name: &Name, qtype: RrType, class: Class, state: usize) -> Message {
    let mut q = Message::query(
        0,
        Question {
            name: name.clone(),
            rr_type: qtype,
            class,
        },
    );
    match state {
        0 => {}
        1 => set_edns(&mut q, &Edns::default()),
        _ => set_edns(&mut q, &Edns::dnssec()),
    }
    q
}

fn build_shape(answerer: &Answerer<'_>, name: &Name, qtype: RrType, class: Class) -> ExactShape {
    let states = [0, 1, 2].map(|state| {
        let query = state_query(name, qtype, class, state);
        let resp = answerer.respond(&query);
        let full = resp.to_wire();
        let variant = |bucket: usize| {
            if full.len() <= bucket {
                return None;
            }
            let mut v = Vec::new();
            encode_limited_into(&resp, bucket, &mut v);
            Some(v.into_boxed_slice())
        };
        ResponseSet {
            t512: variant(BUCKETS[0]),
            t1232: variant(BUCKETS[1]),
            t4096: variant(BUCKETS[2]),
            full: full.into_boxed_slice(),
        }
    });
    ExactShape {
        qtype: qtype.to_u16(),
        class: class.to_u16(),
        states,
    }
}

/// Pre-encode one NXDOMAIN template against a root question. `None` when
/// the encoding cannot be templated (a pointer lands in or targets the
/// question region — impossible for a root question, but checked).
fn build_negative(
    answerer: &Answerer<'_>,
    state: usize,
    nsec: Option<&RrsetEntry>,
) -> Option<NegTemplate> {
    let query = state_query(&Name::root(), RrType::A, Class::In, state);
    let mut resp = answerer.negative_with(&query, Rcode::NxDomain, state == 2, nsec);
    answerer.attach_edns(&query, &mut resp);
    let mut w = WireWriter::new();
    resp.encode_into_writer(&mut w);
    let mut fixups = Vec::new();
    for &(pos, target) in w.pointers() {
        if pos < ROOT_QEND || target < ROOT_QEND {
            return None;
        }
        fixups.push(((pos - ROOT_QEND) as u16, target as u16));
    }
    let excluded = w.compressed_suffixes().map(<[u8]>::to_vec).collect();
    let bytes = w.into_bytes();
    let mut head = [0u8; 12];
    head.copy_from_slice(&bytes[..12]);
    Some(NegTemplate {
        head,
        tail: bytes[ROOT_QEND..].to_vec().into_boxed_slice(),
        fixups: fixups.into_boxed_slice(),
        excluded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Rootd, ServeOutcome, SiteIdentity};
    use crate::index::ZoneIndex;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use std::sync::Arc;

    fn engines() -> (Rootd, Rootd) {
        let zone = Arc::new(build_root_zone(
            &RootZoneConfig {
                tld_count: 10,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        ));
        let index = Arc::new(ZoneIndex::build(zone));
        let plain = Rootd::new(Arc::clone(&index), SiteIdentity::named("lax2f"));
        let cached = Rootd::new(index, SiteIdentity::named("lax2f")).with_answer_cache();
        (plain, cached)
    }

    fn assert_identical(plain: &Rootd, cached: &Rootd, query: &Message) -> ServeOutcome {
        let wire = query.to_wire();
        let mut out = Vec::new();
        let outcome = cached.serve_udp_into(&wire, &mut out);
        assert_eq!(plain.serve_udp(&wire).as_deref(), Some(out.as_slice()));
        outcome
    }

    #[test]
    fn apex_and_junk_hits_are_byte_identical() {
        let (plain, cached) = engines();
        for (name, qtype) in [
            (".", RrType::Soa),
            (".", RrType::Ns),
            (".", RrType::Dnskey),
            ("com.", RrType::A),
            ("nxf00dd00dbeef.", RrType::A),
        ] {
            let name = Name::parse(name).unwrap();
            for state in 0..3 {
                let q = state_query(&name, qtype, Class::In, state);
                let outcome = assert_identical(&plain, &cached, &q);
                assert_eq!(outcome, ServeOutcome::CacheHit, "{name} {qtype:?} {state}");
            }
        }
    }

    #[test]
    fn rd_bit_and_mixed_case_are_echoed() {
        let (plain, cached) = engines();
        let mut q = state_query(&Name::parse("CoM.").unwrap(), RrType::Ns, Class::In, 2);
        q.header.id = 0xbeef;
        q.header.flags.recursion_desired = true;
        assert_eq!(
            assert_identical(&plain, &cached, &q),
            ServeOutcome::CacheHit
        );
    }

    #[test]
    fn odd_payloads_and_nsid_fall_back() {
        let (plain, cached) = engines();
        // Payload 700 is no bucket: the signed priming response overflows
        // it, so the cache must decline rather than serve the 512 variant.
        let mut q = Message::query(1, Question::new(Name::root(), RrType::Ns));
        set_edns(
            &mut q,
            &Edns {
                udp_payload_size: 700,
                dnssec_ok: true,
                ..Default::default()
            },
        );
        assert_eq!(
            assert_identical(&plain, &cached, &q),
            ServeOutcome::Fallback
        );
        let mut q = Message::query(2, Question::new(Name::root(), RrType::Soa));
        set_edns(&mut q, &Edns::dnssec().with_nsid_request());
        assert_eq!(
            assert_identical(&plain, &cached, &q),
            ServeOutcome::Fallback
        );
    }

    #[test]
    fn qnames_sharing_record_suffixes_fall_back_identically() {
        let (plain, cached) = engines();
        // "net." is a label suffix of the root-server names in the SOA
        // mname; the fallback encoder compresses the record name against
        // the question, so the template must decline.
        for name in ["net.", "root-servers.net.", "gtld-servers.net."] {
            let q = state_query(&Name::parse(name).unwrap(), RrType::A, Class::In, 2);
            assert_identical(&plain, &cached, &q);
        }
    }

    proptest::proptest! {
        /// Water-torture hardening: high-entropy random labels — alone,
        /// or grafted under a record-name suffix (`…net`) so the
        /// parametric NXDOMAIN template's collision guard must fire —
        /// are always byte-identical to the uncached engine, and the
        /// grafted ones always take the slow path (a template emit for
        /// them would mis-compress the authority names).
        #[test]
        fn water_torture_qnames_are_byte_identical_and_collisions_fall_back(
            labels in proptest::collection::vec(
                // ≥3 chars so a random label can never collide with a
                // real in-zone name (the single-letter server names).
                (proptest::collection::vec(0u8..36, 3..20), 0usize..4), 1..12),
            state in 0usize..3,
        ) {
            let (plain, cached) = engines();
            const SUFFIXES: [&str; 3] = ["root-servers.net.", "gtld-servers.net.", "net."];
            for (raw, graft) in labels {
                let label: String = raw
                    .iter()
                    .map(|&b| b"abcdefghijklmnopqrstuvwxyz0123456789"[b as usize] as char)
                    .collect();
                let name = match graft {
                    0 => format!("{label}."),
                    g => format!("{label}.{}", SUFFIXES[g - 1]),
                };
                let q = state_query(&Name::parse(&name).unwrap(), RrType::A, Class::In, state);
                // `assert_identical` does the byte compare against the
                // uncached engine.
                let outcome = assert_identical(&plain, &cached, &q);
                if graft > 0 {
                    // Sharing a suffix with record names in the negative
                    // response (or sitting below a delegated cut) must
                    // force the full fallback path.
                    proptest::prop_assert_eq!(
                        outcome,
                        ServeOutcome::Fallback,
                        "grafted qname {} served from the template",
                        name
                    );
                }
            }
        }
    }

    #[test]
    fn referrals_below_cuts_fall_back() {
        let (plain, cached) = engines();
        let q = state_query(&Name::parse("www.com.").unwrap(), RrType::A, Class::In, 2);
        assert_eq!(
            assert_identical(&plain, &cached, &q),
            ServeOutcome::Fallback
        );
    }

    #[test]
    fn chaos_identity_hits() {
        let (plain, cached) = engines();
        for name in CHAOS_NAMES {
            let q = Message::query(9, Question::chaos_txt(Name::parse(name).unwrap()));
            assert_eq!(
                assert_identical(&plain, &cached, &q),
                ServeOutcome::CacheHit
            );
        }
        // Unknown CHAOS name: REFUSED via the fallback.
        let q = Message::query(9, Question::chaos_txt(Name::parse("whoami.").unwrap()));
        assert_eq!(
            assert_identical(&plain, &cached, &q),
            ServeOutcome::Fallback
        );
    }

    #[test]
    fn fast_parse_rejects_what_the_cache_cannot_prove() {
        // Compression pointer in the qname.
        let mut req = Message::query(1, Question::new(Name::root(), RrType::A)).to_wire();
        req[12] = 0xc0;
        req.insert(13, 0x0c);
        assert!(FastQuery::parse(&req).is_none());
        // Trailing bytes.
        let mut req = Message::query(1, Question::new(Name::root(), RrType::A)).to_wire();
        req.push(0);
        assert!(FastQuery::parse(&req).is_none());
        // Non-zero opcode.
        let mut req = Message::query(1, Question::new(Name::root(), RrType::A)).to_wire();
        req[2] |= 0x08;
        assert!(FastQuery::parse(&req).is_none());
        // EDNS version 1.
        let mut req = Message::query(1, Question::new(Name::root(), RrType::A)).to_wire();
        let mut opt = vec![0, 0, 41, 0x0f, 0xa0, 0, 1, 0, 0, 0, 0];
        req[11] = 1;
        req.append(&mut opt);
        assert!(FastQuery::parse(&req).is_none());
    }
}
