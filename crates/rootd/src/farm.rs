//! The full-constellation serving farm.
//!
//! The paper measures the root as thirteen independently operated anycast
//! deployments — and its §6 churn analysis only makes sense against the
//! *whole* constellation, not one letter at a time. This module instantiates
//! that deployment surface in one process: every letter from the `rss`
//! catalog becomes a `LetterFarm` whose per-site [`Rootd`] engines share
//! one epoch-swapped [`SharedState`] (the zone index and the identity-free
//! answer cache are built **once** for the whole farm — the root zone is the
//! same bytes behind every letter — while CHAOS identity answers stay
//! per-site). Queries are steered to sites by the same Gao-Rexford
//! catchment computation the measurement layer uses, per address family.
//!
//! The farm serves through the batched datagram path
//! ([`Rootd::serve_udp_batch`] over [`UdpBatch`]): shards fill
//! per-(letter, site) request slabs and flush them through one
//! lock-acquire per batch. Shards partition the global query index
//! contiguously, every per-query decision (content, letter, family,
//! client) derives from that global index alone, and shard tallies merge
//! in shard-id order — so every counter, site distribution, and
//! response-size quantile in a [`FarmReport`] is bit-identical for any
//! shard count (a test sweeps 1..=8).
//!
//! Throughput is reported two ways, deliberately: `wall_qps` is total
//! queries over wall-clock time — on an N-core box the shards genuinely
//! overlap and this is the honest machine rate; `aggregate_qps` is the sum
//! over letters of (queries served / time spent inside that letter's serve
//! batches), i.e. the constellation's serving capacity when each letter's
//! flushes run uncontended, measured rather than extrapolated. DESIGN §15
//! discusses the distinction and the contention between the two.

use crate::cache::AnswerCache;
use crate::engine::{ReloadError, Rootd, SharedState, SiteIdentity};
use crate::health::{HealthConfig, SiteStatus};
use crate::index::ZoneIndex;
use crate::loadgen::{
    fill_query, ArrivalSchedule, LatencyHistogram, QueryClass, QueryMix, QueryTemplates,
};
use crate::recovery::{run_control_plane, ControlPlane, FailurePlan, RecoveryLog, RecoveryPolicy};
use crate::transport::UdpBatch;
use dns_zone::Zone;
use netsim::anycast::Deployment;
use netsim::rng::SimRng;
use netsim::routing::propagate;
use netsim::topology::Topology;
use netsim::types::{AsId, Family, Tier};
use rss::catalog::RootCatalog;
use rss::RootLetter;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stream tag for per-query steering draws (letter, family). Separate
/// from `QUERY_TAG` so adding a steering decision never shifts query
/// content, and vice versa.
const STEER_TAG: u64 = 0xfa24;

/// Stream tag for per-query content draws ([`fill_query`]).
const QUERY_TAG: u64 = 0x51e7;

/// Stream tag for per-query overload-shedding draws (chaos runs only).
const SHED_TAG: u64 = 0x5ed0;

/// One letter's slice of the farm: per-site engines over one shared,
/// epoch-swapped serving state, plus the per-family steering tables.
struct LetterFarm {
    letter: RootLetter,
    shared: SharedState,
    /// Per-site engines, catalog order (capped at build time).
    engines: Vec<Arc<Rootd>>,
    /// Site ids, parallel to `engines`.
    site_ids: Vec<u32>,
    /// The (possibly capped) deployment steering was computed against.
    deployment: Deployment,
    /// `steer[family][client position] -> engine slot`, from the
    /// Gao-Rexford catchment computation. Position indexes the farm's
    /// stub-AS client pool; slot 0 is the fallback for routeless clients.
    steer: [Vec<u16>; 2],
}

impl LetterFarm {
    fn slot(&self, family: usize, client_idx: usize) -> usize {
        let table = &self.steer[family];
        if table.is_empty() {
            0
        } else {
            table[client_idx % table.len()] as usize
        }
    }
}

/// The whole constellation: one `LetterFarm` per requested letter, a
/// shared client pool (the topology's stub ASes), and the TLD label set
/// query templates are cut from.
pub struct Farm {
    letters: Vec<LetterFarm>,
    clients: Vec<AsId>,
    tlds: Vec<String>,
    /// The zone epoch the farm was built from — kept so chaos runs can
    /// derive poisoned copies to push at the validated reload path.
    zone: Arc<Zone>,
}

/// Farm run parameters.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Total queries across the whole constellation.
    pub queries: usize,
    /// Worker shards. Shards own contiguous global-index ranges; every
    /// deterministic output is independent of this.
    pub shards: usize,
    /// Datagrams per [`UdpBatch`] flush.
    pub batch: usize,
    /// Simulated clients (positions into the stub-AS pool).
    pub clients: usize,
    /// Master seed for steering and content streams.
    pub seed: u64,
    pub mix: QueryMix,
    /// Fraction of queries arriving over IPv6 (steered by the v6
    /// catchment table).
    pub v6_fraction: f64,
}

impl FarmConfig {
    /// A smoke-test-sized run.
    pub fn tiny(seed: u64) -> FarmConfig {
        FarmConfig {
            queries: 20_000,
            shards: 2,
            batch: 32,
            clients: 64,
            seed,
            mix: QueryMix::broot(),
            v6_fraction: 0.3,
        }
    }
}

/// One letter's share of a [`FarmReport`].
#[derive(Debug, Clone)]
pub struct LetterLoad {
    pub letter: RootLetter,
    /// Sites serving this letter.
    pub sites: usize,
    /// Queries this letter answered.
    pub queries: u64,
    /// Nanoseconds spent inside this letter's serve batches.
    pub busy_ns: u64,
    /// Busy-time serving rate: `queries / busy_seconds`.
    pub qps: f64,
}

/// What one farm run measured.
#[derive(Debug, Clone)]
pub struct FarmReport {
    pub queries: usize,
    pub elapsed: Duration,
    /// Total queries over wall-clock time (all letters, all shards).
    pub wall_qps: f64,
    /// Sum of per-letter busy-time rates — the constellation's aggregate
    /// serving capacity with each letter's batches uncontended.
    pub aggregate_qps: f64,
    pub letters: Vec<LetterLoad>,
    /// Answer-cache hits / full-path fallbacks / unserveable datagrams.
    pub hits: u64,
    pub fallbacks: u64,
    pub dropped: u64,
    pub responses: u64,
    pub nxdomain: u64,
    pub referrals: u64,
    pub truncated: u64,
    /// Batch-amortised serve latency quantiles (flush time split evenly
    /// across its datagrams). Timing-dependent: excluded from
    /// [`FarmReport::fingerprint`].
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Response-size quantiles (bytes). Deterministic.
    pub size_p50: u64,
    pub size_p99: u64,
    /// Responses per (letter, site id), letter-major, site-sorted.
    pub per_site: Vec<(RootLetter, u32, u64)>,
}

impl FarmReport {
    /// Order-sensitive FNV digest over every deterministic field — equal
    /// fingerprints mean the runs answered the same queries the same way
    /// and distributed them across the same sites. Wall-clock and latency
    /// fields are deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.queries as u64);
        mix(self.hits);
        mix(self.fallbacks);
        mix(self.dropped);
        mix(self.responses);
        mix(self.nxdomain);
        mix(self.referrals);
        mix(self.truncated);
        mix(self.size_p50);
        mix(self.size_p99);
        for l in &self.letters {
            mix(l.letter.index() as u64);
            mix(l.sites as u64);
            mix(l.queries);
        }
        for &(letter, site, n) in &self.per_site {
            mix(letter.index() as u64);
            mix(u64::from(site));
            mix(n);
        }
        h
    }

    /// Internal-consistency checks; a healthy run returns an empty list.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.hits + self.fallbacks + self.dropped != self.queries as u64 {
            v.push(format!(
                "serve outcomes {}+{}+{} != queries {}",
                self.hits, self.fallbacks, self.dropped, self.queries
            ));
        }
        if self.responses != self.queries as u64 - self.dropped {
            v.push(format!(
                "responses {} != queries {} - dropped {}",
                self.responses, self.queries, self.dropped
            ));
        }
        let per_letter: u64 = self.letters.iter().map(|l| l.queries).sum();
        if per_letter != self.queries as u64 {
            v.push(format!(
                "per-letter queries sum {} != queries {}",
                per_letter, self.queries
            ));
        }
        let per_site: u64 = self.per_site.iter().map(|&(_, _, n)| n).sum();
        if per_site != self.responses {
            v.push(format!(
                "per-site responses sum {} != responses {}",
                per_site, self.responses
            ));
        }
        v
    }

    /// Metric pairs in the flat label→value shape `BENCH_results.json`
    /// uses: the two throughput views, latency quantiles, and one
    /// busy-rate per letter.
    pub fn metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out = vec![
            (format!("{prefix}/aggregate_qps"), self.aggregate_qps),
            (format!("{prefix}/wall_qps"), self.wall_qps),
            (format!("{prefix}/p50_ns"), self.p50_ns as f64),
            (format!("{prefix}/p99_ns"), self.p99_ns as f64),
        ];
        for l in &self.letters {
            out.push((format!("{prefix}/qps_{}", l.letter.ch()), l.qps));
        }
        out
    }

    /// The seeded, machine-independent counters only — byte-identical
    /// across runs and shard counts (timing lives in [`FarmReport::render`]).
    pub fn render_counts(&self) -> String {
        let sites: usize = self.letters.iter().map(|l| l.sites).sum();
        let mut out = format!(
            "letters        {:>12}\nsites          {:>12}\nqueries        {:>12}\nresponses      {:>12}\ncache hits     {:>12}\nfallbacks      {:>12}\ndropped        {:>12}\nnxdomain       {:>12}\nreferrals      {:>12}\ntruncated      {:>12}\nsize p50       {:>12} B\nsize p99       {:>12} B\n",
            self.letters.len(),
            sites,
            self.queries,
            self.responses,
            self.hits,
            self.fallbacks,
            self.dropped,
            self.nxdomain,
            self.referrals,
            self.truncated,
            self.size_p50,
            self.size_p99,
        );
        for l in &self.letters {
            out.push_str(&format!(
                "  {}.root  sites {:>3}  queries {:>10}\n",
                l.letter.ch(),
                l.sites,
                l.queries,
            ));
        }
        out
    }

    /// Human-readable summary: constellation totals, both throughput
    /// views, and a per-letter table.
    pub fn render(&self) -> String {
        let sites: usize = self.letters.iter().map(|l| l.sites).sum();
        let mut out = format!(
            "letters        {:>12}\nsites          {:>12}\nqueries        {:>12}\nresponses      {:>12}\ncache hits     {:>12}\nfallbacks      {:>12}\ndropped        {:>12}\nnxdomain       {:>12}\nreferrals      {:>12}\ntruncated      {:>12}\nelapsed        {:>12.3} s\nwall clock     {:>12.0} q/s\naggregate      {:>12.0} q/s (sum of per-letter busy rates)\nserve p50      {:>12} ns\nserve p99      {:>12} ns\nsize p50       {:>12} B\nsize p99       {:>12} B\n",
            self.letters.len(),
            sites,
            self.queries,
            self.responses,
            self.hits,
            self.fallbacks,
            self.dropped,
            self.nxdomain,
            self.referrals,
            self.truncated,
            self.elapsed.as_secs_f64(),
            self.wall_qps,
            self.aggregate_qps,
            self.p50_ns,
            self.p99_ns,
            self.size_p50,
            self.size_p99,
        );
        for l in &self.letters {
            out.push_str(&format!(
                "  {}.root  sites {:>3}  queries {:>10}  busy {:>9.3} ms  rate {:>12.0} q/s\n",
                l.letter.ch(),
                l.sites,
                l.queries,
                l.busy_ns as f64 / 1e6,
                l.qps,
            ));
        }
        out
    }
}

/// Per-shard tallies, merged in shard-id order after the threads join.
struct ShardStats {
    letter_queries: Vec<u64>,
    letter_busy_ns: Vec<u64>,
    /// `[letter][slot] -> responses`.
    site_counts: Vec<Vec<u64>>,
    hits: u64,
    fallbacks: u64,
    dropped: u64,
    responses: u64,
    nxdomain: u64,
    referrals: u64,
    truncated: u64,
    latency: LatencyHistogram,
    sizes: LatencyHistogram,
}

impl ShardStats {
    fn new(slots_per_letter: &[usize]) -> ShardStats {
        ShardStats {
            letter_queries: vec![0; slots_per_letter.len()],
            letter_busy_ns: vec![0; slots_per_letter.len()],
            site_counts: slots_per_letter.iter().map(|&n| vec![0; n]).collect(),
            hits: 0,
            fallbacks: 0,
            dropped: 0,
            responses: 0,
            nxdomain: 0,
            referrals: 0,
            truncated: 0,
            latency: LatencyHistogram::new(),
            sizes: LatencyHistogram::new(),
        }
    }

    /// Classify one response datagram by header bytes (the loadgen
    /// discipline: the client side stays cheap).
    fn classify(&mut self, resp: &[u8]) {
        self.responses += 1;
        if resp.len() < 12 {
            return;
        }
        if resp[2] & 0x02 != 0 {
            self.truncated += 1;
        }
        match resp[3] & 0x0f {
            3 => self.nxdomain += 1,
            0 => {
                let ancount = u16::from_be_bytes([resp[6], resp[7]]);
                let nscount = u16::from_be_bytes([resp[8], resp[9]]);
                if ancount == 0 && nscount > 0 {
                    self.referrals += 1;
                }
            }
            _ => {}
        }
    }

    /// Serve one full batch through `engine`, timing the flush and
    /// splitting its cost evenly across the batch's datagrams.
    fn flush(&mut self, engine: &Rootd, letter_idx: usize, slot: usize, batch: &mut UdpBatch) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let t0 = Instant::now();
        let tally = engine.serve_udp_batch(batch);
        let dt = t0.elapsed().as_nanos() as u64;
        self.letter_queries[letter_idx] += n;
        self.letter_busy_ns[letter_idx] += dt;
        self.hits += tally.hits;
        self.fallbacks += tally.fallbacks;
        self.dropped += tally.dropped;
        let per_query = dt / n;
        for _ in 0..n {
            self.latency.record(per_query);
        }
        for i in 0..batch.len() {
            if let Some(resp) = batch.response(i) {
                self.site_counts[letter_idx][slot] += 1;
                self.sizes.record(resp.len() as u64);
                self.classify(resp);
            }
        }
        batch.clear();
    }
}

impl Farm {
    /// Build the constellation: one shared zone index and one shared
    /// zone-only answer cache for the whole farm, per-site engines (with
    /// per-site CHAOS identity) for every requested letter, capped at
    /// `max_sites_per_letter` sites per letter (`usize::MAX` for the full
    /// catalog), and both address families' catchment tables computed
    /// against the capped deployments.
    pub fn build(
        topology: &Topology,
        catalog: &RootCatalog,
        zone: Arc<Zone>,
        letters: &[RootLetter],
        max_sites_per_letter: usize,
    ) -> Farm {
        assert!(!letters.is_empty(), "farm needs at least one letter");
        let index = Arc::new(ZoneIndex::build(Arc::clone(&zone)));
        let cache = Arc::new(AnswerCache::build_zone(&index));
        let tlds = index.tld_labels();
        let clients: Vec<AsId> = topology
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Stub)
            .map(|n| n.id)
            .collect();
        let farms = letters
            .iter()
            .map(|&letter| {
                let shared = SharedState::with_parts(Arc::clone(&index), Arc::clone(&cache));
                let mut engines = Vec::new();
                let mut site_ids = Vec::new();
                for site in catalog.sites_of(letter).take(max_sites_per_letter.max(1)) {
                    let mut engine =
                        Rootd::with_shared_state(&shared, SiteIdentity::for_site(site));
                    engine.letter = Some(letter);
                    engines.push(Arc::new(engine));
                    site_ids.push(site.site_id.0);
                }
                // Steering must route over the sites the farm actually
                // serves: announce only the kept sites.
                let full = catalog.deployment(letter);
                let deployment = Deployment {
                    name: full.name.clone(),
                    sites: full
                        .sites
                        .iter()
                        .filter(|s| site_ids.contains(&s.id.0))
                        .cloned()
                        .collect(),
                };
                let steer = [Family::V4, Family::V6].map(|family| {
                    let routes = propagate(topology, &deployment, family);
                    clients
                        .iter()
                        .map(|&asn| {
                            routes
                                .best(asn)
                                .and_then(|c| site_ids.iter().position(|&id| id == c.site.0))
                                .unwrap_or(0) as u16
                        })
                        .collect()
                });
                LetterFarm {
                    letter,
                    shared,
                    engines,
                    site_ids,
                    deployment,
                    steer,
                }
            })
            .collect();
        Farm {
            letters: farms,
            clients,
            tlds,
            zone,
        }
    }

    /// The letters this farm serves, in build order.
    pub fn letters(&self) -> Vec<RootLetter> {
        self.letters.iter().map(|lf| lf.letter).collect()
    }

    /// Total site engines across all letters.
    pub fn site_count(&self) -> usize {
        self.letters.iter().map(|lf| lf.engines.len()).sum()
    }

    /// Size of the stub-AS client pool steering is computed over.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The stub-AS client pool, in steering-table order: position `p` in
    /// this slice is the client position [`Farm::site_for`] resolves.
    pub fn clients(&self) -> &[AsId] {
        &self.clients
    }

    /// The (capped) deployment `letter`'s steering was computed against.
    pub fn deployment(&self, letter: RootLetter) -> Option<&Deployment> {
        self.farm_of(letter).map(|lf| &lf.deployment)
    }

    /// The site id client position `client_idx` is steered to for
    /// `letter` over `family`.
    pub fn site_for(&self, letter: RootLetter, family: Family, client_idx: usize) -> Option<u32> {
        let lf = self.farm_of(letter)?;
        let fam = usize::from(family == Family::V6);
        Some(lf.site_ids[lf.slot(fam, client_idx)])
    }

    /// The engine serving `letter` at `site_id`.
    pub fn engine_at(&self, letter: RootLetter, site_id: u32) -> Option<&Arc<Rootd>> {
        let lf = self.farm_of(letter)?;
        let slot = lf.site_ids.iter().position(|&id| id == site_id)?;
        Some(&lf.engines[slot])
    }

    /// Current zone-epoch generation of `letter`'s shared state.
    pub fn generation(&self, letter: RootLetter) -> Option<u64> {
        self.farm_of(letter).map(|lf| lf.shared.generation())
    }

    /// Swap a new zone epoch into `letter`'s shared state — every site
    /// engine of that letter sees it atomically; other letters are
    /// untouched. The zone is validated (ZONEMD digest, then RRSIG
    /// validity at `now`) **before** anything is swapped: a poisoned push
    /// rolls back atomically — the generation is unchanged and the old
    /// `ServingState` keeps serving. Returns the new generation on
    /// success.
    pub fn reload_letter(
        &self,
        letter: RootLetter,
        zone: Arc<Zone>,
        now: u32,
    ) -> Result<u64, ReloadError> {
        match self.farm_of(letter) {
            Some(lf) => lf.shared.try_reload(zone, now),
            None => Err(ReloadError::UnknownLetter),
        }
    }

    fn farm_of(&self, letter: RootLetter) -> Option<&LetterFarm> {
        self.letters.iter().find(|lf| lf.letter == letter)
    }

    /// Run `cfg.queries` steered queries through the constellation over
    /// `cfg.shards` worker shards.
    ///
    /// Shard `t` owns global indices `[t*per_shard, ...)`; per query `g`,
    /// the steering stream (`STEER_TAG`) draws the letter and family,
    /// `g % clients` names the client, and the content stream
    /// (`QUERY_TAG`) fills the wire bytes — all pure functions of `g`,
    /// so every deterministic report field is shard-count-invariant.
    pub fn run(&self, cfg: &FarmConfig) -> FarmReport {
        let shards = cfg.shards.max(1);
        let clients = cfg.clients.max(1);
        let batch_cap = cfg.batch.max(1);
        let nletters = self.letters.len();
        let per_shard = cfg.queries.div_ceil(shards);
        let slots_per_letter: Vec<usize> = self.letters.iter().map(|lf| lf.engines.len()).collect();
        let slots_per_letter = &slots_per_letter;
        let templates = QueryTemplates::build(&self.tlds);
        let templates = &templates;
        let pool = self.clients.len().max(1);
        let started = Instant::now();
        let mut stats: Vec<(usize, ShardStats)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for t in 0..shards {
                let first = t * per_shard;
                let count = per_shard.min(cfg.queries.saturating_sub(first));
                handles.push(scope.spawn(move || {
                    let mut stats = ShardStats::new(slots_per_letter);
                    // One request slab per (letter, site): queries
                    // accumulate and flush through one lock acquire.
                    let mut batches: Vec<Vec<UdpBatch>> = slots_per_letter
                        .iter()
                        .map(|&n| (0..n).map(|_| UdpBatch::new()).collect())
                        .collect();
                    let mut wire = Vec::with_capacity(64);
                    for i in 0..count {
                        let g = (first + i) as u64;
                        let mut steer = SimRng::new(cfg.seed).derive_ids(&[STEER_TAG, g]);
                        let letter_idx = steer.next_range(nletters);
                        let fam = usize::from(steer.chance(cfg.v6_fraction));
                        let client_idx = (g as usize % clients) % pool;
                        let lf = &self.letters[letter_idx];
                        let slot = lf.slot(fam, client_idx);
                        let mut qrng = SimRng::new(cfg.seed).derive_ids(&[QUERY_TAG, g]);
                        fill_query(&cfg.mix, templates, &mut qrng, &mut wire);
                        let batch = &mut batches[letter_idx][slot];
                        batch.push_request(&wire);
                        if batch.len() >= batch_cap {
                            stats.flush(&lf.engines[slot], letter_idx, slot, batch);
                        }
                    }
                    for (letter_idx, letter_batches) in batches.iter_mut().enumerate() {
                        for (slot, batch) in letter_batches.iter_mut().enumerate() {
                            stats.flush(
                                &self.letters[letter_idx].engines[slot],
                                letter_idx,
                                slot,
                                batch,
                            );
                        }
                    }
                    (t, stats)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();
        // Ordered merge, same discipline as the load generator: fold
        // shard tallies in shard-id order no matter how the scheduler
        // finished them.
        stats.sort_by_key(|&(shard, _)| shard);
        let mut merged = ShardStats::new(slots_per_letter);
        for (_, s) in &stats {
            for (a, b) in merged.letter_queries.iter_mut().zip(&s.letter_queries) {
                *a += b;
            }
            for (a, b) in merged.letter_busy_ns.iter_mut().zip(&s.letter_busy_ns) {
                *a += b;
            }
            for (al, bl) in merged.site_counts.iter_mut().zip(&s.site_counts) {
                for (a, b) in al.iter_mut().zip(bl) {
                    *a += b;
                }
            }
            merged.hits += s.hits;
            merged.fallbacks += s.fallbacks;
            merged.dropped += s.dropped;
            merged.responses += s.responses;
            merged.nxdomain += s.nxdomain;
            merged.referrals += s.referrals;
            merged.truncated += s.truncated;
            merged.latency.merge(&s.latency);
            merged.sizes.merge(&s.sizes);
        }
        let letters: Vec<LetterLoad> = self
            .letters
            .iter()
            .enumerate()
            .map(|(i, lf)| {
                let queries = merged.letter_queries[i];
                let busy_ns = merged.letter_busy_ns[i];
                LetterLoad {
                    letter: lf.letter,
                    sites: lf.engines.len(),
                    queries,
                    busy_ns,
                    qps: queries as f64 / (busy_ns.max(1) as f64 / 1e9),
                }
            })
            .collect();
        let mut per_site = Vec::new();
        for (i, lf) in self.letters.iter().enumerate() {
            for (slot, &n) in merged.site_counts[i].iter().enumerate() {
                if n > 0 {
                    per_site.push((lf.letter, lf.site_ids[slot], n));
                }
            }
        }
        FarmReport {
            queries: cfg.queries,
            elapsed,
            wall_qps: cfg.queries as f64 / elapsed.as_secs_f64().max(1e-9),
            aggregate_qps: letters.iter().map(|l| l.qps).sum(),
            letters,
            hits: merged.hits,
            fallbacks: merged.fallbacks,
            dropped: merged.dropped,
            responses: merged.responses,
            nxdomain: merged.nxdomain,
            referrals: merged.referrals,
            truncated: merged.truncated,
            p50_ns: merged.latency.quantile(0.50),
            p99_ns: merged.latency.quantile(0.99),
            size_p50: merged.sizes.quantile(0.50),
            size_p99: merged.sizes.quantile(0.99),
            per_site,
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos runs: failure injection, health-checked failover, overload shedding.
// ---------------------------------------------------------------------------

/// A junk-amplification flood window: inside `[start_ms, end_ms)` every
/// junk-class query counts as `amplification` offered datagrams when the
/// shedding policy sizes a site's ingress (the water-torture shape: the
/// flood is junk, the infrastructure cost is real).
#[derive(Debug, Clone, Copy)]
pub struct FloodWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    pub amplification: f64,
}

/// Parameters of a chaos run: the healthy-farm config plus the failure
/// schedule and the resilience policies played against it.
#[derive(Debug, Clone)]
pub struct FarmChaosConfig {
    pub farm: FarmConfig,
    /// The deterministic failure schedule (crashes, stalls, blackholes,
    /// poisoned reloads) on the shared virtual clock.
    pub plan: FailurePlan,
    pub health: HealthConfig,
    pub recovery: RecoveryPolicy,
    /// Client arrivals on the virtual-ms axis; failure windows hit
    /// exactly the queries that arrive inside them, on any shard count.
    pub arrivals: ArrivalSchedule,
    /// How long a client waits on a dead site before hedging its one
    /// retry to the next-best catchment.
    pub hedge_timeout_ms: u64,
    /// A site sheds once its offered load exceeds `shed_headroom` times
    /// its healthy-baseline share.
    pub shed_headroom: f64,
    /// Junk-amplification floods overlaid on the failure schedule.
    pub floods: Vec<FloodWindow>,
    /// Wall-clock second reload validation runs at (must fall inside the
    /// zone's RRSIG validity window for clean zones to be accepted).
    pub validate_now_s: u32,
}

impl FarmChaosConfig {
    /// A smoke-test-sized chaos run with an empty failure plan — add
    /// windows to `plan` / `floods` to inject faults.
    pub fn tiny(seed: u64, validate_now_s: u32) -> FarmChaosConfig {
        FarmChaosConfig {
            farm: FarmConfig::tiny(seed),
            plan: FailurePlan::none(seed),
            health: HealthConfig::default(),
            recovery: RecoveryPolicy::default(),
            arrivals: ArrivalSchedule {
                start_ms: 0,
                interarrival_ms: 1,
            },
            hedge_timeout_ms: 300,
            shed_headroom: 2.0,
            floods: Vec::new(),
            validate_now_s,
        }
    }

    /// The fault-free twin of this config: same seed, same traffic, same
    /// steering — no failures, no floods. Every answer a chaos run
    /// delivers must be byte-identical to what the twin serves.
    pub fn twin(&self) -> FarmChaosConfig {
        let mut t = self.clone();
        t.plan = FailurePlan::none(self.plan.seed);
        t.floods.clear();
        t
    }
}

/// Per-query outcome, packed into [`FarmChaosReport::flags`] bits 2..=4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Answered by the first steered site.
    Served = 0,
    /// First site was dark; the hedged retry landed elsewhere.
    ServedHedged = 1,
    /// Dropped at ingress by the overload-shedding policy.
    Shed = 2,
    /// First site dark and the hedge found no live alternative.
    Unanswered = 3,
    /// Reached an engine but was unserveable (malformed datagram).
    EngineDropped = 4,
}

/// What one chaos run measured. `flags` and `digests` are per global
/// query index: flags pack class (bits 0..=1: 0 benign, 1 junk,
/// 2 chaos), outcome (bits 2..=4) and a late bit (5); digests are a
/// per-response FNV over the delivered bytes (0 = no response), which is
/// what [`FarmChaosReport::diff_twin`] compares for byte-identity.
#[derive(Debug, Clone)]
pub struct FarmChaosReport {
    pub queries: usize,
    pub elapsed: Duration,
    pub wall_qps: f64,
    /// Sum of per-letter busy-time serving rates, as in [`FarmReport`].
    pub aggregate_qps: f64,
    pub letters: Vec<LetterLoad>,
    pub hits: u64,
    pub fallbacks: u64,
    pub served: u64,
    pub served_hedged: u64,
    pub shed_junk: u64,
    pub shed_benign: u64,
    pub unanswered: u64,
    pub engine_dropped: u64,
    /// Served, but through a stalled shard (late answer).
    pub late: u64,
    pub legit_offered: u64,
    pub legit_served: u64,
    pub junk_offered: u64,
    pub junk_served: u64,
    pub hedges_attempted: u64,
    /// Poisoned pushes the validated reload path refused / let through.
    pub reloads_rejected: u64,
    pub reloads_accepted: u64,
    /// Distinct steering epochs across all letters (>1 means failover
    /// re-steering happened).
    pub steering_epochs: usize,
    /// Watchdog probes the control plane fired.
    pub probes: u64,
    /// Health transitions: `(letter position, slot, at_ms, status)`.
    pub transitions: Vec<(u8, u8, u64, SiteStatus)>,
    /// Crash incidents and their restart ladders.
    pub recoveries: Vec<RecoveryLog>,
    /// The failure plan's own fingerprint (mixed into the report's).
    pub plan_fp: u64,
    pub flags: Vec<u8>,
    pub digests: Vec<u64>,
    /// Violations observed while applying the reload schedule (a corrupt
    /// zone activating, a rejected reload moving the generation).
    pub reload_violations: Vec<String>,
}

impl FarmChaosReport {
    /// Fraction of legitimate (non-junk) queries that got an answer —
    /// the degraded-service headline the acceptance gate holds at ≥0.99.
    pub fn legit_served_fraction(&self) -> f64 {
        if self.legit_offered == 0 {
            1.0
        } else {
            self.legit_served as f64 / self.legit_offered as f64
        }
    }

    fn outcome_of(flag: u8) -> u8 {
        (flag >> 2) & 0x07
    }

    fn class_of(flag: u8) -> u8 {
        flag & 0x03
    }

    /// Order-sensitive FNV digest over every deterministic field — the
    /// replay-identity of the whole run: traffic, steering, health
    /// transitions, restart ladders, sheds, and every delivered byte.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.queries as u64);
        mix(self.hits);
        mix(self.fallbacks);
        mix(self.served);
        mix(self.served_hedged);
        mix(self.shed_junk);
        mix(self.shed_benign);
        mix(self.unanswered);
        mix(self.engine_dropped);
        mix(self.late);
        mix(self.legit_offered);
        mix(self.legit_served);
        mix(self.junk_offered);
        mix(self.junk_served);
        mix(self.hedges_attempted);
        mix(self.reloads_rejected);
        mix(self.reloads_accepted);
        mix(self.steering_epochs as u64);
        mix(self.probes);
        for l in &self.letters {
            mix(l.letter.index() as u64);
            mix(l.queries);
        }
        for &(li, slot, t, status) in &self.transitions {
            mix(u64::from(li));
            mix(u64::from(slot));
            mix(t);
            mix(status.id());
        }
        for r in &self.recoveries {
            mix(r.letter.index() as u64);
            mix(u64::from(r.site_id));
            mix(r.failed_at);
            mix(r.detected_at);
            mix(u64::from(r.attempts));
            mix(r.recovered_at.map_or(u64::MAX, |t| t));
        }
        for &f in &self.flags {
            mix(u64::from(f));
        }
        for &d in &self.digests {
            mix(d);
        }
        h ^ self.plan_fp
    }

    /// Internal-consistency checks plus any reload violations; a sound
    /// run returns an empty list.
    pub fn violations(&self) -> Vec<String> {
        let mut v = self.reload_violations.clone();
        let outcomes = self.served
            + self.served_hedged
            + self.shed_junk
            + self.shed_benign
            + self.unanswered
            + self.engine_dropped;
        if outcomes != self.queries as u64 {
            v.push(format!("outcomes {outcomes} != queries {}", self.queries));
        }
        if self.legit_offered + self.junk_offered != self.queries as u64 {
            v.push(format!(
                "offered split {}+{} != queries {}",
                self.legit_offered, self.junk_offered, self.queries
            ));
        }
        if self.legit_served > self.legit_offered {
            v.push(format!(
                "legit served {} > offered {}",
                self.legit_served, self.legit_offered
            ));
        }
        for (g, (&f, &d)) in self.flags.iter().zip(&self.digests).enumerate() {
            let answered = Self::outcome_of(f) <= 1;
            if answered != (d != 0) {
                v.push(format!("query {g}: outcome/digest mismatch (flag {f:#x})"));
                break;
            }
        }
        v
    }

    /// Global indices of answered non-CHAOS queries whose delivered
    /// bytes differ from the fault-free twin's (CHAOS identity answers
    /// legitimately differ when the hedge lands at another site). Empty
    /// means every delivered answer was byte-identical to a healthy farm.
    pub fn diff_twin(&self, twin: &FarmChaosReport) -> Vec<u64> {
        self.flags
            .iter()
            .zip(&self.digests)
            .zip(twin.flags.iter().zip(&twin.digests))
            .enumerate()
            .filter(|&(_, ((&f, &d), (&tf, &td)))| {
                Self::outcome_of(f) <= 1
                    && Self::class_of(f) != 2
                    && Self::outcome_of(tf) <= 1
                    && d != td
            })
            .map(|(g, _)| g as u64)
            .collect()
    }

    /// Metric pairs for `BENCH_results.json` and the bench guard.
    pub fn metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        vec![
            (
                format!("{prefix}/degraded_served_fraction"),
                self.legit_served_fraction(),
            ),
            (format!("{prefix}/aggregate_qps"), self.aggregate_qps),
            (format!("{prefix}/shed_junk"), self.shed_junk as f64),
            (format!("{prefix}/shed_benign"), self.shed_benign as f64),
            (format!("{prefix}/unanswered"), self.unanswered as f64),
        ]
    }

    /// Human-readable summary of the run.
    pub fn render(&self) -> String {
        let mut out = format!(
            "queries          {:>12}\nserved           {:>12}\n  hedged         {:>12}\n  late           {:>12}\nshed junk        {:>12}\nshed benign      {:>12}\nunanswered       {:>12}\nengine dropped   {:>12}\nlegit served     {:>12} / {} ({:.4})\nhedges attempted {:>12}\nreloads rejected {:>12}\nreloads accepted {:>12}\nsteering epochs  {:>12}\nprobes           {:>12}\nrecoveries       {:>12}\nelapsed          {:>12.3} s\naggregate        {:>12.0} q/s\n",
            self.queries,
            self.served + self.served_hedged,
            self.served_hedged,
            self.late,
            self.shed_junk,
            self.shed_benign,
            self.unanswered,
            self.engine_dropped,
            self.legit_served,
            self.legit_offered,
            self.legit_served_fraction(),
            self.hedges_attempted,
            self.reloads_rejected,
            self.reloads_accepted,
            self.steering_epochs,
            self.probes,
            self.recoveries.len(),
            self.elapsed.as_secs_f64(),
            self.aggregate_qps,
        );
        for r in &self.recoveries {
            out.push_str(&format!(
                "  {}.root site {:>3}  down {:>7} ms  detected {:>7} ms  attempts {}  {}\n",
                r.letter.ch(),
                r.site_id,
                r.failed_at,
                r.detected_at,
                r.attempts,
                match r.recovered_at {
                    Some(t) => format!("recovered {t} ms"),
                    None => "NOT RECOVERED".to_string(),
                },
            ));
        }
        out
    }
}

/// One steering epoch of one letter: the failover tables and offered
/// weights in force from `start_ms` until the next epoch.
struct EpochSteer {
    start_ms: u64,
    /// `steer[family][client position] -> engine slot` over the live
    /// (non-Dead) sites; slot indices stay those of the full roster.
    steer: [Vec<u16>; 2],
    /// Normalized offered-load share per slot under this epoch's tables.
    weights: Vec<f64>,
}

/// FNV over one delivered response, salted with the global query index.
/// Never 0, so 0 unambiguously means "no response".
fn digest_response(g: u64, resp: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ g.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in resp {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h | 1
}

/// Shed probabilities `(junk, benign)` for a slot whose offered share is
/// `w` against healthy baseline `wb`: junk is amplified by `amp`, the cap
/// is `headroom` over the larger of the baseline share and an even
/// split, junk sheds first, benign only for what junk cannot absorb.
fn shed_probs(w: f64, wb: f64, nslots: usize, j: f64, amp: f64, headroom: f64) -> (f64, f64) {
    if w <= 0.0 {
        return (0.0, 0.0);
    }
    let offered = w * (1.0 + j * (amp - 1.0));
    let cap = headroom * wb.max(1.0 / nslots as f64);
    let excess = offered - cap;
    if excess <= 0.0 {
        return (0.0, 0.0);
    }
    let junk_offered = w * j * amp;
    let p_junk = if junk_offered > 0.0 {
        (excess / junk_offered).min(1.0)
    } else {
        0.0
    };
    let excess2 = excess - junk_offered;
    let benign_offered = w * (1.0 - j);
    let p_benign = if excess2 > 0.0 && benign_offered > 0.0 {
        (excess2 / benign_offered).min(1.0)
    } else {
        0.0
    };
    (p_junk, p_benign)
}

/// Normalized offered-load share per slot under `steer`, over the
/// configured client-position distribution and family split.
fn offered_weights(
    steer: &[Vec<u16>; 2],
    nslots: usize,
    clients: usize,
    pool: usize,
    v6_fraction: f64,
) -> Vec<f64> {
    let mut w = vec![0.0; nslots];
    for c in 0..clients {
        let pos = c % pool;
        for (fi, famp) in [(0usize, 1.0 - v6_fraction), (1usize, v6_fraction)] {
            let table = &steer[fi];
            let slot = if table.is_empty() {
                0
            } else {
                table[pos % table.len()] as usize
            };
            w[slot] += famp / clients as f64;
        }
    }
    w
}

fn epoch_at(epochs: &[EpochSteer], t: u64) -> &EpochSteer {
    let i = epochs.partition_point(|e| e.start_ms <= t);
    &epochs[i.max(1) - 1]
}

fn flood_amp_at(floods: &[FloodWindow], t: u64) -> f64 {
    floods
        .iter()
        .filter(|f| t >= f.start_ms && t < f.end_ms)
        .map(|f| f.amplification)
        .fold(1.0, f64::max)
}

/// Pending outcome of one batched datagram:
/// `(global index, class, hedged, late)`, resolved at flush time.
type BatchMeta = Vec<(u64, u8, bool, bool)>;

/// Per-shard chaos tallies (merged in shard-id order).
#[derive(Clone)]
struct ChaosShard {
    letter_queries: Vec<u64>,
    letter_busy_ns: Vec<u64>,
    hits: u64,
    fallbacks: u64,
    served: u64,
    served_hedged: u64,
    shed_junk: u64,
    shed_benign: u64,
    unanswered: u64,
    engine_dropped: u64,
    late: u64,
    legit_offered: u64,
    legit_served: u64,
    junk_offered: u64,
    junk_served: u64,
    hedges_attempted: u64,
}

impl ChaosShard {
    fn new(nletters: usize) -> ChaosShard {
        ChaosShard {
            letter_queries: vec![0; nletters],
            letter_busy_ns: vec![0; nletters],
            hits: 0,
            fallbacks: 0,
            served: 0,
            served_hedged: 0,
            shed_junk: 0,
            shed_benign: 0,
            unanswered: 0,
            engine_dropped: 0,
            late: 0,
            legit_offered: 0,
            legit_served: 0,
            junk_offered: 0,
            junk_served: 0,
            hedges_attempted: 0,
        }
    }

    /// Serve one batch and resolve every entry's outcome: digest the
    /// delivered bytes into the shard's global-index slices.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        &mut self,
        engine: &Rootd,
        letter_idx: usize,
        batch: &mut UdpBatch,
        meta: &mut BatchMeta,
        first: usize,
        digests: &mut [u64],
        flags: &mut [u8],
    ) {
        if batch.is_empty() {
            meta.clear();
            return;
        }
        let n = batch.len() as u64;
        let t0 = Instant::now();
        let tally = engine.serve_udp_batch(batch);
        let dt = t0.elapsed().as_nanos() as u64;
        self.letter_queries[letter_idx] += n;
        self.letter_busy_ns[letter_idx] += dt;
        self.hits += tally.hits;
        self.fallbacks += tally.fallbacks;
        for (i, &(g, class, hedged, is_late)) in meta.iter().enumerate() {
            let local = g as usize - first;
            match batch.response(i) {
                Some(resp) => {
                    digests[local] = digest_response(g, resp);
                    let outcome = if hedged {
                        self.served_hedged += 1;
                        ChaosOutcome::ServedHedged
                    } else {
                        self.served += 1;
                        ChaosOutcome::Served
                    };
                    if is_late {
                        self.late += 1;
                    }
                    if class == 1 {
                        self.junk_served += 1;
                    } else {
                        self.legit_served += 1;
                    }
                    flags[local] = class | ((outcome as u8) << 2) | (u8::from(is_late) << 5);
                }
                None => {
                    self.engine_dropped += 1;
                    flags[local] = class | ((ChaosOutcome::EngineDropped as u8) << 2);
                }
            }
        }
        batch.clear();
        meta.clear();
    }
}

impl Farm {
    /// Precompute every letter's steering epochs from the control
    /// plane's health timelines: Dead sites are withdrawn from the
    /// letter's anycast announcement and catchments recomputed through
    /// the same Gao-Rexford propagation as at build time — failover *is*
    /// a BGP withdrawal, not a special path. Identical dead-masks share
    /// one computation.
    fn chaos_steering(
        &self,
        topology: &Topology,
        control: &ControlPlane,
        cfg: &FarmChaosConfig,
    ) -> Vec<Vec<EpochSteer>> {
        let pool = self.clients.len().max(1);
        let clients = cfg.farm.clients.max(1);
        self.letters
            .iter()
            .zip(&control.letters)
            .map(|(lf, lc)| {
                let nslots = lf.engines.len();
                let mut memo: HashMap<Vec<bool>, [Vec<u16>; 2]> = HashMap::new();
                lc.timeline
                    .steering_epochs()
                    .into_iter()
                    .map(|(start_ms, dead)| {
                        let steer = memo
                            .entry(dead.clone())
                            .or_insert_with(|| {
                                let live: Vec<u32> = lf
                                    .site_ids
                                    .iter()
                                    .enumerate()
                                    .filter(|&(slot, _)| !dead.get(slot).copied().unwrap_or(false))
                                    .map(|(_, &id)| id)
                                    .collect();
                                if live.len() == lf.site_ids.len() || live.is_empty() {
                                    // All live (base tables) — or none,
                                    // in which case steering is moot:
                                    // every query hedges into the void.
                                    return lf.steer.clone();
                                }
                                let withdrawn = Deployment {
                                    name: lf.deployment.name.clone(),
                                    sites: lf
                                        .deployment
                                        .sites
                                        .iter()
                                        .filter(|s| live.contains(&s.id.0))
                                        .cloned()
                                        .collect(),
                                };
                                let fallback =
                                    lf.site_ids
                                        .iter()
                                        .position(|id| live.contains(id))
                                        .unwrap_or(0) as u16;
                                [Family::V4, Family::V6].map(|family| {
                                    let routes = propagate(topology, &withdrawn, family);
                                    self.clients
                                        .iter()
                                        .map(|&asn| {
                                            routes
                                                .best(asn)
                                                .and_then(|c| {
                                                    lf.site_ids
                                                        .iter()
                                                        .position(|&id| id == c.site.0)
                                                })
                                                .map(|slot| slot as u16)
                                                .unwrap_or(fallback)
                                        })
                                        .collect()
                                })
                            })
                            .clone();
                        let weights =
                            offered_weights(&steer, nslots, clients, pool, cfg.farm.v6_fraction);
                        EpochSteer {
                            start_ms,
                            steer,
                            weights,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Apply the plan's poisoned reloads through the validated reload
    /// path. Every push must be refused with the generation unchanged —
    /// anything else is recorded as a violation.
    fn apply_poisoned_reloads(&self, cfg: &FarmChaosConfig) -> (u64, u64, Vec<String>) {
        let mut rejected = 0u64;
        let mut accepted = 0u64;
        let mut violations = Vec::new();
        let mut pushes = cfg.plan.poisoned_reloads.clone();
        pushes.sort_by_key(|p| (p.at_ms, p.letter));
        for p in &pushes {
            let mut poisoned = (*self.zone).clone();
            if dns_zone::corrupt::flip_rrsig_bit(&mut poisoned, p.flip_seed).is_none() {
                violations.push(format!(
                    "poisoned reload at {} ms: zone has no RRSIG to corrupt",
                    p.at_ms
                ));
                continue;
            }
            let before = self.generation(p.letter);
            match self.reload_letter(p.letter, Arc::new(poisoned), cfg.validate_now_s) {
                Err(_) => {
                    rejected += 1;
                    if self.generation(p.letter) != before {
                        violations.push(format!(
                            "{}.root: rejected reload moved generation {:?} -> {:?}",
                            p.letter.ch(),
                            before,
                            self.generation(p.letter)
                        ));
                    }
                }
                Ok(generation) => {
                    accepted += 1;
                    violations.push(format!(
                        "{}.root: CORRUPT ZONE ACTIVATED as generation {generation}",
                        p.letter.ch()
                    ));
                }
            }
        }
        (rejected, accepted, violations)
    }

    /// Run the constellation through the failure schedule: the control
    /// plane (health probes, failover steering, restart ladders) runs
    /// first as a discrete-event program on the virtual clock, producing
    /// piecewise-constant timelines; the sharded data plane then serves
    /// every query against those timelines — per-query steering, hedging
    /// and shedding are pure functions of the global query index, so the
    /// whole report is bit-identical for any shard count.
    pub fn run_chaos(&self, topology: &Topology, cfg: &FarmChaosConfig) -> FarmChaosReport {
        let shards = cfg.farm.shards.max(1);
        let clients = cfg.farm.clients.max(1);
        let batch_cap = cfg.farm.batch.max(1);
        let nletters = self.letters.len();
        let per_shard = cfg.farm.queries.div_ceil(shards).max(1);
        let templates = QueryTemplates::build(&self.tlds);
        let templates = &templates;
        let pool = self.clients.len().max(1);
        // Expected junk share of the mix (chaos-class templates return
        // before the junk draw; the small apex correction is ignored —
        // the headroom factor dwarfs it).
        let junk_frac = (1.0 - cfg.farm.mix.chaos_fraction) * cfg.farm.mix.nxdomain_fraction;

        // Poisoned reloads first: all must bounce off validation, so the
        // serving state the data plane reads is unchanged.
        let (reloads_rejected, reloads_accepted, reload_violations) =
            self.apply_poisoned_reloads(cfg);

        // Control plane: health timelines, ground-truth outage/stall
        // tables, restart ladders.
        let roster: Vec<(RootLetter, Vec<u32>)> = self
            .letters
            .iter()
            .map(|lf| (lf.letter, lf.site_ids.clone()))
            .collect();
        let last_arrival =
            cfg.arrivals
                .attempt_at(cfg.farm.queries as u64, 1, cfg.hedge_timeout_ms);
        let horizon = last_arrival
            .max(
                cfg.plan
                    .max_finite_end()
                    .saturating_add(cfg.recovery.budget_ms()),
            )
            .saturating_add(4 * cfg.health.probe_interval_ms);
        let control = run_control_plane(&roster, &cfg.plan, &cfg.health, &cfg.recovery, horizon);
        let epochs = self.chaos_steering(topology, &control, cfg);
        let epochs = &epochs;
        let control = &control;
        // Healthy-baseline offered shares anchor the shedding cap, so
        // failover redistribution — not the baseline split — is what
        // gets charged against headroom.
        let base_weights: Vec<Vec<f64>> = self
            .letters
            .iter()
            .map(|lf| {
                offered_weights(
                    &lf.steer,
                    lf.engines.len(),
                    clients,
                    pool,
                    cfg.farm.v6_fraction,
                )
            })
            .collect();
        let base_weights = &base_weights;

        let mut digests = vec![0u64; cfg.farm.queries];
        let mut flags = vec![0u8; cfg.farm.queries];
        let started = Instant::now();
        let mut stats: Vec<(usize, ChaosShard)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            let mut dig_rest: &mut [u64] = &mut digests;
            let mut flag_rest: &mut [u8] = &mut flags;
            for t in 0..shards {
                let first = t * per_shard;
                let count = per_shard.min(cfg.farm.queries.saturating_sub(first));
                let (dig, rest) = std::mem::take(&mut dig_rest).split_at_mut(count);
                dig_rest = rest;
                let (flg, rest) = std::mem::take(&mut flag_rest).split_at_mut(count);
                flag_rest = rest;
                handles.push(scope.spawn(move || {
                    let mut stats = ChaosShard::new(nletters);
                    let slots_per_letter: Vec<usize> =
                        self.letters.iter().map(|lf| lf.engines.len()).collect();
                    let mut batches: Vec<Vec<UdpBatch>> = slots_per_letter
                        .iter()
                        .map(|&n| (0..n).map(|_| UdpBatch::new()).collect())
                        .collect();
                    let mut metas: Vec<Vec<BatchMeta>> = slots_per_letter
                        .iter()
                        .map(|&n| (0..n).map(|_| Vec::new()).collect())
                        .collect();
                    let mut wire = Vec::with_capacity(64);
                    for i in 0..count {
                        let g = (first + i) as u64;
                        let mut steer = SimRng::new(cfg.farm.seed).derive_ids(&[STEER_TAG, g]);
                        let letter_idx = steer.next_range(nletters);
                        let fam = usize::from(steer.chance(cfg.farm.v6_fraction));
                        let client_idx = (g as usize % clients) % pool;
                        let lf = &self.letters[letter_idx];
                        let lc = &control.letters[letter_idx];
                        let t_arr = cfg.arrivals.attempt_at(g, 0, 0);
                        let mut qrng = SimRng::new(cfg.farm.seed).derive_ids(&[QUERY_TAG, g]);
                        let class = match fill_query(&cfg.farm.mix, templates, &mut qrng, &mut wire)
                        {
                            QueryClass::Chaos => 2u8,
                            QueryClass::Junk => 1,
                            QueryClass::Apex | QueryClass::Tld => 0,
                        };
                        if class == 1 {
                            stats.junk_offered += 1;
                        } else {
                            stats.legit_offered += 1;
                        }
                        let epoch = epoch_at(&epochs[letter_idx], t_arr);
                        let table = &epoch.steer[fam];
                        let slot = if table.is_empty() {
                            0
                        } else {
                            table[client_idx % table.len()] as usize
                        };
                        // Ingress shedding at the steered site.
                        let amp = flood_amp_at(&cfg.floods, t_arr);
                        let (p_junk, p_benign) = shed_probs(
                            epoch.weights[slot],
                            base_weights[letter_idx][slot],
                            lf.engines.len(),
                            junk_frac,
                            amp,
                            cfg.shed_headroom,
                        );
                        let p = if class == 1 { p_junk } else { p_benign };
                        if p > 0.0
                            && SimRng::new(cfg.farm.seed)
                                .derive_ids(&[SHED_TAG, g])
                                .chance(p)
                        {
                            if class == 1 {
                                stats.shed_junk += 1;
                            } else {
                                stats.shed_benign += 1;
                            }
                            flg[i] = class | ((ChaosOutcome::Shed as u8) << 2);
                            continue;
                        }
                        // Ground truth beats belief: a dark site eats the
                        // datagram whether or not the watchdog knows yet.
                        let (serve_slot, serve_t, hedged) = if lc.down_at(slot, t_arr) {
                            stats.hedges_attempted += 1;
                            let t2 = t_arr + cfg.hedge_timeout_ms;
                            let epoch2 = epoch_at(&epochs[letter_idx], t2);
                            let table2 = &epoch2.steer[fam];
                            let routed = if table2.is_empty() {
                                0
                            } else {
                                table2[client_idx % table2.len()] as usize
                            };
                            // If steering already withdrew the dead site,
                            // the retry follows the new catchment;
                            // otherwise (watchdog hasn't caught up yet)
                            // the client falls back to the next site it
                            // still believes is in rotation.
                            let nslots = lf.engines.len();
                            let slot2 = if routed != slot {
                                Some(routed)
                            } else {
                                (1..nslots)
                                    .map(|k| (slot + k) % nslots)
                                    .find(|&s| lc.timeline.status_at(s, t2).in_rotation())
                            };
                            match slot2 {
                                Some(s2) if !lc.down_at(s2, t2) => (s2, t2, true),
                                _ => {
                                    stats.unanswered += 1;
                                    flg[i] = class | ((ChaosOutcome::Unanswered as u8) << 2);
                                    continue;
                                }
                            }
                        } else {
                            (slot, t_arr, false)
                        };
                        let is_late = lc.stall_delay_at(serve_slot, serve_t).is_some();
                        let batch = &mut batches[letter_idx][serve_slot];
                        batch.push_request(&wire);
                        metas[letter_idx][serve_slot].push((g, class, hedged, is_late));
                        if batch.len() >= batch_cap {
                            stats.flush(
                                &lf.engines[serve_slot],
                                letter_idx,
                                batch,
                                &mut metas[letter_idx][serve_slot],
                                first,
                                dig,
                                flg,
                            );
                        }
                    }
                    for (letter_idx, letter_batches) in batches.iter_mut().enumerate() {
                        for (slot, batch) in letter_batches.iter_mut().enumerate() {
                            stats.flush(
                                &self.letters[letter_idx].engines[slot],
                                letter_idx,
                                batch,
                                &mut metas[letter_idx][slot],
                                first,
                                dig,
                                flg,
                            );
                        }
                    }
                    (t, stats)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();
        stats.sort_by_key(|&(shard, _)| shard);
        let mut merged = ChaosShard::new(nletters);
        for (_, s) in &stats {
            for (a, b) in merged.letter_queries.iter_mut().zip(&s.letter_queries) {
                *a += b;
            }
            for (a, b) in merged.letter_busy_ns.iter_mut().zip(&s.letter_busy_ns) {
                *a += b;
            }
            merged.hits += s.hits;
            merged.fallbacks += s.fallbacks;
            merged.served += s.served;
            merged.served_hedged += s.served_hedged;
            merged.shed_junk += s.shed_junk;
            merged.shed_benign += s.shed_benign;
            merged.unanswered += s.unanswered;
            merged.engine_dropped += s.engine_dropped;
            merged.late += s.late;
            merged.legit_offered += s.legit_offered;
            merged.legit_served += s.legit_served;
            merged.junk_offered += s.junk_offered;
            merged.junk_served += s.junk_served;
            merged.hedges_attempted += s.hedges_attempted;
        }
        let letters: Vec<LetterLoad> = self
            .letters
            .iter()
            .enumerate()
            .map(|(i, lf)| {
                let queries = merged.letter_queries[i];
                let busy_ns = merged.letter_busy_ns[i];
                LetterLoad {
                    letter: lf.letter,
                    sites: lf.engines.len(),
                    queries,
                    busy_ns,
                    qps: queries as f64 / (busy_ns.max(1) as f64 / 1e9),
                }
            })
            .collect();
        let transitions: Vec<(u8, u8, u64, SiteStatus)> = control
            .letters
            .iter()
            .enumerate()
            .flat_map(|(li, lc)| {
                lc.timeline
                    .events()
                    .into_iter()
                    .map(move |(slot, t, status)| (li as u8, slot as u8, t, status))
            })
            .collect();
        FarmChaosReport {
            queries: cfg.farm.queries,
            elapsed,
            wall_qps: cfg.farm.queries as f64 / elapsed.as_secs_f64().max(1e-9),
            aggregate_qps: letters.iter().map(|l| l.qps).sum(),
            letters,
            hits: merged.hits,
            fallbacks: merged.fallbacks,
            served: merged.served,
            served_hedged: merged.served_hedged,
            shed_junk: merged.shed_junk,
            shed_benign: merged.shed_benign,
            unanswered: merged.unanswered,
            engine_dropped: merged.engine_dropped,
            late: merged.late,
            legit_offered: merged.legit_offered,
            legit_served: merged.legit_served,
            junk_offered: merged.junk_offered,
            junk_served: merged.junk_served,
            hedges_attempted: merged.hedges_attempted,
            reloads_rejected,
            reloads_accepted,
            steering_epochs: epochs.iter().map(Vec::len).sum(),
            probes: control.probes,
            transitions,
            recoveries: control.recoveries.clone(),
            plan_fp: cfg.plan.fold_fingerprint(0xcbf2_9ce4_8422_2325),
            flags,
            digests,
            reload_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use netsim::topology::TopologyConfig;
    use rss::catalog::WorldConfig;

    fn world() -> (Topology, RootCatalog, Arc<Zone>) {
        let mut topology = Topology::generate(&TopologyConfig {
            tier2_per_region: 4,
            stubs_per_region: [4, 8, 16, 12, 4, 6],
            ..Default::default()
        });
        let catalog = RootCatalog::build(
            &mut topology,
            &WorldConfig {
                site_scale: 0.05,
                ..Default::default()
            },
        );
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 12,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(3),
        );
        (topology, catalog, Arc::new(zone))
    }

    fn small_farm() -> (Topology, RootCatalog, Arc<Zone>, Farm) {
        let (topology, catalog, zone) = world();
        let farm = Farm::build(
            &topology,
            &catalog,
            Arc::clone(&zone),
            &[RootLetter::A, RootLetter::B],
            4,
        );
        (topology, catalog, zone, farm)
    }

    #[test]
    fn farm_counters_cover_every_query() {
        let (_, _, _, farm) = small_farm();
        let mut cfg = FarmConfig::tiny(41);
        cfg.queries = 6_000;
        let report = farm.run(&cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert_eq!(
            report.hits + report.fallbacks + report.dropped,
            report.queries as u64
        );
        assert!(report.hits > 0, "cached path must dominate: {report:?}");
        assert!(report.nxdomain > 0 && report.referrals > 0);
        assert!(report.aggregate_qps > 0.0 && report.wall_qps > 0.0);
        // Both letters drew load, and load spread across sites.
        assert!(report.letters.iter().all(|l| l.queries > 0));
        assert!(report.per_site.len() > 2, "{:?}", report.per_site);
    }

    #[test]
    fn farm_report_is_bit_identical_across_shard_counts() {
        let (_, _, _, farm) = small_farm();
        let mut cfg = FarmConfig::tiny(7);
        cfg.queries = 4_000;
        cfg.shards = 1;
        let baseline = farm.run(&cfg);
        let base_fp = baseline.fingerprint();
        for shards in 2..=8 {
            cfg.shards = shards;
            let report = farm.run(&cfg);
            assert_eq!(report.fingerprint(), base_fp, "shards={shards}");
            assert_eq!(report.hits, baseline.hits, "shards={shards}");
            assert_eq!(report.per_site, baseline.per_site, "shards={shards}");
            assert_eq!(
                (report.size_p50, report.size_p99),
                (baseline.size_p50, baseline.size_p99),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn steering_matches_a_fresh_catchment_computation() {
        let (topology, _, _, farm) = small_farm();
        for letter in [RootLetter::A, RootLetter::B] {
            let deployment = farm.deployment(letter).unwrap();
            for family in [Family::V4, Family::V6] {
                let routes = propagate(&topology, deployment, family);
                let mut steered_off_default = 0;
                for (pos, &asn) in farm.clients.iter().enumerate() {
                    let got = farm.site_for(letter, family, pos).unwrap();
                    if let Some(best) = routes.best(asn) {
                        assert_eq!(got, best.site.0, "{letter:?} {family:?} client {pos}");
                        if got != farm.farm_of(letter).unwrap().site_ids[0] {
                            steered_off_default += 1;
                        }
                    }
                }
                assert!(
                    steered_off_default > 0,
                    "{letter:?} {family:?}: catchments must use >1 site"
                );
            }
        }
    }

    /// A second inside the default zone config's RRSIG validity window.
    fn validate_now() -> u32 {
        RootZoneConfig::default().inception + 86_400
    }

    #[test]
    fn reload_swaps_one_letter_without_touching_the_others() {
        let (_, _, _, farm) = small_farm();
        assert_eq!(farm.generation(RootLetter::A), Some(0));
        assert_eq!(farm.generation(RootLetter::B), Some(0));
        let zone2 = build_root_zone(
            &RootZoneConfig {
                tld_count: 15,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(9),
        );
        assert_eq!(
            farm.reload_letter(RootLetter::B, Arc::new(zone2), validate_now()),
            Ok(1)
        );
        assert_eq!(farm.generation(RootLetter::B), Some(1));
        assert_eq!(farm.generation(RootLetter::A), Some(0));
        assert_eq!(
            farm.reload_letter(
                RootLetter::C,
                {
                    let (_, _, zone) = world();
                    zone
                },
                validate_now()
            ),
            Err(ReloadError::UnknownLetter)
        );
        // The farm still serves after the swap.
        let mut cfg = FarmConfig::tiny(3);
        cfg.queries = 2_000;
        let report = farm.run(&cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert!(report.responses > 0);
    }

    #[test]
    fn poisoned_reload_rolls_back_atomically_and_keeps_serving() {
        let (_, _, zone, farm) = small_farm();
        let before = farm.run(&FarmConfig::tiny(5));
        let mut poisoned = (*zone).clone();
        assert!(dns_zone::corrupt::flip_rrsig_bit(&mut poisoned, 0xbad).is_some());
        let err = farm.reload_letter(RootLetter::B, Arc::new(poisoned), validate_now());
        assert!(err.is_err(), "corrupt zone must be refused: {err:?}");
        // Atomic rollback: generation unchanged, old state keeps serving
        // the exact same bytes.
        assert_eq!(farm.generation(RootLetter::B), Some(0));
        let after = farm.run(&FarmConfig::tiny(5));
        assert_eq!(after.fingerprint(), before.fingerprint());
    }

    fn chaos_cfg(seed: u64, queries: usize) -> FarmChaosConfig {
        let mut cfg = FarmChaosConfig::tiny(seed, validate_now());
        cfg.farm.queries = queries;
        cfg
    }

    #[test]
    fn chaos_with_empty_plan_serves_everything_like_a_healthy_run() {
        let (topology, _, _, farm) = small_farm();
        let cfg = chaos_cfg(11, 4_000);
        let report = farm.run_chaos(&topology, &cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert_eq!(report.served, 4_000);
        assert_eq!(
            report.served_hedged
                + report.shed_junk
                + report.shed_benign
                + report.unanswered
                + report.engine_dropped,
            0
        );
        assert_eq!(report.legit_served_fraction(), 1.0);
        assert_eq!(report.probes, 0, "no faults, no watchdog events");
        assert!(report.recoveries.is_empty());
        // Same serving outcomes as the plain farm path: the chaos layer
        // adds nothing when nothing fails.
        let base = farm.run(&cfg.farm);
        assert_eq!(report.hits, base.hits);
        assert_eq!(report.fallbacks, base.fallbacks);
    }

    #[test]
    fn chaos_report_is_bit_identical_across_shard_counts_and_seed_sensitive() {
        let (topology, _, _, farm) = small_farm();
        let mut cfg = chaos_cfg(7, 3_000);
        let a0 = farm.letters[0].site_ids[0];
        let a1 = farm.letters[0].site_ids[1];
        let b0 = farm.letters[1].site_ids[0];
        cfg.plan.add(
            RootLetter::A,
            a1,
            crate::recovery::FailureKind::Crash,
            (400, 1_500),
        );
        cfg.plan.add(
            RootLetter::B,
            b0,
            crate::recovery::FailureKind::Blackhole,
            (500, 1_200),
        );
        cfg.plan.add(
            RootLetter::A,
            a0,
            crate::recovery::FailureKind::Stall { delay_ms: 300 },
            (200, 2_000),
        );
        cfg.plan.add_poisoned_reload(RootLetter::B, 900);
        cfg.floods.push(FloodWindow {
            start_ms: 800,
            end_ms: 1_600,
            amplification: 8.0,
        });
        cfg.farm.shards = 1;
        let baseline = farm.run_chaos(&topology, &cfg);
        assert_eq!(baseline.violations(), Vec::<String>::new());
        let base_fp = baseline.fingerprint();
        for shards in 2..=8 {
            cfg.farm.shards = shards;
            let report = farm.run_chaos(&topology, &cfg);
            assert_eq!(report.fingerprint(), base_fp, "shards={shards}");
            assert_eq!(report.flags, baseline.flags, "shards={shards}");
            assert_eq!(report.digests, baseline.digests, "shards={shards}");
        }
        let mut other = cfg.clone();
        other.farm.seed = 8;
        other.plan = FailurePlan::none(8);
        assert_ne!(
            farm.run_chaos(&topology, &other).fingerprint(),
            base_fp,
            "different seed and plan must change the replay identity"
        );
    }

    #[test]
    fn failover_hedging_keeps_legit_service_and_answers_byte_identical() {
        let (topology, _, _, farm) = small_farm();
        let mut cfg = chaos_cfg(19, 6_000);
        let a1 = farm.letters[0].site_ids[1];
        let b0 = farm.letters[1].site_ids[0];
        cfg.plan.add(
            RootLetter::A,
            a1,
            crate::recovery::FailureKind::Crash,
            (500, 2_500),
        );
        cfg.plan.add(
            RootLetter::B,
            b0,
            crate::recovery::FailureKind::Blackhole,
            (800, 2_000),
        );
        let report = farm.run_chaos(&topology, &cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert!(report.served_hedged > 0, "{}", report.render());
        assert!(
            report.legit_served_fraction() >= 0.99,
            "legit service under failover: {}",
            report.render()
        );
        assert!(
            report.steering_epochs > farm.letters.len(),
            "dead sites must cut steering epochs"
        );
        assert_eq!(report.recoveries.len(), 1, "one crash incident");
        assert!(report.recoveries[0].converged(), "{:?}", report.recoveries);
        // Every delivered answer matches the fault-free twin byte for
        // byte.
        let twin = farm.run_chaos(&topology, &cfg.twin());
        assert_eq!(report.diff_twin(&twin), Vec::<u64>::new());
    }

    #[test]
    fn overload_shedding_drops_junk_before_benign() {
        let (topology, _, _, farm) = small_farm();
        let mut cfg = chaos_cfg(23, 6_000);
        cfg.floods.push(FloodWindow {
            start_ms: 0,
            end_ms: 4_000,
            amplification: 6.0,
        });
        let report = farm.run_chaos(&topology, &cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert!(report.shed_junk > 0, "flood must trigger shedding");
        assert_eq!(
            report.shed_benign, 0,
            "junk absorbs the whole excess at this amplification"
        );
        assert_eq!(
            report.legit_served_fraction(),
            1.0,
            "benign traffic rides out the flood untouched"
        );
    }

    #[test]
    fn chaos_poisoned_reload_is_rejected_and_generation_holds() {
        let (topology, _, _, farm) = small_farm();
        let mut cfg = chaos_cfg(29, 2_000);
        cfg.plan.add_poisoned_reload(RootLetter::B, 700);
        let report = farm.run_chaos(&topology, &cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert_eq!(report.reloads_rejected, 1);
        assert_eq!(report.reloads_accepted, 0);
        assert_eq!(farm.generation(RootLetter::B), Some(0));
    }
}
