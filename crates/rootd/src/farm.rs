//! The full-constellation serving farm.
//!
//! The paper measures the root as thirteen independently operated anycast
//! deployments — and its §6 churn analysis only makes sense against the
//! *whole* constellation, not one letter at a time. This module instantiates
//! that deployment surface in one process: every letter from the `rss`
//! catalog becomes a `LetterFarm` whose per-site [`Rootd`] engines share
//! one epoch-swapped [`SharedState`] (the zone index and the identity-free
//! answer cache are built **once** for the whole farm — the root zone is the
//! same bytes behind every letter — while CHAOS identity answers stay
//! per-site). Queries are steered to sites by the same Gao-Rexford
//! catchment computation the measurement layer uses, per address family.
//!
//! The farm serves through the batched datagram path
//! ([`Rootd::serve_udp_batch`] over [`UdpBatch`]): shards fill
//! per-(letter, site) request slabs and flush them through one
//! lock-acquire per batch. Shards partition the global query index
//! contiguously, every per-query decision (content, letter, family,
//! client) derives from that global index alone, and shard tallies merge
//! in shard-id order — so every counter, site distribution, and
//! response-size quantile in a [`FarmReport`] is bit-identical for any
//! shard count (a test sweeps 1..=8).
//!
//! Throughput is reported two ways, deliberately: `wall_qps` is total
//! queries over wall-clock time — on an N-core box the shards genuinely
//! overlap and this is the honest machine rate; `aggregate_qps` is the sum
//! over letters of (queries served / time spent inside that letter's serve
//! batches), i.e. the constellation's serving capacity when each letter's
//! flushes run uncontended, measured rather than extrapolated. DESIGN §15
//! discusses the distinction and the contention between the two.

use crate::cache::AnswerCache;
use crate::engine::{Rootd, SharedState, SiteIdentity};
use crate::index::ZoneIndex;
use crate::loadgen::{fill_query, LatencyHistogram, QueryMix, QueryTemplates};
use crate::transport::UdpBatch;
use dns_zone::Zone;
use netsim::anycast::Deployment;
use netsim::rng::SimRng;
use netsim::routing::propagate;
use netsim::topology::Topology;
use netsim::types::{AsId, Family, Tier};
use rss::catalog::RootCatalog;
use rss::RootLetter;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stream tag for per-query steering draws (letter, family). Separate
/// from `QUERY_TAG` so adding a steering decision never shifts query
/// content, and vice versa.
const STEER_TAG: u64 = 0xfa24;

/// Stream tag for per-query content draws ([`fill_query`]).
const QUERY_TAG: u64 = 0x51e7;

/// One letter's slice of the farm: per-site engines over one shared,
/// epoch-swapped serving state, plus the per-family steering tables.
struct LetterFarm {
    letter: RootLetter,
    shared: SharedState,
    /// Per-site engines, catalog order (capped at build time).
    engines: Vec<Arc<Rootd>>,
    /// Site ids, parallel to `engines`.
    site_ids: Vec<u32>,
    /// The (possibly capped) deployment steering was computed against.
    deployment: Deployment,
    /// `steer[family][client position] -> engine slot`, from the
    /// Gao-Rexford catchment computation. Position indexes the farm's
    /// stub-AS client pool; slot 0 is the fallback for routeless clients.
    steer: [Vec<u16>; 2],
}

impl LetterFarm {
    fn slot(&self, family: usize, client_idx: usize) -> usize {
        let table = &self.steer[family];
        if table.is_empty() {
            0
        } else {
            table[client_idx % table.len()] as usize
        }
    }
}

/// The whole constellation: one `LetterFarm` per requested letter, a
/// shared client pool (the topology's stub ASes), and the TLD label set
/// query templates are cut from.
pub struct Farm {
    letters: Vec<LetterFarm>,
    clients: Vec<AsId>,
    tlds: Vec<String>,
}

/// Farm run parameters.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Total queries across the whole constellation.
    pub queries: usize,
    /// Worker shards. Shards own contiguous global-index ranges; every
    /// deterministic output is independent of this.
    pub shards: usize,
    /// Datagrams per [`UdpBatch`] flush.
    pub batch: usize,
    /// Simulated clients (positions into the stub-AS pool).
    pub clients: usize,
    /// Master seed for steering and content streams.
    pub seed: u64,
    pub mix: QueryMix,
    /// Fraction of queries arriving over IPv6 (steered by the v6
    /// catchment table).
    pub v6_fraction: f64,
}

impl FarmConfig {
    /// A smoke-test-sized run.
    pub fn tiny(seed: u64) -> FarmConfig {
        FarmConfig {
            queries: 20_000,
            shards: 2,
            batch: 32,
            clients: 64,
            seed,
            mix: QueryMix::broot(),
            v6_fraction: 0.3,
        }
    }
}

/// One letter's share of a [`FarmReport`].
#[derive(Debug, Clone)]
pub struct LetterLoad {
    pub letter: RootLetter,
    /// Sites serving this letter.
    pub sites: usize,
    /// Queries this letter answered.
    pub queries: u64,
    /// Nanoseconds spent inside this letter's serve batches.
    pub busy_ns: u64,
    /// Busy-time serving rate: `queries / busy_seconds`.
    pub qps: f64,
}

/// What one farm run measured.
#[derive(Debug, Clone)]
pub struct FarmReport {
    pub queries: usize,
    pub elapsed: Duration,
    /// Total queries over wall-clock time (all letters, all shards).
    pub wall_qps: f64,
    /// Sum of per-letter busy-time rates — the constellation's aggregate
    /// serving capacity with each letter's batches uncontended.
    pub aggregate_qps: f64,
    pub letters: Vec<LetterLoad>,
    /// Answer-cache hits / full-path fallbacks / unserveable datagrams.
    pub hits: u64,
    pub fallbacks: u64,
    pub dropped: u64,
    pub responses: u64,
    pub nxdomain: u64,
    pub referrals: u64,
    pub truncated: u64,
    /// Batch-amortised serve latency quantiles (flush time split evenly
    /// across its datagrams). Timing-dependent: excluded from
    /// [`FarmReport::fingerprint`].
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Response-size quantiles (bytes). Deterministic.
    pub size_p50: u64,
    pub size_p99: u64,
    /// Responses per (letter, site id), letter-major, site-sorted.
    pub per_site: Vec<(RootLetter, u32, u64)>,
}

impl FarmReport {
    /// Order-sensitive FNV digest over every deterministic field — equal
    /// fingerprints mean the runs answered the same queries the same way
    /// and distributed them across the same sites. Wall-clock and latency
    /// fields are deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.queries as u64);
        mix(self.hits);
        mix(self.fallbacks);
        mix(self.dropped);
        mix(self.responses);
        mix(self.nxdomain);
        mix(self.referrals);
        mix(self.truncated);
        mix(self.size_p50);
        mix(self.size_p99);
        for l in &self.letters {
            mix(l.letter.index() as u64);
            mix(l.sites as u64);
            mix(l.queries);
        }
        for &(letter, site, n) in &self.per_site {
            mix(letter.index() as u64);
            mix(u64::from(site));
            mix(n);
        }
        h
    }

    /// Internal-consistency checks; a healthy run returns an empty list.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.hits + self.fallbacks + self.dropped != self.queries as u64 {
            v.push(format!(
                "serve outcomes {}+{}+{} != queries {}",
                self.hits, self.fallbacks, self.dropped, self.queries
            ));
        }
        if self.responses != self.queries as u64 - self.dropped {
            v.push(format!(
                "responses {} != queries {} - dropped {}",
                self.responses, self.queries, self.dropped
            ));
        }
        let per_letter: u64 = self.letters.iter().map(|l| l.queries).sum();
        if per_letter != self.queries as u64 {
            v.push(format!(
                "per-letter queries sum {} != queries {}",
                per_letter, self.queries
            ));
        }
        let per_site: u64 = self.per_site.iter().map(|&(_, _, n)| n).sum();
        if per_site != self.responses {
            v.push(format!(
                "per-site responses sum {} != responses {}",
                per_site, self.responses
            ));
        }
        v
    }

    /// Metric pairs in the flat label→value shape `BENCH_results.json`
    /// uses: the two throughput views, latency quantiles, and one
    /// busy-rate per letter.
    pub fn metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out = vec![
            (format!("{prefix}/aggregate_qps"), self.aggregate_qps),
            (format!("{prefix}/wall_qps"), self.wall_qps),
            (format!("{prefix}/p50_ns"), self.p50_ns as f64),
            (format!("{prefix}/p99_ns"), self.p99_ns as f64),
        ];
        for l in &self.letters {
            out.push((format!("{prefix}/qps_{}", l.letter.ch()), l.qps));
        }
        out
    }

    /// The seeded, machine-independent counters only — byte-identical
    /// across runs and shard counts (timing lives in [`FarmReport::render`]).
    pub fn render_counts(&self) -> String {
        let sites: usize = self.letters.iter().map(|l| l.sites).sum();
        let mut out = format!(
            "letters        {:>12}\nsites          {:>12}\nqueries        {:>12}\nresponses      {:>12}\ncache hits     {:>12}\nfallbacks      {:>12}\ndropped        {:>12}\nnxdomain       {:>12}\nreferrals      {:>12}\ntruncated      {:>12}\nsize p50       {:>12} B\nsize p99       {:>12} B\n",
            self.letters.len(),
            sites,
            self.queries,
            self.responses,
            self.hits,
            self.fallbacks,
            self.dropped,
            self.nxdomain,
            self.referrals,
            self.truncated,
            self.size_p50,
            self.size_p99,
        );
        for l in &self.letters {
            out.push_str(&format!(
                "  {}.root  sites {:>3}  queries {:>10}\n",
                l.letter.ch(),
                l.sites,
                l.queries,
            ));
        }
        out
    }

    /// Human-readable summary: constellation totals, both throughput
    /// views, and a per-letter table.
    pub fn render(&self) -> String {
        let sites: usize = self.letters.iter().map(|l| l.sites).sum();
        let mut out = format!(
            "letters        {:>12}\nsites          {:>12}\nqueries        {:>12}\nresponses      {:>12}\ncache hits     {:>12}\nfallbacks      {:>12}\ndropped        {:>12}\nnxdomain       {:>12}\nreferrals      {:>12}\ntruncated      {:>12}\nelapsed        {:>12.3} s\nwall clock     {:>12.0} q/s\naggregate      {:>12.0} q/s (sum of per-letter busy rates)\nserve p50      {:>12} ns\nserve p99      {:>12} ns\nsize p50       {:>12} B\nsize p99       {:>12} B\n",
            self.letters.len(),
            sites,
            self.queries,
            self.responses,
            self.hits,
            self.fallbacks,
            self.dropped,
            self.nxdomain,
            self.referrals,
            self.truncated,
            self.elapsed.as_secs_f64(),
            self.wall_qps,
            self.aggregate_qps,
            self.p50_ns,
            self.p99_ns,
            self.size_p50,
            self.size_p99,
        );
        for l in &self.letters {
            out.push_str(&format!(
                "  {}.root  sites {:>3}  queries {:>10}  busy {:>9.3} ms  rate {:>12.0} q/s\n",
                l.letter.ch(),
                l.sites,
                l.queries,
                l.busy_ns as f64 / 1e6,
                l.qps,
            ));
        }
        out
    }
}

/// Per-shard tallies, merged in shard-id order after the threads join.
struct ShardStats {
    letter_queries: Vec<u64>,
    letter_busy_ns: Vec<u64>,
    /// `[letter][slot] -> responses`.
    site_counts: Vec<Vec<u64>>,
    hits: u64,
    fallbacks: u64,
    dropped: u64,
    responses: u64,
    nxdomain: u64,
    referrals: u64,
    truncated: u64,
    latency: LatencyHistogram,
    sizes: LatencyHistogram,
}

impl ShardStats {
    fn new(slots_per_letter: &[usize]) -> ShardStats {
        ShardStats {
            letter_queries: vec![0; slots_per_letter.len()],
            letter_busy_ns: vec![0; slots_per_letter.len()],
            site_counts: slots_per_letter.iter().map(|&n| vec![0; n]).collect(),
            hits: 0,
            fallbacks: 0,
            dropped: 0,
            responses: 0,
            nxdomain: 0,
            referrals: 0,
            truncated: 0,
            latency: LatencyHistogram::new(),
            sizes: LatencyHistogram::new(),
        }
    }

    /// Classify one response datagram by header bytes (the loadgen
    /// discipline: the client side stays cheap).
    fn classify(&mut self, resp: &[u8]) {
        self.responses += 1;
        if resp.len() < 12 {
            return;
        }
        if resp[2] & 0x02 != 0 {
            self.truncated += 1;
        }
        match resp[3] & 0x0f {
            3 => self.nxdomain += 1,
            0 => {
                let ancount = u16::from_be_bytes([resp[6], resp[7]]);
                let nscount = u16::from_be_bytes([resp[8], resp[9]]);
                if ancount == 0 && nscount > 0 {
                    self.referrals += 1;
                }
            }
            _ => {}
        }
    }

    /// Serve one full batch through `engine`, timing the flush and
    /// splitting its cost evenly across the batch's datagrams.
    fn flush(&mut self, engine: &Rootd, letter_idx: usize, slot: usize, batch: &mut UdpBatch) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let t0 = Instant::now();
        let tally = engine.serve_udp_batch(batch);
        let dt = t0.elapsed().as_nanos() as u64;
        self.letter_queries[letter_idx] += n;
        self.letter_busy_ns[letter_idx] += dt;
        self.hits += tally.hits;
        self.fallbacks += tally.fallbacks;
        self.dropped += tally.dropped;
        let per_query = dt / n;
        for _ in 0..n {
            self.latency.record(per_query);
        }
        for i in 0..batch.len() {
            if let Some(resp) = batch.response(i) {
                self.site_counts[letter_idx][slot] += 1;
                self.sizes.record(resp.len() as u64);
                self.classify(resp);
            }
        }
        batch.clear();
    }
}

impl Farm {
    /// Build the constellation: one shared zone index and one shared
    /// zone-only answer cache for the whole farm, per-site engines (with
    /// per-site CHAOS identity) for every requested letter, capped at
    /// `max_sites_per_letter` sites per letter (`usize::MAX` for the full
    /// catalog), and both address families' catchment tables computed
    /// against the capped deployments.
    pub fn build(
        topology: &Topology,
        catalog: &RootCatalog,
        zone: Arc<Zone>,
        letters: &[RootLetter],
        max_sites_per_letter: usize,
    ) -> Farm {
        assert!(!letters.is_empty(), "farm needs at least one letter");
        let index = Arc::new(ZoneIndex::build(zone));
        let cache = Arc::new(AnswerCache::build_zone(&index));
        let tlds = index.tld_labels();
        let clients: Vec<AsId> = topology
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Stub)
            .map(|n| n.id)
            .collect();
        let farms = letters
            .iter()
            .map(|&letter| {
                let shared = SharedState::with_parts(Arc::clone(&index), Arc::clone(&cache));
                let mut engines = Vec::new();
                let mut site_ids = Vec::new();
                for site in catalog.sites_of(letter).take(max_sites_per_letter.max(1)) {
                    let mut engine =
                        Rootd::with_shared_state(&shared, SiteIdentity::for_site(site));
                    engine.letter = Some(letter);
                    engines.push(Arc::new(engine));
                    site_ids.push(site.site_id.0);
                }
                // Steering must route over the sites the farm actually
                // serves: announce only the kept sites.
                let full = catalog.deployment(letter);
                let deployment = Deployment {
                    name: full.name.clone(),
                    sites: full
                        .sites
                        .iter()
                        .filter(|s| site_ids.contains(&s.id.0))
                        .cloned()
                        .collect(),
                };
                let steer = [Family::V4, Family::V6].map(|family| {
                    let routes = propagate(topology, &deployment, family);
                    clients
                        .iter()
                        .map(|&asn| {
                            routes
                                .best(asn)
                                .and_then(|c| site_ids.iter().position(|&id| id == c.site.0))
                                .unwrap_or(0) as u16
                        })
                        .collect()
                });
                LetterFarm {
                    letter,
                    shared,
                    engines,
                    site_ids,
                    deployment,
                    steer,
                }
            })
            .collect();
        Farm {
            letters: farms,
            clients,
            tlds,
        }
    }

    /// The letters this farm serves, in build order.
    pub fn letters(&self) -> Vec<RootLetter> {
        self.letters.iter().map(|lf| lf.letter).collect()
    }

    /// Total site engines across all letters.
    pub fn site_count(&self) -> usize {
        self.letters.iter().map(|lf| lf.engines.len()).sum()
    }

    /// Size of the stub-AS client pool steering is computed over.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The stub-AS client pool, in steering-table order: position `p` in
    /// this slice is the client position [`Farm::site_for`] resolves.
    pub fn clients(&self) -> &[AsId] {
        &self.clients
    }

    /// The (capped) deployment `letter`'s steering was computed against.
    pub fn deployment(&self, letter: RootLetter) -> Option<&Deployment> {
        self.farm_of(letter).map(|lf| &lf.deployment)
    }

    /// The site id client position `client_idx` is steered to for
    /// `letter` over `family`.
    pub fn site_for(&self, letter: RootLetter, family: Family, client_idx: usize) -> Option<u32> {
        let lf = self.farm_of(letter)?;
        let fam = usize::from(family == Family::V6);
        Some(lf.site_ids[lf.slot(fam, client_idx)])
    }

    /// The engine serving `letter` at `site_id`.
    pub fn engine_at(&self, letter: RootLetter, site_id: u32) -> Option<&Arc<Rootd>> {
        let lf = self.farm_of(letter)?;
        let slot = lf.site_ids.iter().position(|&id| id == site_id)?;
        Some(&lf.engines[slot])
    }

    /// Current zone-epoch generation of `letter`'s shared state.
    pub fn generation(&self, letter: RootLetter) -> Option<u64> {
        self.farm_of(letter).map(|lf| lf.shared.generation())
    }

    /// Swap a new zone epoch into `letter`'s shared state — every site
    /// engine of that letter sees it atomically; other letters are
    /// untouched. Returns false when the farm does not serve `letter`.
    pub fn reload_letter(&self, letter: RootLetter, zone: Arc<Zone>) -> bool {
        match self.farm_of(letter) {
            Some(lf) => {
                lf.shared.reload(zone);
                true
            }
            None => false,
        }
    }

    fn farm_of(&self, letter: RootLetter) -> Option<&LetterFarm> {
        self.letters.iter().find(|lf| lf.letter == letter)
    }

    /// Run `cfg.queries` steered queries through the constellation over
    /// `cfg.shards` worker shards.
    ///
    /// Shard `t` owns global indices `[t*per_shard, ...)`; per query `g`,
    /// the steering stream (`STEER_TAG`) draws the letter and family,
    /// `g % clients` names the client, and the content stream
    /// (`QUERY_TAG`) fills the wire bytes — all pure functions of `g`,
    /// so every deterministic report field is shard-count-invariant.
    pub fn run(&self, cfg: &FarmConfig) -> FarmReport {
        let shards = cfg.shards.max(1);
        let clients = cfg.clients.max(1);
        let batch_cap = cfg.batch.max(1);
        let nletters = self.letters.len();
        let per_shard = cfg.queries.div_ceil(shards);
        let slots_per_letter: Vec<usize> = self.letters.iter().map(|lf| lf.engines.len()).collect();
        let slots_per_letter = &slots_per_letter;
        let templates = QueryTemplates::build(&self.tlds);
        let templates = &templates;
        let pool = self.clients.len().max(1);
        let started = Instant::now();
        let mut stats: Vec<(usize, ShardStats)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for t in 0..shards {
                let first = t * per_shard;
                let count = per_shard.min(cfg.queries.saturating_sub(first));
                handles.push(scope.spawn(move || {
                    let mut stats = ShardStats::new(slots_per_letter);
                    // One request slab per (letter, site): queries
                    // accumulate and flush through one lock acquire.
                    let mut batches: Vec<Vec<UdpBatch>> = slots_per_letter
                        .iter()
                        .map(|&n| (0..n).map(|_| UdpBatch::new()).collect())
                        .collect();
                    let mut wire = Vec::with_capacity(64);
                    for i in 0..count {
                        let g = (first + i) as u64;
                        let mut steer = SimRng::new(cfg.seed).derive_ids(&[STEER_TAG, g]);
                        let letter_idx = steer.next_range(nletters);
                        let fam = usize::from(steer.chance(cfg.v6_fraction));
                        let client_idx = (g as usize % clients) % pool;
                        let lf = &self.letters[letter_idx];
                        let slot = lf.slot(fam, client_idx);
                        let mut qrng = SimRng::new(cfg.seed).derive_ids(&[QUERY_TAG, g]);
                        fill_query(&cfg.mix, templates, &mut qrng, &mut wire);
                        let batch = &mut batches[letter_idx][slot];
                        batch.push_request(&wire);
                        if batch.len() >= batch_cap {
                            stats.flush(&lf.engines[slot], letter_idx, slot, batch);
                        }
                    }
                    for (letter_idx, letter_batches) in batches.iter_mut().enumerate() {
                        for (slot, batch) in letter_batches.iter_mut().enumerate() {
                            stats.flush(
                                &self.letters[letter_idx].engines[slot],
                                letter_idx,
                                slot,
                                batch,
                            );
                        }
                    }
                    (t, stats)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();
        // Ordered merge, same discipline as the load generator: fold
        // shard tallies in shard-id order no matter how the scheduler
        // finished them.
        stats.sort_by_key(|&(shard, _)| shard);
        let mut merged = ShardStats::new(slots_per_letter);
        for (_, s) in &stats {
            for (a, b) in merged.letter_queries.iter_mut().zip(&s.letter_queries) {
                *a += b;
            }
            for (a, b) in merged.letter_busy_ns.iter_mut().zip(&s.letter_busy_ns) {
                *a += b;
            }
            for (al, bl) in merged.site_counts.iter_mut().zip(&s.site_counts) {
                for (a, b) in al.iter_mut().zip(bl) {
                    *a += b;
                }
            }
            merged.hits += s.hits;
            merged.fallbacks += s.fallbacks;
            merged.dropped += s.dropped;
            merged.responses += s.responses;
            merged.nxdomain += s.nxdomain;
            merged.referrals += s.referrals;
            merged.truncated += s.truncated;
            merged.latency.merge(&s.latency);
            merged.sizes.merge(&s.sizes);
        }
        let letters: Vec<LetterLoad> = self
            .letters
            .iter()
            .enumerate()
            .map(|(i, lf)| {
                let queries = merged.letter_queries[i];
                let busy_ns = merged.letter_busy_ns[i];
                LetterLoad {
                    letter: lf.letter,
                    sites: lf.engines.len(),
                    queries,
                    busy_ns,
                    qps: queries as f64 / (busy_ns.max(1) as f64 / 1e9),
                }
            })
            .collect();
        let mut per_site = Vec::new();
        for (i, lf) in self.letters.iter().enumerate() {
            for (slot, &n) in merged.site_counts[i].iter().enumerate() {
                if n > 0 {
                    per_site.push((lf.letter, lf.site_ids[slot], n));
                }
            }
        }
        FarmReport {
            queries: cfg.queries,
            elapsed,
            wall_qps: cfg.queries as f64 / elapsed.as_secs_f64().max(1e-9),
            aggregate_qps: letters.iter().map(|l| l.qps).sum(),
            letters,
            hits: merged.hits,
            fallbacks: merged.fallbacks,
            dropped: merged.dropped,
            responses: merged.responses,
            nxdomain: merged.nxdomain,
            referrals: merged.referrals,
            truncated: merged.truncated,
            p50_ns: merged.latency.quantile(0.50),
            p99_ns: merged.latency.quantile(0.99),
            size_p50: merged.sizes.quantile(0.50),
            size_p99: merged.sizes.quantile(0.99),
            per_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use netsim::topology::TopologyConfig;
    use rss::catalog::WorldConfig;

    fn world() -> (Topology, RootCatalog, Arc<Zone>) {
        let mut topology = Topology::generate(&TopologyConfig {
            tier2_per_region: 4,
            stubs_per_region: [4, 8, 16, 12, 4, 6],
            ..Default::default()
        });
        let catalog = RootCatalog::build(
            &mut topology,
            &WorldConfig {
                site_scale: 0.05,
                ..Default::default()
            },
        );
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 12,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(3),
        );
        (topology, catalog, Arc::new(zone))
    }

    fn small_farm() -> (Topology, RootCatalog, Arc<Zone>, Farm) {
        let (topology, catalog, zone) = world();
        let farm = Farm::build(
            &topology,
            &catalog,
            Arc::clone(&zone),
            &[RootLetter::A, RootLetter::B],
            4,
        );
        (topology, catalog, zone, farm)
    }

    #[test]
    fn farm_counters_cover_every_query() {
        let (_, _, _, farm) = small_farm();
        let mut cfg = FarmConfig::tiny(41);
        cfg.queries = 6_000;
        let report = farm.run(&cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert_eq!(
            report.hits + report.fallbacks + report.dropped,
            report.queries as u64
        );
        assert!(report.hits > 0, "cached path must dominate: {report:?}");
        assert!(report.nxdomain > 0 && report.referrals > 0);
        assert!(report.aggregate_qps > 0.0 && report.wall_qps > 0.0);
        // Both letters drew load, and load spread across sites.
        assert!(report.letters.iter().all(|l| l.queries > 0));
        assert!(report.per_site.len() > 2, "{:?}", report.per_site);
    }

    #[test]
    fn farm_report_is_bit_identical_across_shard_counts() {
        let (_, _, _, farm) = small_farm();
        let mut cfg = FarmConfig::tiny(7);
        cfg.queries = 4_000;
        cfg.shards = 1;
        let baseline = farm.run(&cfg);
        let base_fp = baseline.fingerprint();
        for shards in 2..=8 {
            cfg.shards = shards;
            let report = farm.run(&cfg);
            assert_eq!(report.fingerprint(), base_fp, "shards={shards}");
            assert_eq!(report.hits, baseline.hits, "shards={shards}");
            assert_eq!(report.per_site, baseline.per_site, "shards={shards}");
            assert_eq!(
                (report.size_p50, report.size_p99),
                (baseline.size_p50, baseline.size_p99),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn steering_matches_a_fresh_catchment_computation() {
        let (topology, _, _, farm) = small_farm();
        for letter in [RootLetter::A, RootLetter::B] {
            let deployment = farm.deployment(letter).unwrap();
            for family in [Family::V4, Family::V6] {
                let routes = propagate(&topology, deployment, family);
                let mut steered_off_default = 0;
                for (pos, &asn) in farm.clients.iter().enumerate() {
                    let got = farm.site_for(letter, family, pos).unwrap();
                    if let Some(best) = routes.best(asn) {
                        assert_eq!(got, best.site.0, "{letter:?} {family:?} client {pos}");
                        if got != farm.farm_of(letter).unwrap().site_ids[0] {
                            steered_off_default += 1;
                        }
                    }
                }
                assert!(
                    steered_off_default > 0,
                    "{letter:?} {family:?}: catchments must use >1 site"
                );
            }
        }
    }

    #[test]
    fn reload_swaps_one_letter_without_touching_the_others() {
        let (_, _, _, farm) = small_farm();
        assert_eq!(farm.generation(RootLetter::A), Some(0));
        assert_eq!(farm.generation(RootLetter::B), Some(0));
        let zone2 = build_root_zone(
            &RootZoneConfig {
                tld_count: 15,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(9),
        );
        assert!(farm.reload_letter(RootLetter::B, Arc::new(zone2)));
        assert_eq!(farm.generation(RootLetter::B), Some(1));
        assert_eq!(farm.generation(RootLetter::A), Some(0));
        assert!(!farm.reload_letter(RootLetter::C, {
            let (_, _, zone) = world();
            zone
        }));
        // The farm still serves after the swap.
        let mut cfg = FarmConfig::tiny(3);
        cfg.queries = 2_000;
        let report = farm.run(&cfg);
        assert_eq!(report.violations(), Vec::<String>::new());
        assert!(report.responses > 0);
    }
}
