//! A multithreaded query load generator.
//!
//! Replays seeded, B-Root-shaped query mixes (after Ginesin & Mirkovic's
//! composition study: junk-heavy names, ~half DNSSEC-requesting, a thin
//! stream of CHAOS identity probes) from many simulated clients against
//! per-site [`Rootd`] engines. Each client is a stub AS from the `netsim`
//! topology; which site answers it is decided by the same Gao-Rexford
//! catchment computation the measurement layer uses, so load distributes
//! across sites the way anycast would distribute it.
//!
//! Every query travels the full serve path on raw bytes
//! ([`Rootd::serve_udp_into`], answer cache first, fallback parse →
//! respond → encode otherwise); latency is recorded per query into a
//! log-bucketed histogram (16 sub-buckets per octave, so quantile error
//! is bounded at ~6%), and the report carries throughput, p50/p95/p99,
//! and cache hit/miss counters. Queries are filled from precompiled wire
//! templates into a per-worker scratch buffer — byte-identical to the
//! `Message`-built stream (a test asserts it) but allocation-free, so the
//! generator keeps up with the cached serve path.

use crate::engine::{Rootd, ServeOutcome, SiteIdentity};
use crate::faults::{FaultCounters, FaultPlan, FaultyTransport};
use crate::index::ZoneIndex;
use crate::transport::{InprocTransport, Transport};
use dns_wire::{Message, Name, Question, RrType};
use dns_zone::Zone;
use netsim::rng::SimRng;
use netsim::routing::propagate;
use netsim::topology::Topology;
use netsim::types::{AsId, Family, Tier};
use rss::catalog::RootCatalog;
use rss::RootLetter;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shape of generated traffic.
#[derive(Debug, Clone)]
pub struct QueryMix {
    /// Weighted QTYPE distribution.
    pub qtypes: Vec<(RrType, u32)>,
    /// Fraction of queries for names that do not exist (junk single
    /// labels — the dominant traffic class at the root).
    pub nxdomain_fraction: f64,
    /// Fraction of queries carrying an EDNS OPT with DO set.
    pub dnssec_fraction: f64,
    /// Fraction of CHAOS-class identity probes.
    pub chaos_fraction: f64,
}

impl QueryMix {
    /// The B-Root-shaped default: A-dominated QTYPEs, ~45% junk names,
    /// ~55% DNSSEC OK, a trickle of identity probes.
    pub fn broot() -> QueryMix {
        QueryMix {
            qtypes: vec![
                (RrType::A, 50),
                (RrType::Aaaa, 22),
                (RrType::Ns, 8),
                (RrType::Ds, 7),
                (RrType::Soa, 4),
                (RrType::Txt, 4),
                (RrType::Dnskey, 2),
                (RrType::Mx, 2),
                (RrType::Cname, 1),
            ],
            nxdomain_fraction: 0.45,
            dnssec_fraction: 0.55,
            chaos_fraction: 0.01,
        }
    }

    fn draw_qtype(&self, rng: &mut SimRng) -> RrType {
        let total: u32 = self.qtypes.iter().map(|(_, w)| w).sum();
        let mut roll = rng.next_range(total as usize) as u32;
        for (t, w) in &self.qtypes {
            if roll < *w {
                return *t;
            }
            roll -= w;
        }
        RrType::A
    }
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix::broot()
    }
}

/// Deterministic client arrivals on the shared virtual-ms axis: global
/// query `g` arrives at `start_ms + g * interarrival_ms`, and each retry
/// waits one client timeout. Arrival instants are a pure function of the
/// global query index — not of which worker runs it or what any shared
/// clock reads — which is what keeps time-windowed fault totals
/// independent of the worker-thread count.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalSchedule {
    /// Virtual instant of the first query.
    pub start_ms: u64,
    /// Virtual gap between consecutive (global) queries.
    pub interarrival_ms: u64,
}

impl ArrivalSchedule {
    /// The virtual instant attempt `attempt` of global query `global`
    /// is pinned to.
    pub fn attempt_at(&self, global: u64, attempt: u64, timeout_ms: u64) -> u64 {
        self.start_ms + global * self.interarrival_ms + attempt * timeout_ms
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Simulated clients (stub ASes are reused round-robin when fewer
    /// exist in the topology).
    pub clients: usize,
    /// Total queries across all threads.
    pub queries: usize,
    /// Worker threads.
    pub threads: usize,
    /// Master seed; every client derives its own stream from it.
    pub seed: u64,
    pub mix: QueryMix,
    /// When set, every query travels through a [`FaultyTransport`]
    /// executing this plan (keyed per site), and the client side runs a
    /// retry loop with client-visible timeout/retry counters. `None` is
    /// the direct zero-allocation serve path.
    pub faults: Option<FaultPlan>,
    /// When set (fault mode only), each attempt is pinned to its
    /// scheduled virtual instant, so the plan's *time* windows — outages,
    /// scenario events projected by `fault_plan_on_clock` — hit exactly
    /// the queries that arrive inside them, on any thread count.
    pub arrivals: Option<ArrivalSchedule>,
}

impl LoadgenConfig {
    /// A smoke-test-sized run.
    pub fn tiny(seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            clients: 64,
            queries: 5_000,
            threads: 2,
            seed,
            mix: QueryMix::broot(),
            faults: None,
            arrivals: None,
        }
    }
}

/// One letter's serving fleet: an engine per anycast site, plus the
/// catchment map deciding which site each client AS reaches.
pub struct SiteFleet {
    pub(crate) engines: HashMap<u32, Arc<Rootd>>,
    /// `client AS -> site` from the Gao-Rexford route computation.
    pub(crate) catchment: HashMap<u32, u32>,
    /// Fallback when an AS has no route (partial reachability).
    pub(crate) default_site: u32,
    /// Client pool: stub ASes of the topology.
    pub(crate) clients: Vec<AsId>,
    pub(crate) tlds: Vec<String>,
}

impl SiteFleet {
    /// Build engines for every site of `letter`, sharing one precompiled
    /// [`ZoneIndex`], and compute the IPv4 catchment for all stub ASes.
    pub fn build(
        topology: &Topology,
        catalog: &RootCatalog,
        letter: RootLetter,
        zone: Arc<Zone>,
    ) -> SiteFleet {
        let index = Arc::new(ZoneIndex::build(zone));
        let mut engines = HashMap::new();
        let mut default_site = 0;
        for (i, site) in catalog.sites_of(letter).enumerate() {
            if i == 0 {
                default_site = site.site_id.0;
            }
            let mut engine =
                Rootd::new(Arc::clone(&index), SiteIdentity::for_site(site)).with_answer_cache();
            engine.letter = Some(letter);
            engines.insert(site.site_id.0, Arc::new(engine));
        }
        let routes = propagate(topology, catalog.deployment(letter), Family::V4);
        let clients: Vec<AsId> = topology
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Stub)
            .map(|n| n.id)
            .collect();
        let catchment = clients
            .iter()
            .filter_map(|asn| routes.best(*asn).map(|c| (asn.0, c.site.0)))
            .collect();
        let tlds = index.tld_labels();
        SiteFleet {
            engines,
            catchment,
            default_site,
            clients,
            tlds,
        }
    }

    /// Number of sites serving.
    pub fn site_count(&self) -> usize {
        self.engines.len()
    }

    /// Swap the response-rate-limiter config on every site's engine
    /// (fresh buckets/counters for `Some`, plain serving for `None`).
    pub fn set_rrl(&self, cfg: Option<crate::rrl::RrlConfig>) {
        for engine in self.engines.values() {
            engine.set_rrl(cfg.clone());
        }
    }

    /// Site ids in a deterministic (sorted) order.
    pub(crate) fn site_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.engines.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    pub(crate) fn engine_for(&self, asn: AsId) -> &Arc<Rootd> {
        let site = self.catchment.get(&asn.0).unwrap_or(&self.default_site);
        self.engines
            .get(site)
            .or_else(|| self.engines.get(&self.default_site))
            .expect("fleet has at least one site")
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub queries: usize,
    pub responses: usize,
    pub nxdomain: usize,
    pub referrals: usize,
    pub truncated: usize,
    /// Queries answered from the precompiled answer cache.
    pub cache_hits: usize,
    /// Queries that took the fallback path (or were dropped).
    pub cache_misses: usize,
    pub elapsed: Duration,
    pub qps: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Queries answered per site id.
    pub per_site: Vec<(u32, usize)>,
    /// Client-visible timeouts (dropped or dead exchanges), fault mode
    /// only. Seeded: independent of the worker-thread count.
    pub timeouts: usize,
    /// Client retries issued after a failed attempt, fault mode only.
    pub retries: usize,
    /// Queries that got no usable response within the retry budget.
    pub unanswered: usize,
    /// Injected-fault totals merged across every per-site transport.
    pub fault_counters: FaultCounters,
}

impl LoadReport {
    /// Metric pairs in the flat label→value shape `BENCH_results.json`
    /// uses.
    pub fn metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        vec![
            (format!("{prefix}/qps"), self.qps),
            (format!("{prefix}/p50_ns"), self.p50_ns as f64),
            (format!("{prefix}/p95_ns"), self.p95_ns as f64),
            (format!("{prefix}/p99_ns"), self.p99_ns as f64),
        ]
    }

    /// The deterministic half of the summary: response counters only.
    /// Same input stream ⇒ same text, regardless of machine or timing —
    /// what seeded surfaces (the experiment registry) should print.
    pub fn render_counts(&self) -> String {
        format!(
            "queries        {:>12}\nresponses      {:>12}\nnxdomain       {:>12}\nreferrals      {:>12}\ntruncated      {:>12}\ncache hits     {:>12}\ncache misses   {:>12}\nsites answering {:>11}\n",
            self.queries,
            self.responses,
            self.nxdomain,
            self.referrals,
            self.truncated,
            self.cache_hits,
            self.cache_misses,
            self.per_site.len()
        )
    }

    /// The client-side fault summary (meaningful when the run had a
    /// fault plan). Deterministic like `render_counts`.
    pub fn render_faults(&self) -> String {
        format!(
            "client timeouts {:>11}\nclient retries {:>12}\nunanswered     {:>12}\ninjected: {}\n",
            self.timeouts,
            self.retries,
            self.unanswered,
            self.fault_counters.render(),
        )
    }

    /// Human-readable summary including wall-clock throughput/latency.
    pub fn render(&self) -> String {
        let mut out = self.render_counts();
        out.push_str(&format!(
            "elapsed        {:>12.3} s\nthroughput     {:>12.0} q/s\nlatency p50    {:>12} ns\nlatency p95    {:>12} ns\nlatency p99    {:>12} ns\n",
            self.elapsed.as_secs_f64(),
            self.qps,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns
        ));
        out
    }
}

/// Log-bucketed latency histogram: 16 sub-buckets per octave bounds the
/// relative quantile error at 1/16.
pub(crate) struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

pub(crate) const HISTOGRAM_BUCKETS: usize = 16 + 60 * 16;

impl LatencyHistogram {
    pub(crate) fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < 16 {
            return v as usize;
        }
        let top = 63 - v.leading_zeros() as u64;
        let sub = (v >> (top - 4)) & 0xF;
        ((top - 4) * 16 + sub + 16) as usize
    }

    /// Lower bound of bucket `idx` — what quantiles report.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < 16 {
            return idx as u64;
        }
        let group = (idx - 16) / 16;
        let sub = ((idx - 16) % 16) as u64;
        (16 + sub) << group
    }

    pub(crate) fn record(&mut self, v: u64) {
        let idx = Self::bucket_of(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    pub(crate) fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    pub(crate) fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(HISTOGRAM_BUCKETS - 1)
    }
}

/// Per-worker tallies, merged after the threads join.
struct WorkerStats {
    hist: LatencyHistogram,
    responses: usize,
    nxdomain: usize,
    referrals: usize,
    truncated: usize,
    cache_hits: usize,
    cache_misses: usize,
    per_site: HashMap<u32, usize>,
    timeouts: usize,
    retries: usize,
    unanswered: usize,
    faults: FaultCounters,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            hist: LatencyHistogram::new(),
            responses: 0,
            nxdomain: 0,
            referrals: 0,
            truncated: 0,
            cache_hits: 0,
            cache_misses: 0,
            per_site: HashMap::new(),
            timeouts: 0,
            retries: 0,
            unanswered: 0,
            faults: FaultCounters::default(),
        }
    }
}

/// Client retry budget per query in fault mode (first try included).
const CLIENT_ATTEMPTS: u64 = 3;

/// Minimal response hygiene on raw bytes: long enough for a header, the
/// ID we sent, and the QR bit set.
fn response_is_plausible(resp: &[u8], query: &[u8]) -> bool {
    resp.len() >= 12 && resp[0] == query[0] && resp[1] == query[1] && resp[2] & 0x80 != 0
}

/// The CHAOS names the generator probes (a strict subset of what sites
/// answer, as in the B-Root composition study).
const CHAOS_PROBES: [&str; 3] = ["hostname.bind.", "id.server.", "version.bind."];

/// Pre-encoded wire fragments for [`fill_query`]: whole CHAOS queries and
/// qname bytes per TLD, so the per-query work is a copy plus patches.
pub(crate) struct QueryTemplates {
    chaos: [Vec<u8>; 3],
    /// Qname wire bytes (`len label 0`) per delegated TLD.
    tld_names: Vec<Vec<u8>>,
}

impl QueryTemplates {
    pub(crate) fn build(tlds: &[String]) -> QueryTemplates {
        let chaos = CHAOS_PROBES
            .map(|n| Message::query(0, Question::chaos_txt(Name::parse(n).unwrap())).to_wire());
        let tld_names = tlds
            .iter()
            .map(|t| {
                let mut wire = Vec::with_capacity(t.len() + 2);
                wire.push(t.len() as u8);
                wire.extend_from_slice(t.as_bytes());
                wire.push(0);
                wire
            })
            .collect();
        QueryTemplates { chaos, tld_names }
    }
}

/// What a generated query asked for — the shed-priority taxonomy the
/// self-healing farm reuses (junk-class sheds first, mirroring the RRL
/// `ResponseClass::NxDomain` bucket; CHAOS answers name the serving site,
/// so byte-identity twins exclude them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// CHAOS identity probe.
    Chaos,
    /// Apex SOA/DNSKEY (priming-style).
    Apex,
    /// Random junk label destined for NXDOMAIN.
    Junk,
    /// A delegated TLD (referral traffic).
    Tld,
}

/// Write one query's wire bytes for `client`'s stream into `out`, and
/// report which traffic class it belongs to. Consumes RNG draws in exactly
/// the order the original `Message`-building path did, and produces
/// byte-identical datagrams (asserted by
/// `templated_queries_match_message_built_ones`), so reports stay
/// comparable across the optimization.
pub(crate) fn fill_query(
    mix: &QueryMix,
    templates: &QueryTemplates,
    rng: &mut SimRng,
    out: &mut Vec<u8>,
) -> QueryClass {
    let id = (rng.next_u64() & 0xffff) as u16;
    if rng.chance(mix.chaos_fraction) {
        // Mirrors `rng.pick` on the 3-element probe array.
        let probe = &templates.chaos[rng.next_range(CHAOS_PROBES.len())];
        out.clear();
        out.extend_from_slice(probe);
        out[0] = (id >> 8) as u8;
        out[1] = id as u8;
        return QueryClass::Chaos;
    }
    let qtype = mix.draw_qtype(rng);
    out.clear();
    out.extend_from_slice(&[(id >> 8) as u8, id as u8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
    // Priming-style queries go to the apex; everything else to a TLD or a
    // junk label (the root's NXDOMAIN-heavy reality).
    let class = if matches!(qtype, RrType::Soa | RrType::Dnskey) {
        out.push(0);
        QueryClass::Apex
    } else if rng.chance(mix.nxdomain_fraction) || templates.tld_names.is_empty() {
        // `nx` + 12 lowercase hex digits, one 14-byte label.
        let bits = rng.next_u64() & 0xffff_ffff_ffff;
        out.push(14);
        out.extend_from_slice(b"nx");
        for shift in (0..12u32).rev() {
            out.push(b"0123456789abcdef"[((bits >> (shift * 4)) & 0xf) as usize]);
        }
        out.push(0);
        QueryClass::Junk
    } else {
        out.extend_from_slice(&templates.tld_names[rng.next_range(templates.tld_names.len())]);
        QueryClass::Tld
    };
    out.extend_from_slice(&qtype.to_u16().to_be_bytes());
    out.extend_from_slice(&[0, 1]); // IN
    if rng.chance(mix.dnssec_fraction) {
        // A canonical DO OPT: payload 4096, version 0, no options —
        // byte-for-byte what `set_edns(&Edns::dnssec())` appends.
        out[11] = 1;
        out.extend_from_slice(&[0, 0, 41, 0x10, 0x00, 0, 0, 0x80, 0, 0, 0]);
    }
    class
}

/// Classify a raw response datagram by header bytes alone — the client
/// side of the loop stays cheap so the measured cost is the server path.
fn classify(stats: &mut WorkerStats, site: u32, resp: &[u8]) {
    stats.responses += 1;
    *stats.per_site.entry(site).or_insert(0) += 1;
    if resp.len() < 12 {
        return;
    }
    if resp[2] & 0x02 != 0 {
        stats.truncated += 1;
    }
    match resp[3] & 0x0f {
        3 => stats.nxdomain += 1,
        0 => {
            // NOERROR with an empty answer section and a non-empty
            // authority section is (at the root) a referral or NODATA.
            let ancount = u16::from_be_bytes([resp[6], resp[7]]);
            let nscount = u16::from_be_bytes([resp[8], resp[9]]);
            if ancount == 0 && nscount > 0 {
                stats.referrals += 1;
            }
        }
        _ => {}
    }
}

/// Run the generator: `cfg.queries` queries from `cfg.clients` simulated
/// clients spread over `cfg.threads` workers against `fleet`.
pub fn run(fleet: &SiteFleet, cfg: &LoadgenConfig) -> LoadReport {
    let threads = cfg.threads.max(1);
    let clients = cfg.clients.max(1);
    let per_thread = cfg.queries.div_ceil(threads);
    let templates = QueryTemplates::build(&fleet.tlds);
    let templates = &templates;
    let plan = cfg.faults.clone().map(Arc::new);
    let plan = &plan;
    let started = Instant::now();
    let mut stats: Vec<(usize, WorkerStats)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let first = t * per_thread;
            let count = per_thread.min(cfg.queries.saturating_sub(first));
            handles.push(scope.spawn(move || {
                let mut stats = WorkerStats::new();
                // Each simulated client owns a derived, reproducible
                // stream; threads interleave clients round-robin.
                let mut rngs: HashMap<usize, SimRng> = HashMap::new();
                // Per-worker scratch: the whole query/serve loop reuses
                // these two buffers, no per-query allocation.
                let mut wire = Vec::with_capacity(64);
                let mut resp = Vec::with_capacity(4096);
                // Fault mode: one wrapped transport per site this worker
                // talks to. Fault decisions are keyed by global query
                // index, not per-transport sequence, so totals do not
                // depend on how queries partition across workers.
                let mut transports: HashMap<u32, FaultyTransport<InprocTransport>> = HashMap::new();
                for i in 0..count {
                    let global = first + i;
                    let client_idx = global % clients;
                    let rng = rngs.entry(client_idx).or_insert_with(|| {
                        SimRng::new(cfg.seed).derive_ids(&[0x10ad, client_idx as u64])
                    });
                    let asn = fleet.clients[client_idx % fleet.clients.len().max(1)];
                    let engine = fleet.engine_for(asn);
                    let site = *fleet.catchment.get(&asn.0).unwrap_or(&fleet.default_site);
                    fill_query(&cfg.mix, templates, rng, &mut wire);
                    if let Some(plan) = plan {
                        let transport = transports.entry(site).or_insert_with(|| {
                            FaultyTransport::new(
                                InprocTransport::new(Arc::clone(engine)),
                                Arc::clone(plan),
                                site as u64,
                            )
                        });
                        let t0 = Instant::now();
                        let mut answered = false;
                        for attempt in 0..CLIENT_ATTEMPTS {
                            transport.with_next_key((global as u64) * CLIENT_ATTEMPTS + attempt);
                            if let Some(sched) = cfg.arrivals {
                                // Pin the attempt to its scheduled virtual
                                // instant: window membership becomes a pure
                                // function of the global index, so no
                                // thread's progress can skew which fault
                                // window another thread's queries land in.
                                transport.at_time(sched.attempt_at(
                                    global as u64,
                                    attempt,
                                    plan.client_timeout_ms,
                                ));
                            }
                            // Scratch-slab path: the answer lands in the
                            // reused `resp` buffer, no per-attempt `Vec`.
                            match transport.exchange_udp_into(&wire, &mut resp) {
                                Ok(true) if response_is_plausible(&resp, &wire) => {
                                    classify(&mut stats, site, &resp);
                                    answered = true;
                                    break;
                                }
                                Ok(true) => {} // garbage/bitflipped: retry
                                Ok(false) | Err(_) => stats.timeouts += 1,
                            }
                            if attempt + 1 < CLIENT_ATTEMPTS {
                                stats.retries += 1;
                            }
                        }
                        stats.hist.record(t0.elapsed().as_nanos() as u64);
                        if !answered {
                            stats.unanswered += 1;
                        }
                        continue;
                    }
                    let t0 = Instant::now();
                    let outcome = engine.serve_udp_into(&wire, &mut resp);
                    let lat = t0.elapsed().as_nanos() as u64;
                    stats.hist.record(lat);
                    match outcome {
                        ServeOutcome::CacheHit => {
                            stats.cache_hits += 1;
                            classify(&mut stats, site, &resp);
                        }
                        ServeOutcome::Fallback => {
                            stats.cache_misses += 1;
                            classify(&mut stats, site, &resp);
                        }
                        ServeOutcome::Dropped => stats.cache_misses += 1,
                    }
                }
                for transport in transports.values() {
                    stats.faults.merge(&transport.counters());
                }
                (t, stats)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    // Merge in shard-id order, explicitly: every per-thread tally folds in
    // the same sequence no matter how the scheduler interleaved the
    // workers, so merged histograms and counters are bit-identical across
    // runs and thread counts (the histogram merge is commutative today,
    // but the ordered discipline keeps that a non-assumption).
    stats.sort_by_key(|&(shard, _)| shard);
    let mut hist = LatencyHistogram::new();
    let mut merged = WorkerStats::new();
    for (_, s) in &stats {
        hist.merge(&s.hist);
        merged.responses += s.responses;
        merged.nxdomain += s.nxdomain;
        merged.referrals += s.referrals;
        merged.truncated += s.truncated;
        merged.cache_hits += s.cache_hits;
        merged.cache_misses += s.cache_misses;
        merged.timeouts += s.timeouts;
        merged.retries += s.retries;
        merged.unanswered += s.unanswered;
        merged.faults.merge(&s.faults);
        for (site, n) in &s.per_site {
            *merged.per_site.entry(*site).or_insert(0) += n;
        }
    }
    let mut per_site: Vec<(u32, usize)> = merged.per_site.into_iter().collect();
    per_site.sort_unstable();
    LoadReport {
        queries: cfg.queries,
        responses: merged.responses,
        nxdomain: merged.nxdomain,
        referrals: merged.referrals,
        truncated: merged.truncated,
        cache_hits: merged.cache_hits,
        cache_misses: merged.cache_misses,
        elapsed,
        qps: cfg.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: hist.quantile(0.50),
        p95_ns: hist.quantile(0.95),
        p99_ns: hist.quantile(0.99),
        per_site,
        timeouts: merged.timeouts,
        retries: merged.retries,
        unanswered: merged.unanswered,
        fault_counters: merged.faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use netsim::topology::TopologyConfig;
    use rss::catalog::WorldConfig;

    fn fleet() -> SiteFleet {
        let mut topology = Topology::generate(&TopologyConfig {
            tier2_per_region: 4,
            stubs_per_region: [4, 8, 16, 12, 4, 6],
            ..Default::default()
        });
        let catalog = RootCatalog::build(
            &mut topology,
            &WorldConfig {
                site_scale: 0.05,
                ..Default::default()
            },
        );
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 12,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(3),
        );
        SiteFleet::build(&topology, &catalog, RootLetter::B, Arc::new(zone))
    }

    #[test]
    fn histogram_buckets_are_monotone_and_cover() {
        let mut prev = 0;
        for idx in 0..HISTOGRAM_BUCKETS {
            let floor = LatencyHistogram::bucket_floor(idx);
            assert!(idx == 0 || floor > prev || floor == prev + 1 || floor >= prev);
            prev = floor;
        }
        for v in [0u64, 1, 15, 16, 17, 255, 1024, 123_456_789] {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(LatencyHistogram::bucket_floor(idx) <= v);
            if idx + 1 < HISTOGRAM_BUCKETS {
                assert!(LatencyHistogram::bucket_floor(idx + 1) > v);
            }
        }
    }

    #[test]
    fn merged_quantiles_are_identical_for_one_through_eight_workers() {
        // Deterministic per-query values partitioned exactly the way `run`
        // partitions queries across workers (contiguous blocks of
        // `div_ceil` size): the shard-ordered merge must produce the same
        // quantiles for every worker count as the single histogram.
        let queries = 10_000usize;
        let mut rng = SimRng::new(0x4157_0961);
        let values: Vec<u64> = (0..queries)
            .map(|_| rng.next_range(5_000_000) as u64)
            .collect();
        let mut baseline = LatencyHistogram::new();
        for &v in &values {
            baseline.record(v);
        }
        let expected = (
            baseline.quantile(0.50),
            baseline.quantile(0.95),
            baseline.quantile(0.99),
        );
        for threads in 1..=8usize {
            let per_thread = queries.div_ceil(threads);
            let mut shards: Vec<(usize, LatencyHistogram)> = (0..threads)
                .map(|t| {
                    let mut h = LatencyHistogram::new();
                    let first = t * per_thread;
                    let count = per_thread.min(queries.saturating_sub(first));
                    for &v in &values[first..first + count] {
                        h.record(v);
                    }
                    (t, h)
                })
                .collect();
            // Present shards out of order (reverse spawn order, the way a
            // scheduler might finish them); the merge discipline sorts.
            shards.reverse();
            shards.sort_by_key(|&(shard, _)| shard);
            let mut merged = LatencyHistogram::new();
            for (_, h) in &shards {
                merged.merge(h);
            }
            assert_eq!(
                (
                    merged.quantile(0.50),
                    merged.quantile(0.95),
                    merged.quantile(0.99),
                ),
                expected,
                "{threads} workers"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Log buckets undershoot by at most one sub-bucket (~6%).
        assert!((450..=500).contains(&p50), "p50 = {p50}");
        assert!((900..=990).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn run_is_deterministic_in_counts() {
        let fleet = fleet();
        let cfg = LoadgenConfig {
            queries: 2_000,
            ..LoadgenConfig::tiny(7)
        };
        let a = run(&fleet, &cfg);
        let b = run(&fleet, &cfg);
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.nxdomain, b.nxdomain);
        assert_eq!(a.referrals, b.referrals);
        assert_eq!(a.per_site, b.per_site);
        // A junk-heavy mix must produce plenty of NXDOMAIN and referrals.
        assert!(a.responses > 0);
        assert!(a.nxdomain > cfg.queries / 4);
        assert!(a.referrals > 0);
        assert!(a.qps > 0.0);
    }

    #[test]
    fn load_spreads_across_sites_when_fleet_has_many() {
        let fleet = fleet();
        if fleet.site_count() < 2 {
            return; // tiny worlds may collapse to one site
        }
        let report = run(&fleet, &LoadgenConfig::tiny(11));
        assert!(!report.per_site.is_empty());
    }

    /// The `Message`-building path `fill_query` replaced, kept verbatim as
    /// the parity oracle.
    fn build_query_via_message(mix: &QueryMix, tlds: &[String], rng: &mut SimRng) -> Vec<u8> {
        use dns_wire::edns::{set_edns, Edns};
        let id = (rng.next_u64() & 0xffff) as u16;
        if rng.chance(mix.chaos_fraction) {
            let name = *rng.pick(&CHAOS_PROBES);
            return Message::query(id, Question::chaos_txt(Name::parse(name).unwrap())).to_wire();
        }
        let qtype = mix.draw_qtype(rng);
        let name = if matches!(qtype, RrType::Soa | RrType::Dnskey) {
            Name::root()
        } else if rng.chance(mix.nxdomain_fraction) || tlds.is_empty() {
            Name::parse(&format!("nx{:012x}.", rng.next_u64() & 0xffff_ffff_ffff)).unwrap()
        } else {
            Name::parse(&format!("{}.", rng.pick(tlds))).unwrap()
        };
        let mut q = Message::query(id, Question::new(name, qtype));
        if rng.chance(mix.dnssec_fraction) {
            set_edns(&mut q, &Edns::dnssec());
        }
        q.to_wire()
    }

    #[test]
    fn templated_queries_match_message_built_ones() {
        let mix = QueryMix::broot();
        let tlds: Vec<String> = ["com", "net", "org", "xn--p1ai"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let templates = QueryTemplates::build(&tlds);
        let mut rng_a = SimRng::new(42).derive_ids(&[0x10ad, 3]);
        let mut rng_b = SimRng::new(42).derive_ids(&[0x10ad, 3]);
        let mut wire = Vec::new();
        for i in 0..5_000 {
            let expected = build_query_via_message(&mix, &tlds, &mut rng_a);
            fill_query(&mix, &templates, &mut rng_b, &mut wire);
            assert_eq!(expected, wire, "query {i} diverged");
        }
    }

    #[test]
    fn cache_counters_cover_every_query_and_ignore_worker_count() {
        let fleet = fleet();
        let cfg = LoadgenConfig {
            queries: 2_000,
            ..LoadgenConfig::tiny(7)
        };
        let a = run(&fleet, &cfg);
        assert_eq!(a.cache_hits + a.cache_misses, cfg.queries);
        // The junk/TLD/apex bulk of the b-root mix is precompiled; only
        // cold shapes (e.g. CHAOS probes against identity-less sites)
        // should miss.
        assert!(a.cache_hits > cfg.queries * 9 / 10, "{} hits", a.cache_hits);
        let b = run(
            &fleet,
            &LoadgenConfig {
                threads: 5,
                ..cfg.clone()
            },
        );
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_misses, b.cache_misses);
    }

    #[test]
    fn fault_mode_totals_ignore_worker_count() {
        use crate::faults::FaultSpec;
        let fleet = fleet();
        // Loss only: the drop decision is a pure function of the global
        // per-query key, and whether a *delivered* response is accepted
        // never depends on worker partitioning. (Corruption classes are
        // content-dependent — a flip may or may not hit the header — and
        // query content rides per-worker client streams; their totals are
        // deterministic per partition, asserted separately below.)
        let cfg = LoadgenConfig {
            queries: 2_000,
            faults: Some(FaultPlan::clean(5).with_default(FaultSpec::loss(0.2))),
            ..LoadgenConfig::tiny(7)
        };
        let a = run(&fleet, &cfg);
        let b = run(
            &fleet,
            &LoadgenConfig {
                threads: 5,
                ..cfg.clone()
            },
        );
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.unanswered, b.unanswered);
        assert_eq!(a.fault_counters, b.fault_counters);
        // 20% loss over 2000 queries must surface client-visible faults…
        assert!(a.timeouts > 0);
        assert!(a.retries > 0);
        // Every retry follows a timeout here, but a drop on a query's
        // *last* attempt times out with no retry left.
        assert!(a.retries <= a.timeouts);
        assert_eq!(a.fault_counters.drops as usize, a.timeouts);
        // …and every query either got a plausible answer or is counted
        // unanswered.
        assert_eq!(a.responses + a.unanswered, cfg.queries);
        // The retry budget beats 20% loss almost always.
        assert!(
            a.unanswered < cfg.queries / 50,
            "{} unanswered",
            a.unanswered
        );
    }

    #[test]
    fn arrival_schedule_pins_time_windows_across_worker_counts() {
        use crate::faults::FaultSpec;
        let fleet = fleet();
        // All sites go dark for the first virtual second. With one query
        // arriving per virtual ms, exactly the first 1000 queries start
        // inside the window — and their first retry (one client timeout
        // later) lands outside it.
        let plan = FaultPlan::clean(5).with_default(FaultSpec {
            blackholes: vec![(0, 1_000)],
            ..FaultSpec::clean()
        });
        let cfg = LoadgenConfig {
            queries: 2_000,
            faults: Some(plan),
            arrivals: Some(ArrivalSchedule {
                start_ms: 0,
                interarrival_ms: 1,
            }),
            ..LoadgenConfig::tiny(7)
        };
        let a = run(&fleet, &cfg);
        assert_eq!(a.fault_counters.blackholed, 1_000);
        assert_eq!(a.timeouts, 1_000);
        assert_eq!(a.retries, 1_000);
        assert_eq!(a.unanswered, 0);
        assert_eq!(a.responses, cfg.queries);
        // Window membership is a pure function of the global query index,
        // so no worker count can shift which queries the outage hits.
        for threads in [1, 5] {
            let b = run(
                &fleet,
                &LoadgenConfig {
                    threads,
                    ..cfg.clone()
                },
            );
            assert_eq!(a.fault_counters, b.fault_counters);
            assert_eq!(a.timeouts, b.timeouts);
            assert_eq!(a.retries, b.retries);
            assert_eq!(a.unanswered, b.unanswered);
        }
    }

    #[test]
    fn corrupting_fault_mode_is_deterministic_per_partition() {
        use crate::faults::FaultSpec;
        let fleet = fleet();
        let spec = FaultSpec {
            drop_prob: 0.1,
            bitflip_prob: 0.05,
            garbage_prob: 0.02,
            ..FaultSpec::clean()
        };
        let cfg = LoadgenConfig {
            queries: 2_000,
            faults: Some(FaultPlan::clean(9).with_default(spec)),
            ..LoadgenConfig::tiny(7)
        };
        let a = run(&fleet, &cfg);
        let b = run(&fleet, &cfg);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.unanswered, b.unanswered);
        assert_eq!(a.fault_counters, b.fault_counters);
        assert_eq!(a.responses, b.responses);
        assert!(a.fault_counters.bitflips > 0);
        assert!(a.fault_counters.garbage > 0);
    }

    #[test]
    fn clean_plan_fault_mode_matches_direct_path_counts() {
        let fleet = fleet();
        let direct = LoadgenConfig {
            queries: 2_000,
            ..LoadgenConfig::tiny(7)
        };
        let wrapped = LoadgenConfig {
            faults: Some(FaultPlan::clean(1)),
            ..direct.clone()
        };
        let a = run(&fleet, &direct);
        let b = run(&fleet, &wrapped);
        // Same seeded query stream, zero faults: identical response
        // classification either way.
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.nxdomain, b.nxdomain);
        assert_eq!(a.referrals, b.referrals);
        assert_eq!(a.per_site, b.per_site);
        assert_eq!(b.timeouts, 0);
        assert_eq!(b.unanswered, 0);
        assert_eq!(b.fault_counters.total_faults(), 0);
        assert_eq!(b.fault_counters.clean, b.fault_counters.exchanges);
    }
}
