//! Adversarial traffic generator: seeded attack workloads interleaved
//! with benign load on the shared virtual-time axis.
//!
//! Four attack shapes, after what root operators actually absorb:
//!
//! * **Water torture** — random-subdomain NXDOMAIN floods from a botnet
//!   of spoofed sources, stressing the parametric NXDOMAIN template
//!   path (a fraction of qnames graft onto record-name suffixes to hit
//!   the template's collision guard);
//! * **Reflection** — amplification-shaped queries (apex ANY/DNSKEY
//!   with DO) carrying one victim's spoofed source address;
//! * **Priming flood** — RFC 8109 priming queries at volume;
//! * **Query storm** — one legitimate client gone hot, flooding its own
//!   catchment site with benign-shaped traffic.
//!
//! # Replay determinism
//!
//! Counters — including every per-query RRL verdict — replay
//! bit-identically across worker counts. Three rules make that true:
//!
//! 1. **Pure generation**: every query's bytes derive from
//!    `SimRng::new(seed).derive_ids(&[tag, tick, k])` — a function of
//!    the virtual arrival tick and intra-tick index, never of which
//!    worker runs it or of any evolving per-client stream.
//! 2. **Window-chunk ownership**: work is partitioned into chunks of
//!    whole RRL windows (chunk `c` covers ticks
//!    `[c·W, (c+1)·W)`, owned by worker `c mod threads`, processed in
//!    ascending tick order). Since RRL windows are globally aligned to
//!    the same boundaries, every (bucket, window) is touched by exactly
//!    one worker, in arrival order — so the limiter's shared counters
//!    see a canonical sequence regardless of thread count.
//! 3. **Pinned virtual time**: each tick's instant is
//!    `start_ms + tick · interarrival_ms` from the [`ArrivalSchedule`],
//!    so window membership is a pure function of the tick.
//!
//! Legitimate clients run the full stub behavior: a truncated (TC=1)
//! response — whether from the EDNS budget or an RRL slip — triggers a
//! TCP retry against the same engine, and TCP is never rate-limited.
//! In verify mode every passed UDP response is byte-compared against
//! the unlimited serve path ([`crate::Rootd::serve_udp_into`] ignores
//! RRL), so
//! "no client ever receives a wrong answer under attack" is machine
//! checked, not asserted by construction.

use crate::engine::ServeVerdict;
use crate::loadgen::{
    fill_query, ArrivalSchedule, LatencyHistogram, QueryMix, QueryTemplates, SiteFleet,
};
use crate::rrl::{BucketStat, ResponseClass, Rrl, RrlConfig, RrlCounters};
use netsim::rng::SimRng;
use netsim::types::AsId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Derivation tag for attack query streams (benign ticks reuse the
/// loadgen client tag `0x10ad`).
const ATTACK_TAG: u64 = 0x00a7_7ac4;

/// Base of the spoofed-source range water-torture bots draw from (well
/// above any topology AS number, so bot buckets never collide with real
/// clients).
pub const BOT_SRC_BASE: u64 = 0xb07_0000;

/// Default botnet width for scenario-projected floods.
pub const WATER_TORTURE_BOTNET: u32 = 32;

/// One attack workload shape. `intensity` is attack queries per benign
/// tick (so ×10 means tenfold the benign arrival rate while active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackShape {
    /// Random-subdomain NXDOMAIN flood from `botnet` spoofed sources
    /// spread deterministically across the letter's sites.
    WaterTorture { intensity: u32, botnet: u32 },
    /// Amplification-shaped apex queries spoofing `victim`'s source,
    /// aimed at the victim's own catchment site (where its real
    /// traffic also lands — the bucket collision is the attack).
    Reflection { victim: u32, intensity: u32 },
    /// Priming queries (`. NS` with DO) from a spoofed botnet.
    PrimingFlood { intensity: u32, botnet: u32 },
    /// Client `client` floods its own catchment site with benign-shaped
    /// queries from its real (unspoofed) address.
    QueryStorm { client: u32, intensity: u32 },
}

impl AttackShape {
    pub fn intensity(&self) -> u32 {
        match *self {
            AttackShape::WaterTorture { intensity, .. }
            | AttackShape::Reflection { intensity, .. }
            | AttackShape::PrimingFlood { intensity, .. }
            | AttackShape::QueryStorm { intensity, .. } => intensity,
        }
    }

    pub fn label(&self) -> String {
        match *self {
            AttackShape::WaterTorture { intensity, botnet } => {
                format!("flood×{intensity}(bots={botnet})")
            }
            AttackShape::Reflection { victim, intensity } => {
                format!("reflect×{intensity}(AS{victim})")
            }
            AttackShape::PrimingFlood { intensity, botnet } => {
                format!("priming×{intensity}(bots={botnet})")
            }
            AttackShape::QueryStorm { client, intensity } => {
                format!("storm×{intensity}(AS{client})")
            }
        }
    }
}

/// One attack active over a half-open virtual-time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackWindow {
    pub start_ms: u64,
    pub end_ms: u64,
    pub shape: AttackShape,
}

/// A schedule of attack windows on the virtual axis, plus the seed their
/// query content derives from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackPlan {
    pub seed: u64,
    pub windows: Vec<AttackWindow>,
}

impl AttackPlan {
    /// No attacks.
    pub fn quiet() -> AttackPlan {
        AttackPlan::default()
    }

    /// The shape active at virtual instant `t_ms` (first matching
    /// window wins).
    pub fn shape_at(&self, t_ms: u64) -> Option<AttackShape> {
        self.windows
            .iter()
            .find(|w| w.start_ms <= t_ms && t_ms < w.end_ms)
            .map(|w| w.shape)
    }

    /// Epoch boundaries the plan cuts into the run `[run_start,
    /// run_end)`: the run bounds plus every window edge inside them,
    /// sorted and deduplicated.
    pub fn boundaries(&self, run_start: u64, run_end: u64) -> Vec<u64> {
        let mut cuts = vec![run_start, run_end];
        for w in &self.windows {
            for edge in [w.start_ms, w.end_ms] {
                if run_start < edge && edge < run_end {
                    cuts.push(edge);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    }
}

/// Parameters of one adversarial run.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Virtual length of the run: one benign query per
    /// `arrivals.interarrival_ms` for this long.
    pub duration_ms: u64,
    pub threads: usize,
    /// Seed for the benign streams (attack streams mix in `plan.seed`).
    pub seed: u64,
    pub mix: QueryMix,
    pub plan: AttackPlan,
    /// Rate-limiter config installed on every site engine for the run
    /// (`None` = undefended).
    pub rrl: Option<RrlConfig>,
    /// Benign arrival schedule. `start_ms` must be window-aligned and
    /// `interarrival_ms` must divide the RRL window, so worker chunks
    /// align with refill windows (see the module docs).
    pub arrivals: ArrivalSchedule,
    /// Byte-compare every passed response against the unlimited serve
    /// path and structurally check every slip/TCP recovery.
    pub verify: bool,
}

impl AttackConfig {
    /// A smoke-test-sized run: `duration_ms` virtual ms at one benign
    /// query per ms, two workers, verification on.
    pub fn tiny(seed: u64, duration_ms: u64, plan: AttackPlan) -> AttackConfig {
        AttackConfig {
            duration_ms,
            threads: 2,
            seed,
            mix: QueryMix::broot(),
            plan,
            rrl: Some(RrlConfig::default()),
            arrivals: ArrivalSchedule {
                start_ms: 0,
                interarrival_ms: 1,
            },
            verify: true,
        }
    }
}

/// Traffic totals for one epoch (a maximal span with a constant active
/// attack shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTraffic {
    pub label: String,
    pub start_ms: u64,
    pub end_ms: u64,
    /// Benign queries sent.
    pub legit_sent: u64,
    /// Benign queries that ended with a full correct answer (over UDP,
    /// or over TCP after any truncation).
    pub legit_served: u64,
    /// Benign queries that hit the slip cadence (got a TC=1 stub).
    pub legit_slipped: u64,
    /// Slipped benign queries recovered in full over TCP.
    pub legit_slip_recovered: u64,
    /// Benign queries that got nothing (rate-limit drop).
    pub legit_dropped: u64,
    pub legit_p50_ns: u64,
    pub legit_p99_ns: u64,
    pub attack_sent: u64,
    pub attack_passed: u64,
    pub attack_slipped: u64,
    pub attack_dropped: u64,
}

impl EpochTraffic {
    /// Fraction of benign queries that ended with a full answer.
    pub fn served_fraction(&self) -> f64 {
        if self.legit_sent == 0 {
            1.0
        } else {
            self.legit_served as f64 / self.legit_sent as f64
        }
    }
}

/// What one adversarial run produced.
#[derive(Debug, Clone)]
pub struct AttackReport {
    pub duration_ms: u64,
    pub threads: usize,
    pub epochs: Vec<EpochTraffic>,
    /// Limiter totals merged across every site engine.
    pub rrl: RrlCounters,
    /// Per-(source-prefix, class) totals merged across engines, hottest
    /// first.
    pub buckets: Vec<BucketStat>,
    /// Verification failures (byte mismatches vs the unlimited path,
    /// malformed slips, failed TCP recoveries). Zero or the run is
    /// wrong.
    pub verify_mismatches: u64,
    pub elapsed: Duration,
}

impl AttackReport {
    /// Everything deterministic, one line per epoch plus the limiter
    /// totals — two runs with equal fingerprints replayed identically,
    /// verdict-for-verdict.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.epochs {
            let _ = write!(
                out,
                "{}[{},{}) legit={}/{} slip={}/{} drop={} attack={}/{}/{};",
                e.label,
                e.start_ms,
                e.end_ms,
                e.legit_served,
                e.legit_sent,
                e.legit_slip_recovered,
                e.legit_slipped,
                e.legit_dropped,
                e.attack_passed,
                e.attack_slipped,
                e.attack_dropped,
            );
        }
        let bucket_sum: u64 = self
            .buckets
            .iter()
            .map(|b| {
                b.arrivals
                    ^ b.passed.rotate_left(16)
                    ^ b.slipped.rotate_left(32)
                    ^ b.dropped.rotate_left(48)
            })
            .fold(0, u64::wrapping_add);
        let _ = write!(
            out,
            " rrl[{}] buckets={}#{:016x} mismatches={}",
            self.rrl.render(),
            self.buckets.len(),
            bucket_sum,
            self.verify_mismatches,
        );
        out
    }

    /// Human-readable per-epoch table plus limiter and bucket summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>10} {:>8} {:>7} {:>7} {:>10} {:>12}",
            "epoch", "window(ms)", "legit", "served%", "slip", "drop", "p99(ns)", "attack p/s/d"
        );
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "{:<24} {:>5}..{:<6} {:>10} {:>7.2}% {:>7} {:>7} {:>10} {:>4}/{}/{}",
                e.label,
                e.start_ms,
                e.end_ms,
                e.legit_sent,
                e.served_fraction() * 100.0,
                e.legit_slipped,
                e.legit_dropped,
                e.legit_p99_ns,
                e.attack_passed,
                e.attack_slipped,
                e.attack_dropped,
            );
        }
        let _ = writeln!(out, "rrl: {}", self.rrl.render());
        for b in self.buckets.iter().take(8) {
            let _ = writeln!(
                out,
                "  bucket src={:#x} class={:<8} arrivals={} passed={} slipped={} dropped={}",
                b.prefix,
                b.class.label(),
                b.arrivals,
                b.passed,
                b.slipped,
                b.dropped,
            );
        }
        if self.buckets.len() > 8 {
            let _ = writeln!(out, "  … {} more buckets", self.buckets.len() - 8);
        }
        out
    }
}

/// Per-worker, per-epoch tallies.
struct EpochAgg {
    legit_sent: u64,
    legit_served: u64,
    legit_slipped: u64,
    legit_slip_recovered: u64,
    legit_dropped: u64,
    attack_sent: u64,
    attack_passed: u64,
    attack_slipped: u64,
    attack_dropped: u64,
    hist: LatencyHistogram,
}

impl EpochAgg {
    fn new() -> EpochAgg {
        EpochAgg {
            legit_sent: 0,
            legit_served: 0,
            legit_slipped: 0,
            legit_slip_recovered: 0,
            legit_dropped: 0,
            attack_sent: 0,
            attack_passed: 0,
            attack_slipped: 0,
            attack_dropped: 0,
            hist: LatencyHistogram::new(),
        }
    }
}

/// Scratch buffers and verification state one worker carries.
struct Worker<'a> {
    fleet: &'a SiteFleet,
    cfg: &'a AttackConfig,
    templates: &'a QueryTemplates,
    site_ids: &'a [u32],
    wire: Vec<u8>,
    resp: Vec<u8>,
    oracle: Vec<u8>,
    epochs: Vec<EpochAgg>,
    mismatches: u64,
}

impl Worker<'_> {
    /// Serve one benign tick: the round-robin client sends one mixed
    /// query pinned to `t_ms`, with full TC→TCP stub behavior.
    fn benign_tick(&mut self, tick: u64, t_ms: u64, epoch: usize) {
        let client = self.fleet.clients[(tick as usize) % self.fleet.clients.len()];
        let engine = self.fleet.engine_for(client);
        let mut rng = SimRng::new(self.cfg.seed).derive_ids(&[0x10ad, tick]);
        fill_query(&self.cfg.mix, self.templates, &mut rng, &mut self.wire);
        let agg = &mut self.epochs[epoch];
        agg.legit_sent += 1;
        let t0 = Instant::now();
        let verdict = engine.serve_udp_from(client.0 as u64, t_ms, &self.wire, &mut self.resp);
        match verdict {
            ServeVerdict::Answered(outcome) => {
                if self.cfg.verify {
                    let twin = engine.serve_udp_into(&self.wire, &mut self.oracle);
                    if twin != outcome || self.oracle != self.resp {
                        self.mismatches += 1;
                    }
                }
                let truncated = self.resp.len() >= 12 && self.resp[2] & 0x02 != 0;
                if truncated {
                    // Ordinary EDNS-budget truncation: retry over TCP
                    // like any real stub.
                    let frames = engine.serve_tcp(&self.wire);
                    if frames.is_empty() {
                        self.epochs[epoch].legit_dropped += 1;
                    } else {
                        self.epochs[epoch].legit_served += 1;
                    }
                } else {
                    self.epochs[epoch].legit_served += 1;
                }
            }
            ServeVerdict::Slipped => {
                if self.cfg.verify && !slip_is_wellformed(&self.wire, &self.resp) {
                    self.mismatches += 1;
                }
                agg.legit_slipped += 1;
                // The slip's whole purpose: the TC bit drives the client
                // to TCP, which RRL never touches.
                let frames = engine.serve_tcp(&self.wire);
                let agg = &mut self.epochs[epoch];
                match frames.first() {
                    Some(full)
                        if full.len() >= 12
                            && full[0..2] == self.wire[0..2]
                            && full[2] & 0x02 == 0 =>
                    {
                        agg.legit_slip_recovered += 1;
                        agg.legit_served += 1;
                    }
                    _ => {
                        agg.legit_dropped += 1;
                        if self.cfg.verify {
                            self.mismatches += 1;
                        }
                    }
                }
            }
            ServeVerdict::Limited | ServeVerdict::Dropped => {
                agg.legit_dropped += 1;
            }
        }
        self.epochs[epoch]
            .hist
            .record(t0.elapsed().as_nanos() as u64);
    }

    /// Fire one attack query (`k`-th of its tick) for `shape`.
    fn attack_query(&mut self, shape: AttackShape, tick: u64, k: u64, t_ms: u64, epoch: usize) {
        let mut rng =
            SimRng::new(self.cfg.seed ^ self.cfg.plan_seed()).derive_ids(&[ATTACK_TAG, tick, k]);
        let (src, engine) = match shape {
            AttackShape::WaterTorture { botnet, .. } => {
                let bot = rng.next_range(botnet.max(1) as usize) as u64;
                fill_water_torture(&mut rng, &mut self.wire);
                let site = self.site_ids[(bot as usize) % self.site_ids.len()];
                (BOT_SRC_BASE + bot, &self.fleet.engines[&site])
            }
            AttackShape::Reflection { victim, .. } => {
                fill_reflection(&mut rng, &mut self.wire);
                (victim as u64, self.fleet.engine_for(AsId(victim)))
            }
            AttackShape::PrimingFlood { botnet, .. } => {
                let bot = rng.next_range(botnet.max(1) as usize) as u64;
                fill_priming(&mut rng, &mut self.wire);
                let site = self.site_ids[(bot as usize) % self.site_ids.len()];
                (BOT_SRC_BASE + bot, &self.fleet.engines[&site])
            }
            AttackShape::QueryStorm { client, .. } => {
                fill_query(&self.cfg.mix, self.templates, &mut rng, &mut self.wire);
                (client as u64, self.fleet.engine_for(AsId(client)))
            }
        };
        let verdict = engine.serve_udp_from(src, t_ms, &self.wire, &mut self.resp);
        let agg = &mut self.epochs[epoch];
        agg.attack_sent += 1;
        match verdict {
            ServeVerdict::Answered(_) => agg.attack_passed += 1,
            ServeVerdict::Slipped => agg.attack_slipped += 1,
            ServeVerdict::Limited | ServeVerdict::Dropped => agg.attack_dropped += 1,
        }
    }
}

impl AttackConfig {
    fn plan_seed(&self) -> u64 {
        self.plan.seed
    }
}

/// A slipped response must be a record-free truncated echo of our query
/// — anything else would hand a validating client unverifiable data.
fn slip_is_wellformed(query: &[u8], slip: &[u8]) -> bool {
    slip.len() >= 12
        && slip[0..2] == query[0..2]
        && slip[2] & 0x80 != 0
        && slip[2] & 0x02 != 0
        && slip[4..6] == [0, 1]
        && slip[6..12] == [0, 0, 0, 0, 0, 0]
}

/// Water-torture qname: `wt` + 12 random hex digits in one label; a
/// quarter of them graft the label under a real record-name suffix
/// (`root-servers.net`), forcing the parametric NXDOMAIN template's
/// collision guard onto the slow path.
fn fill_water_torture(rng: &mut SimRng, out: &mut Vec<u8>) {
    let id = (rng.next_u64() & 0xffff) as u16;
    out.clear();
    out.extend_from_slice(&[(id >> 8) as u8, id as u8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
    let bits = rng.next_u64() & 0xffff_ffff_ffff;
    out.push(14);
    out.extend_from_slice(b"wt");
    for shift in (0..12u32).rev() {
        out.push(b"0123456789abcdef"[((bits >> (shift * 4)) & 0xf) as usize]);
    }
    if rng.chance(0.25) {
        out.push(12);
        out.extend_from_slice(b"root-servers");
        out.push(3);
        out.extend_from_slice(b"net");
    }
    out.push(0);
    out.extend_from_slice(&dns_wire::RrType::A.to_u16().to_be_bytes());
    out.extend_from_slice(&[0, 1]);
    if rng.chance(0.5) {
        push_do_opt(out);
    }
}

/// Reflection bait: apex ANY or DNSKEY with DO at 4096 — the largest
/// signed responses the zone can emit per question byte.
fn fill_reflection(rng: &mut SimRng, out: &mut Vec<u8>) {
    let id = (rng.next_u64() & 0xffff) as u16;
    let qtype = if rng.chance(0.5) {
        dns_wire::RrType::Any
    } else {
        dns_wire::RrType::Dnskey
    };
    out.clear();
    out.extend_from_slice(&[(id >> 8) as u8, id as u8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
    out.push(0); // apex
    out.extend_from_slice(&qtype.to_u16().to_be_bytes());
    out.extend_from_slice(&[0, 1]);
    push_do_opt(out);
}

/// A priming query: `. NS` with DO.
fn fill_priming(rng: &mut SimRng, out: &mut Vec<u8>) {
    let id = (rng.next_u64() & 0xffff) as u16;
    out.clear();
    out.extend_from_slice(&[(id >> 8) as u8, id as u8, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]);
    out.push(0);
    out.extend_from_slice(&dns_wire::RrType::Ns.to_u16().to_be_bytes());
    out.extend_from_slice(&[0, 1]);
    push_do_opt(out);
}

/// The canonical DO OPT the loadgen templates append (payload 4096).
fn push_do_opt(out: &mut Vec<u8>) {
    out[11] = 1;
    out.extend_from_slice(&[0, 0, 41, 0x10, 0x00, 0, 0, 0x80, 0, 0, 0]);
}

/// Run the adversarial generator against `fleet`. Installs `cfg.rrl` on
/// every site engine for the duration and removes it afterwards, so the
/// fleet comes back in its pre-run (unlimited) configuration.
pub fn run(fleet: &SiteFleet, cfg: &AttackConfig) -> AttackReport {
    let threads = cfg.threads.max(1);
    let inter = cfg.arrivals.interarrival_ms.max(1);
    let window_ms = cfg
        .rrl
        .as_ref()
        .map(|r| r.window_ms.max(1))
        .unwrap_or(1_000);
    // Chunk/window alignment is what makes per-verdict replay exact —
    // refuse configurations that break it rather than silently drifting.
    assert!(
        window_ms.is_multiple_of(inter) && cfg.arrivals.start_ms.is_multiple_of(window_ms),
        "arrivals must align with the RRL window (window {window_ms} ms, \
         interarrival {inter} ms, start {} ms)",
        cfg.arrivals.start_ms
    );
    let ticks_per_chunk = (window_ms / inter) as usize;
    let nticks = (cfg.duration_ms / inter) as usize;
    let nchunks = nticks.div_ceil(ticks_per_chunk);
    let run_start = cfg.arrivals.start_ms;
    let run_end = run_start + cfg.duration_ms;
    let bounds = cfg.plan.boundaries(run_start, run_end);
    let nepochs = bounds.len().saturating_sub(1).max(1);
    let templates = QueryTemplates::build(&fleet.tlds);
    let templates = &templates;
    let site_ids = fleet.site_ids();
    let site_ids = &site_ids;
    let bounds_ref = &bounds;

    fleet.set_rrl(cfg.rrl.clone());
    let rrls: Vec<Arc<Rrl>> = site_ids
        .iter()
        .filter_map(|s| fleet.engines[s].rrl())
        .collect();

    let started = Instant::now();
    let workers: Vec<(Vec<EpochAgg>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            handles.push(scope.spawn(move || {
                let mut w = Worker {
                    fleet,
                    cfg,
                    templates,
                    site_ids,
                    wire: Vec::with_capacity(64),
                    resp: Vec::with_capacity(4096),
                    oracle: Vec::with_capacity(4096),
                    epochs: (0..nepochs).map(|_| EpochAgg::new()).collect(),
                    mismatches: 0,
                };
                for chunk in (worker_id..nchunks).step_by(threads) {
                    let from = chunk * ticks_per_chunk;
                    let to = ((chunk + 1) * ticks_per_chunk).min(nticks);
                    for tick in from..to {
                        let t_ms = run_start + tick as u64 * inter;
                        let epoch = bounds_ref[1..]
                            .iter()
                            .position(|&b| t_ms < b)
                            .unwrap_or(nepochs - 1);
                        w.benign_tick(tick as u64, t_ms, epoch);
                        if let Some(shape) = cfg.plan.shape_at(t_ms) {
                            for k in 0..shape.intensity() as u64 {
                                w.attack_query(shape, tick as u64, k, t_ms, epoch);
                            }
                        }
                    }
                }
                (w.epochs, w.mismatches)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // Merge per-worker epoch tallies.
    let mut epochs = Vec::with_capacity(nepochs);
    for e in 0..nepochs {
        let mut agg = EpochAgg::new();
        for (worker_epochs, _) in &workers {
            let w = &worker_epochs[e];
            agg.legit_sent += w.legit_sent;
            agg.legit_served += w.legit_served;
            agg.legit_slipped += w.legit_slipped;
            agg.legit_slip_recovered += w.legit_slip_recovered;
            agg.legit_dropped += w.legit_dropped;
            agg.attack_sent += w.attack_sent;
            agg.attack_passed += w.attack_passed;
            agg.attack_slipped += w.attack_slipped;
            agg.attack_dropped += w.attack_dropped;
            agg.hist.merge(&w.hist);
        }
        let (start_ms, end_ms) = (bounds[e], bounds[e + 1]);
        let label = cfg
            .plan
            .shape_at(start_ms)
            .map(|s| s.label())
            .unwrap_or_else(|| "baseline".to_string());
        epochs.push(EpochTraffic {
            label,
            start_ms,
            end_ms,
            legit_sent: agg.legit_sent,
            legit_served: agg.legit_served,
            legit_slipped: agg.legit_slipped,
            legit_slip_recovered: agg.legit_slip_recovered,
            legit_dropped: agg.legit_dropped,
            legit_p50_ns: agg.hist.quantile(0.50),
            legit_p99_ns: agg.hist.quantile(0.99),
            attack_sent: agg.attack_sent,
            attack_passed: agg.attack_passed,
            attack_slipped: agg.attack_slipped,
            attack_dropped: agg.attack_dropped,
        });
    }

    // Merge limiter counters and bucket stats across engines; bucket
    // keys never collide across engines (each source's traffic lands on
    // one site), but re-aggregate anyway for robustness.
    let mut rrl = RrlCounters::default();
    let mut per_bucket: HashMap<(u64, ResponseClass), BucketStat> = HashMap::new();
    for r in &rrls {
        rrl.merge(&r.counters());
        for b in r.bucket_stats() {
            let agg = per_bucket.entry((b.prefix, b.class)).or_insert(BucketStat {
                arrivals: 0,
                passed: 0,
                slipped: 0,
                dropped: 0,
                ..b
            });
            agg.arrivals += b.arrivals;
            agg.passed += b.passed;
            agg.slipped += b.slipped;
            agg.dropped += b.dropped;
        }
    }
    let mut buckets: Vec<BucketStat> = per_bucket.into_values().collect();
    buckets.sort_by(|a, b| {
        b.arrivals
            .cmp(&a.arrivals)
            .then(a.prefix.cmp(&b.prefix))
            .then(a.class.cmp(&b.class))
    });
    fleet.set_rrl(None);

    let verify_mismatches = workers.iter().map(|(_, m)| m).sum();
    AttackReport {
        duration_ms: cfg.duration_ms,
        threads,
        epochs,
        rrl,
        buckets,
        verify_mismatches,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use netsim::topology::{Topology, TopologyConfig};
    use rss::catalog::{RootCatalog, WorldConfig};
    use rss::RootLetter;

    fn fleet() -> SiteFleet {
        let mut topology = Topology::generate(&TopologyConfig {
            tier2_per_region: 4,
            stubs_per_region: [4, 8, 16, 12, 4, 6],
            ..Default::default()
        });
        let catalog = RootCatalog::build(
            &mut topology,
            &WorldConfig {
                site_scale: 0.05,
                ..Default::default()
            },
        );
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 12,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(3),
        );
        SiteFleet::build(&topology, &catalog, RootLetter::B, Arc::new(zone))
    }

    fn flood_plan() -> AttackPlan {
        AttackPlan {
            seed: 0xf100d,
            windows: vec![AttackWindow {
                start_ms: 1_000,
                end_ms: 3_000,
                shape: AttackShape::WaterTorture {
                    intensity: 10,
                    botnet: WATER_TORTURE_BOTNET,
                },
            }],
        }
    }

    #[test]
    fn plan_slices_the_run_into_epochs() {
        let plan = flood_plan();
        assert_eq!(plan.boundaries(0, 4_000), vec![0, 1_000, 3_000, 4_000]);
        assert_eq!(plan.shape_at(999), None);
        assert!(plan.shape_at(1_000).is_some());
        assert!(plan.shape_at(2_999).is_some());
        assert_eq!(plan.shape_at(3_000), None);
        // Windows outside the run are clipped away.
        assert_eq!(plan.boundaries(3_500, 4_000), vec![3_500, 4_000]);
        assert_eq!(AttackPlan::quiet().boundaries(0, 100), vec![0, 100]);
    }

    #[test]
    fn rrl_holds_legit_service_through_a_water_torture_flood() {
        let fleet = fleet();
        let report = run(&fleet, &AttackConfig::tiny(7, 4_000, flood_plan()));
        assert_eq!(report.verify_mismatches, 0);
        assert_eq!(report.epochs.len(), 3);
        let flood = &report.epochs[1];
        assert!(flood.attack_sent >= 10 * flood.legit_sent);
        // The limiter engages hard against the flood (with slip=2 the
        // limited majority splits between slips and drops)...
        assert!(flood.attack_dropped + flood.attack_slipped > flood.attack_sent / 2);
        assert!(flood.attack_dropped > flood.attack_sent / 4);
        assert!(report.rrl.dropped > 0 && report.rrl.slipped > 0);
        // ...while legit clients keep ≥99% full service.
        for e in &report.epochs {
            assert!(
                e.served_fraction() >= 0.99,
                "epoch {} served {:.4}",
                e.label,
                e.served_fraction()
            );
        }
        // Every slipped legit query recovered over TCP.
        for e in &report.epochs {
            assert_eq!(e.legit_slipped, e.legit_slip_recovered);
        }
        // Bot buckets show up hottest.
        assert!(report.buckets[0].prefix >= BOT_SRC_BASE);
        assert_eq!(report.buckets[0].class, ResponseClass::NxDomain);
        // The fleet is back to unlimited serving afterwards.
        assert!(fleet.engines.values().all(|e| e.rrl().is_none()));
    }

    #[test]
    fn fingerprints_are_identical_across_worker_counts() {
        let fleet = fleet();
        let mut plan = flood_plan();
        // Exercise every shape in one run.
        let victim = fleet.clients[0].0;
        plan.windows.push(AttackWindow {
            start_ms: 3_000,
            end_ms: 3_500,
            shape: AttackShape::Reflection {
                victim,
                intensity: 10,
            },
        });
        plan.windows.push(AttackWindow {
            start_ms: 3_500,
            end_ms: 4_000,
            shape: AttackShape::QueryStorm {
                client: victim,
                intensity: 20,
            },
        });
        let cfg = AttackConfig::tiny(7, 4_000, plan);
        let base = run(&fleet, &cfg);
        assert_eq!(base.verify_mismatches, 0);
        for threads in [1usize, 3, 5] {
            let other = run(
                &fleet,
                &AttackConfig {
                    threads,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "replay diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn undefended_run_answers_everything() {
        let fleet = fleet();
        let cfg = AttackConfig {
            rrl: None,
            ..AttackConfig::tiny(9, 2_000, flood_plan())
        };
        let report = run(&fleet, &cfg);
        assert_eq!(report.verify_mismatches, 0);
        assert_eq!(report.rrl, RrlCounters::default());
        assert!(report.buckets.is_empty());
        for e in &report.epochs {
            // No limiter: nothing slipped or dropped, everything served
            // (budget-TC retries recover over TCP).
            assert_eq!(e.legit_slipped, 0);
            assert_eq!(e.legit_dropped, 0);
            assert_eq!(e.legit_served, e.legit_sent);
            assert_eq!(e.attack_dropped, 0);
        }
    }

    #[test]
    fn reflection_spoofing_collides_with_the_victims_bucket() {
        let fleet = fleet();
        let victim = fleet.clients[0].0;
        let plan = AttackPlan {
            seed: 0x5afe,
            windows: vec![AttackWindow {
                start_ms: 1_000,
                end_ms: 2_000,
                shape: AttackShape::Reflection {
                    victim,
                    intensity: 20,
                },
            }],
        };
        let report = run(&fleet, &AttackConfig::tiny(11, 3_000, plan));
        assert_eq!(report.verify_mismatches, 0);
        let reflect = &report.epochs[1];
        // The amplification bait is hard-limited...
        assert!(reflect.attack_dropped > reflect.attack_passed);
        // ...and the victim's own answer-class bucket is the hot one.
        let hot = report
            .buckets
            .iter()
            .find(|b| b.prefix == victim as u64 && b.class == ResponseClass::Answer)
            .expect("victim bucket exists");
        assert!(hot.dropped > 0);
        // Overall legit service still holds (slips recover over TCP).
        for e in &report.epochs {
            assert!(e.served_fraction() >= 0.99, "{}", e.served_fraction());
        }
    }
}
