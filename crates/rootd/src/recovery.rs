//! Deterministic failure injection and the farm's recovery controller.
//!
//! A [`FailurePlan`] declares site-level faults on the shared virtual
//! clock: engine **crash** windows (the engine is gone until the recovery
//! controller restarts it), **stall** windows (the site answers, but a
//! stalled shard adds a fixed delay), per-site **blackholes** (the site's
//! network vanishes for the window, then returns on its own), and
//! **poisoned reloads** (a corrupted zone is pushed at a letter, which
//! the validated reload path must refuse). Plans are either authored
//! directly or projected from `scenario` events via
//! `scenario::failure_plan_on_clock`.
//!
//! [`run_control_plane`] plays a plan against a farm's site roster as a
//! discrete-event program on [`simclock::Scheduler`]: watchdog probes
//! feed each site's [`SiteHealth`] machine, Dead crashed sites get
//! restart attempts on a capped-exponential [`RecoveryPolicy`] backoff
//! (an attempt succeeds once the underlying crash window has passed —
//! restarting into a still-broken host fails and backs off further), and
//! every observation lands in per-letter [`HealthTimeline`]s plus
//! ground-truth outage/stall interval tables. The output
//! [`ControlPlane`] is **piecewise-constant data, not live state**: the
//! sharded data plane only reads it, which is what keeps a chaos run
//! bit-identical across 1..=8 shards — no shard ever observes a
//! different world than another at the same virtual instant.

use crate::health::{HealthConfig, HealthTimeline, ProbeOutcome, SiteHealth, SiteStatus};
use netsim::rng::SimRng;
use rss::RootLetter;
use simclock::Scheduler;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One kind of injected site-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The site's engine process dies: unreachable until the recovery
    /// controller restarts it *after* the window has passed.
    Crash,
    /// A stalled shard: the site still answers, `delay_ms` late.
    Stall {
        /// Added per-answer latency inside the window.
        delay_ms: u64,
    },
    /// The site's network is gone for the window, then heals on its own
    /// (no restart needed) — the anycast-site-outage shape.
    Blackhole,
}

impl FailureKind {
    fn id(self) -> u64 {
        match self {
            FailureKind::Crash => 0,
            FailureKind::Stall { .. } => 1,
            FailureKind::Blackhole => 2,
        }
    }
}

/// One scheduled fault: `kind` in force during `[start_ms, end_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureWindow {
    pub kind: FailureKind,
    pub start_ms: u64,
    pub end_ms: u64,
}

/// A corrupted-zone push scheduled at a letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonedReload {
    pub letter: RootLetter,
    /// Virtual instant the reload is attempted.
    pub at_ms: u64,
    /// Seed for the RRSIG bitflip that poisons the pushed copy.
    pub flip_seed: u64,
}

/// The full deterministic failure schedule of one chaos run.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// Master seed (restart-backoff jitter and any derived draws).
    pub seed: u64,
    windows: BTreeMap<(RootLetter, u32), Vec<FailureWindow>>,
    /// Corrupted-zone pushes, attempted in `at_ms` order.
    pub poisoned_reloads: Vec<PoisonedReload>,
}

impl FailurePlan {
    /// A plan that injects nothing — the healthy-twin baseline.
    pub fn none(seed: u64) -> FailurePlan {
        FailurePlan {
            seed,
            ..FailurePlan::default()
        }
    }

    /// Schedule `kind` at `letter`'s site `site_id` during
    /// `[start_ms, end_ms)`.
    pub fn add(
        &mut self,
        letter: RootLetter,
        site_id: u32,
        kind: FailureKind,
        window: (u64, u64),
    ) -> &mut Self {
        self.windows
            .entry((letter, site_id))
            .or_default()
            .push(FailureWindow {
                kind,
                start_ms: window.0,
                end_ms: window.1,
            });
        self
    }

    /// Schedule a poisoned-zone push at `letter`.
    pub fn add_poisoned_reload(&mut self, letter: RootLetter, at_ms: u64) -> &mut Self {
        let flip_seed = SimRng::new(self.seed)
            .derive_ids(&[0xbad0, letter.index() as u64, at_ms])
            .next_u64();
        self.poisoned_reloads.push(PoisonedReload {
            letter,
            at_ms,
            flip_seed,
        });
        self
    }

    /// The windows scheduled for one site (empty when none).
    pub fn windows_for(&self, letter: RootLetter, site_id: u32) -> &[FailureWindow] {
        self.windows
            .get(&(letter, site_id))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every scheduled window, `((letter, site_id), window)`, in key order.
    pub fn all_windows(&self) -> impl Iterator<Item = ((RootLetter, u32), &FailureWindow)> {
        self.windows
            .iter()
            .flat_map(|(&key, ws)| ws.iter().map(move |w| (key, w)))
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.poisoned_reloads.is_empty()
    }

    /// Number of distinct sites with at least one fault window.
    pub fn faulted_sites(&self) -> usize {
        self.windows.len()
    }

    /// The latest finite window end (0 when none) — what a caller sizes
    /// its horizon from.
    pub fn max_finite_end(&self) -> u64 {
        self.windows
            .values()
            .flatten()
            .map(|w| w.end_ms)
            .filter(|&e| e != u64::MAX)
            .max()
            .unwrap_or(0)
            .max(
                self.poisoned_reloads
                    .iter()
                    .map(|p| p.at_ms)
                    .max()
                    .unwrap_or(0),
            )
    }

    /// Mix every scheduled fault into a fingerprint accumulator — plans
    /// are part of a chaos report's replay identity.
    pub fn fold_fingerprint(&self, mut h: u64) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.seed);
        for ((letter, site), w) in self.all_windows() {
            mix(letter.index() as u64);
            mix(u64::from(site));
            mix(w.kind.id());
            if let FailureKind::Stall { delay_ms } = w.kind {
                mix(delay_ms);
            }
            mix(w.start_ms);
            mix(w.end_ms);
        }
        for p in &self.poisoned_reloads {
            mix(p.letter.index() as u64);
            mix(p.at_ms);
            mix(p.flip_seed);
        }
        h
    }
}

/// Restart discipline for crashed engines: capped exponential backoff
/// with deterministic jitter, the `localroot::refresh::RetryPolicy`
/// shape applied to engine restarts instead of upstream retries.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Delay before the first restart attempt (then doubling).
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// ± this fraction of deterministic jitter on each delay.
    pub jitter_frac: f64,
    /// Restart attempts before the controller gives up — the "backoff
    /// budget" a converging recovery must fit inside.
    pub max_attempts: u32,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            base_backoff_ms: 500,
            max_backoff_ms: 8_000,
            jitter_frac: 0.25,
            max_attempts: 8,
            seed: 0x4ec0_0001,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before restart `attempt` (1-based) of `site`, for the
    /// incident detected at `detected_ms`. Pure in its arguments:
    /// capped-exponential base with a seeded ± jitter, so restart
    /// schedules replay bit-identically.
    pub fn backoff_ms(&self, site: u64, detected_ms: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(20))
            .min(self.max_backoff_ms);
        let span = (exp as f64 * self.jitter_frac) as u64;
        if span == 0 {
            return exp;
        }
        let mut rng =
            SimRng::new(self.seed).derive_ids(&[0x4ec0, site, detected_ms, u64::from(attempt)]);
        exp - span / 2 + rng.next_range(span as usize + 1) as u64
    }

    /// Worst-case virtual time from detection to the last restart
    /// attempt — the budget "recovery converges within" is tested
    /// against.
    pub fn budget_ms(&self) -> u64 {
        (1..=self.max_attempts)
            .map(|a| {
                let exp = self
                    .base_backoff_ms
                    .saturating_mul(1u64 << (a - 1).min(20))
                    .min(self.max_backoff_ms);
                exp + (exp as f64 * self.jitter_frac) as u64
            })
            .sum()
    }
}

/// One crash incident's recovery record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryLog {
    pub letter: RootLetter,
    pub site_id: u32,
    /// When the engine actually went down.
    pub failed_at: u64,
    /// When the health machine declared it Dead.
    pub detected_at: u64,
    /// Restart attempts issued (failed + the successful one).
    pub attempts: u32,
    /// When a restart landed, `None` when the budget ran out first.
    pub recovered_at: Option<u64>,
}

impl RecoveryLog {
    /// Whether the engine came back within the backoff budget.
    pub fn converged(&self) -> bool {
        self.recovered_at.is_some()
    }
}

/// One letter's precomputed control-plane view: the health belief
/// (timeline) plus the ground truth (outage and stall intervals) the
/// data plane serves against.
#[derive(Debug, Clone)]
pub struct LetterControl {
    pub letter: RootLetter,
    /// The health machine's belief, per site slot.
    pub timeline: HealthTimeline,
    /// Ground-truth unavailability `[start, end)` per slot — crash
    /// windows extended to the restart instant, blackholes verbatim.
    outages: Vec<Vec<(u64, u64)>>,
    /// Ground-truth stall intervals `(start, end, delay_ms)` per slot.
    stalls: Vec<Vec<(u64, u64, u64)>>,
}

impl LetterControl {
    fn new(letter: RootLetter, slots: usize) -> LetterControl {
        LetterControl {
            letter,
            timeline: HealthTimeline::new(slots),
            outages: vec![Vec::new(); slots],
            stalls: vec![Vec::new(); slots],
        }
    }

    /// Whether `slot` is actually unreachable at `t` (ground truth, not
    /// belief — a dead engine eats queries whether or not the watchdog
    /// noticed yet).
    pub fn down_at(&self, slot: usize, t: u64) -> bool {
        self.outages[slot].iter().any(|&(s, e)| t >= s && t < e)
    }

    /// The stall delay in force at `slot` at `t`, if any.
    pub fn stall_delay_at(&self, slot: usize, t: u64) -> Option<u64> {
        self.stalls[slot]
            .iter()
            .find(|&&(s, e, _)| t >= s && t < e)
            .map(|&(_, _, d)| d)
    }

    /// Total ground-truth outage intervals recorded for this letter.
    pub fn outage_count(&self) -> usize {
        self.outages.iter().map(Vec::len).sum()
    }
}

/// Everything [`run_control_plane`] produced.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    /// Per letter, in roster order.
    pub letters: Vec<LetterControl>,
    /// Every crash incident, in detection order.
    pub recoveries: Vec<RecoveryLog>,
    /// Watchdog probes fired (only faulted sites are probed — a site
    /// with no scheduled fault cannot transition, so its probes are
    /// elided wholesale; that is what makes the healthy-plan control
    /// plane free).
    pub probes: u64,
}

impl ControlPlane {
    /// Whether every crash incident recovered within the backoff budget.
    pub fn all_converged(&self) -> bool {
        self.recoveries.iter().all(RecoveryLog::converged)
    }
}

/// Live per-site state while the discrete-event program runs.
#[derive(Debug, Default)]
struct SiteState {
    health: SiteHealth,
    /// Active blackhole windows (overlap-safe depth counter).
    blackhole_depth: u32,
    /// Crashed and not yet restarted; holds the underlying window end a
    /// restart must outlast.
    crash_until: Option<u64>,
    /// Active stall depth and the delay in force.
    stall_depth: u32,
    stall_delay: u64,
    /// Open ground-truth intervals being accumulated.
    down_since: Option<u64>,
    stall_since: Option<u64>,
    /// Detection instant of the current crash incident (backoff context).
    detected_at: Option<u64>,
    /// Index into `recoveries` for the current crash incident.
    log_idx: Option<usize>,
}

impl SiteState {
    fn is_down(&self) -> bool {
        self.blackhole_depth > 0 || self.crash_until.is_some()
    }
}

struct PlaneState {
    letters: Vec<LetterControl>,
    /// Flat site states; `base[li] + slot` indexes them.
    sites: Vec<SiteState>,
    base: Vec<usize>,
    recoveries: Vec<RecoveryLog>,
    probes: u64,
}

impl PlaneState {
    /// Close or open the ground-truth outage interval for a site after
    /// its availability flags changed.
    fn sync_down(&mut self, li: usize, slot: usize, t: u64) {
        let g = self.base[li] + slot;
        let down = self.sites[g].is_down();
        match (self.sites[g].down_since, down) {
            (None, true) => self.sites[g].down_since = Some(t),
            (Some(since), false) => {
                self.letters[li].outages[slot].push((since, t));
                self.sites[g].down_since = None;
            }
            _ => {}
        }
    }

    fn sync_stall(&mut self, li: usize, slot: usize, t: u64) {
        let g = self.base[li] + slot;
        let stalled = self.sites[g].stall_depth > 0;
        match (self.sites[g].stall_since, stalled) {
            (None, true) => self.sites[g].stall_since = Some(t),
            (Some(since), false) => {
                let delay = self.sites[g].stall_delay;
                self.letters[li].stalls[slot].push((since, t, delay));
                self.sites[g].stall_since = None;
            }
            _ => {}
        }
    }
}

/// Per-site event-key lanes: window ends fire before onsets, onsets
/// before restarts, restarts before probes at the same instant.
const LANE_END: u64 = 0;
const LANE_ONSET: u64 = 1;
const LANE_RESTART: u64 = 2;
const LANE_PROBE: u64 = 3;

fn lane_key(global: usize, lane: u64) -> u64 {
    (global as u64) * 4 + lane
}

/// Play `plan` against the site roster as a discrete-event program and
/// return the piecewise-constant control-plane view. `roster` lists each
/// letter's site ids in engine-slot order (what `Farm::letters` exposes);
/// `horizon_ms` bounds the watchdog (size it past the plan's last window
/// plus the recovery budget).
pub fn run_control_plane(
    roster: &[(RootLetter, Vec<u32>)],
    plan: &FailurePlan,
    health: &HealthConfig,
    policy: &RecoveryPolicy,
    horizon_ms: u64,
) -> ControlPlane {
    let mut base = Vec::with_capacity(roster.len());
    let mut n = 0usize;
    for (_, sites) in roster {
        base.push(n);
        n += sites.len();
    }
    let state = Rc::new(RefCell::new(PlaneState {
        letters: roster
            .iter()
            .map(|(l, sites)| LetterControl::new(*l, sites.len()))
            .collect(),
        sites: (0..n).map(|_| SiteState::default()).collect(),
        base,
        recoveries: Vec::new(),
        probes: 0,
    }));

    let mut sched = Scheduler::new(plan.seed);
    let health = Rc::new(health.clone());
    let policy = Rc::new(policy.clone());

    for (li, (letter, sites)) in roster.iter().enumerate() {
        for (slot, &site_id) in sites.iter().enumerate() {
            let windows = plan.windows_for(*letter, site_id);
            if windows.is_empty() {
                continue; // Never-faulted sites cannot transition: skip.
            }
            let global = state.borrow().base[li] + slot;
            for w in windows {
                let kind = w.kind;
                let (onset_state, end_state) = (Rc::clone(&state), Rc::clone(&state));
                let (start_ms, end_ms) = (w.start_ms, w.end_ms);
                sched.schedule_keyed(start_ms, lane_key(global, LANE_ONSET), "onset", {
                    move |_s| {
                        let mut st = onset_state.borrow_mut();
                        match kind {
                            FailureKind::Crash => {
                                let until = st.sites[global].crash_until.unwrap_or(0);
                                st.sites[global].crash_until = Some(until.max(end_ms));
                            }
                            FailureKind::Blackhole => st.sites[global].blackhole_depth += 1,
                            FailureKind::Stall { delay_ms } => {
                                st.sites[global].stall_depth += 1;
                                st.sites[global].stall_delay =
                                    st.sites[global].stall_delay.max(delay_ms);
                            }
                        }
                        st.sync_down(li, slot, start_ms);
                        st.sync_stall(li, slot, start_ms);
                    }
                });
                if end_ms == u64::MAX {
                    continue;
                }
                sched.schedule_keyed(end_ms, lane_key(global, LANE_END), "window-end", {
                    move |_s| {
                        let mut st = end_state.borrow_mut();
                        match kind {
                            // A crash needs a restart: the end of the
                            // underlying window alone heals nothing.
                            FailureKind::Crash => {}
                            FailureKind::Blackhole => {
                                st.sites[global].blackhole_depth =
                                    st.sites[global].blackhole_depth.saturating_sub(1);
                            }
                            FailureKind::Stall { .. } => {
                                st.sites[global].stall_depth =
                                    st.sites[global].stall_depth.saturating_sub(1);
                            }
                        }
                        st.sync_down(li, slot, end_ms);
                        st.sync_stall(li, slot, end_ms);
                    }
                });
            }
            // The watchdog: one probe per interval for the whole horizon.
            let mut t = health.probe_interval_ms;
            while t <= horizon_ms {
                let probe_state = Rc::clone(&state);
                let (hc, pc) = (Rc::clone(&health), Rc::clone(&policy));
                sched.schedule_keyed(t, lane_key(global, LANE_PROBE), "probe", move |s| {
                    probe(s, &probe_state, &hc, &pc, li, slot, global, site_id, t);
                });
                t += health.probe_interval_ms;
            }
        }
    }

    sched.run_until_idle();

    // Close intervals still open at the horizon: a site that never came
    // back is down for the rest of time.
    {
        let mut st = state.borrow_mut();
        for li in 0..st.letters.len() {
            for slot in 0..st.letters[li].outages.len() {
                let g = st.base[li] + slot;
                if let Some(since) = st.sites[g].down_since.take() {
                    st.letters[li].outages[slot].push((since, u64::MAX));
                }
                if let Some(since) = st.sites[g].stall_since.take() {
                    let delay = st.sites[g].stall_delay;
                    st.letters[li].stalls[slot].push((since, u64::MAX, delay));
                }
            }
        }
    }

    let state = Rc::try_unwrap(state)
        .unwrap_or_else(|_| unreachable!("scheduler drained, no clones remain"))
        .into_inner();
    ControlPlane {
        letters: state.letters,
        recoveries: state.recoveries,
        probes: state.probes,
    }
}

/// One watchdog probe: observe, feed the state machine, record any
/// transition, and — on a freshly detected crash — start the restart
/// ladder.
#[allow(clippy::too_many_arguments)]
fn probe(
    sched: &mut Scheduler,
    state: &Rc<RefCell<PlaneState>>,
    health: &Rc<HealthConfig>,
    policy: &Rc<RecoveryPolicy>,
    li: usize,
    slot: usize,
    global: usize,
    site_id: u32,
    t: u64,
) {
    let mut st = state.borrow_mut();
    st.probes += 1;
    let outcome = {
        let site = &st.sites[global];
        if site.is_down() {
            ProbeOutcome::Down
        } else if site.stall_depth > 0 && site.stall_delay > health.slo_ms {
            ProbeOutcome::Slow
        } else {
            ProbeOutcome::Ok
        }
    };
    let transition = st.sites[global].health.on_probe(outcome, health);
    let Some(next) = transition else { return };
    st.letters[li].timeline.record(slot, t, next);
    if next != SiteStatus::Dead || st.sites[global].crash_until.is_none() {
        return;
    }
    // A crashed engine was just declared Dead: open the incident log and
    // schedule restart attempt 1 on the backoff ladder.
    let letter = st.letters[li].letter;
    let failed_at = st.sites[global].down_since.unwrap_or(t);
    let log_idx = st.recoveries.len();
    st.recoveries.push(RecoveryLog {
        letter,
        site_id,
        failed_at,
        detected_at: t,
        attempts: 0,
        recovered_at: None,
    });
    st.sites[global].detected_at = Some(t);
    st.sites[global].log_idx = Some(log_idx);
    drop(st);
    schedule_restart(sched, state, policy, li, slot, global, site_id, t, 1);
}

/// Queue restart attempt `attempt` for a crashed site.
#[allow(clippy::too_many_arguments)]
fn schedule_restart(
    sched: &mut Scheduler,
    state: &Rc<RefCell<PlaneState>>,
    policy: &Rc<RecoveryPolicy>,
    li: usize,
    slot: usize,
    global: usize,
    site_id: u32,
    detected_at: u64,
    attempt: u32,
) {
    let at = detected_at
        + (1..=attempt)
            .map(|a| policy.backoff_ms(u64::from(site_id), detected_at, a))
            .sum::<u64>();
    let state = Rc::clone(state);
    let policy_again = Rc::clone(policy);
    sched.schedule_keyed(at, lane_key(global, LANE_RESTART), "restart", move |s| {
        let mut st = state.borrow_mut();
        let Some(log_idx) = st.sites[global].log_idx else {
            return;
        };
        st.recoveries[log_idx].attempts = attempt;
        let healed = st.sites[global]
            .crash_until
            .is_some_and(|until| at >= until);
        if healed {
            // The restart lands: the underlying fault has passed, the
            // engine is back. The watchdog takes it from here
            // (Dead → Probation → Healthy on the next probes).
            st.sites[global].crash_until = None;
            st.sites[global].detected_at = None;
            st.sites[global].log_idx = None;
            st.recoveries[log_idx].recovered_at = Some(at);
            st.sync_down(li, slot, at);
            return;
        }
        if attempt < policy_again.max_attempts {
            drop(st);
            schedule_restart(
                s,
                &state,
                &policy_again,
                li,
                slot,
                global,
                site_id,
                detected_at,
                attempt + 1,
            );
        }
        // Budget exhausted: the incident log keeps `recovered_at: None`
        // and the site stays down — the report surfaces it.
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster() -> Vec<(RootLetter, Vec<u32>)> {
        vec![
            (RootLetter::A, vec![10, 11, 12]),
            (RootLetter::B, vec![20, 21]),
        ]
    }

    fn run(plan: &FailurePlan) -> ControlPlane {
        run_control_plane(
            &roster(),
            plan,
            &HealthConfig::default(),
            &RecoveryPolicy::default(),
            60_000,
        )
    }

    #[test]
    fn empty_plan_probes_nothing_and_transitions_nothing() {
        let cp = run(&FailurePlan::none(1));
        assert_eq!(cp.probes, 0);
        assert!(cp.recoveries.is_empty());
        for lc in &cp.letters {
            assert!(lc.timeline.events().is_empty());
            assert_eq!(lc.outage_count(), 0);
        }
    }

    #[test]
    fn crash_is_detected_restarted_and_rejoins_via_probation() {
        let mut plan = FailurePlan::none(7);
        plan.add(RootLetter::A, 11, FailureKind::Crash, (2_000, 6_000));
        let cp = run(&plan);
        assert_eq!(cp.recoveries.len(), 1);
        let log = cp.recoveries[0];
        assert_eq!((log.letter, log.site_id), (RootLetter::A, 11));
        assert_eq!(log.failed_at, 2_000);
        // Detection: dead_after hard failures on the probe cadence.
        assert!(
            log.detected_at >= 2_000 && log.detected_at <= 3_000,
            "{log:?}"
        );
        assert!(log.converged(), "{log:?}");
        let recovered = log.recovered_at.unwrap();
        // Restarts into the still-broken window fail and back off; the
        // landing attempt is after the window end, within the budget.
        assert!(recovered >= 6_000);
        assert!(
            recovered <= log.detected_at + RecoveryPolicy::default().budget_ms(),
            "{log:?}"
        );
        assert!(
            log.attempts >= 2,
            "early restarts must have failed: {log:?}"
        );
        // Ground truth: exactly one outage, crash onset to restart.
        let lc = &cp.letters[0];
        assert_eq!(lc.outages[1], vec![(2_000, recovered)]);
        assert!(lc.down_at(1, 2_000) && lc.down_at(1, recovered - 1));
        assert!(!lc.down_at(1, 1_999) && !lc.down_at(1, recovered));
        // Belief: Dead at detection, Probation then Healthy after.
        assert_eq!(lc.timeline.status_at(1, log.detected_at), SiteStatus::Dead);
        let end_status = lc.timeline.status_at(1, 59_999);
        assert_eq!(end_status, SiteStatus::Healthy);
        // Untouched sites never transitioned.
        assert!(cp.letters[1].timeline.events().is_empty());
    }

    #[test]
    fn blackhole_heals_without_restarts() {
        let mut plan = FailurePlan::none(3);
        plan.add(RootLetter::B, 21, FailureKind::Blackhole, (1_000, 4_000));
        let cp = run(&plan);
        assert!(cp.recoveries.is_empty(), "no crash, no restart ladder");
        let lc = &cp.letters[1];
        assert_eq!(lc.outages[1], vec![(1_000, 4_000)]);
        assert_eq!(lc.timeline.status_at(1, 3_000), SiteStatus::Dead);
        assert_eq!(lc.timeline.status_at(1, 59_999), SiteStatus::Healthy);
    }

    #[test]
    fn stall_degrades_to_suspect_but_keeps_serving() {
        let mut plan = FailurePlan::none(9);
        plan.add(
            RootLetter::A,
            10,
            FailureKind::Stall { delay_ms: 400 },
            (1_000, 5_000),
        );
        let cp = run(&plan);
        let lc = &cp.letters[0];
        assert_eq!(lc.outage_count(), 0, "a stalled site is not down");
        assert_eq!(lc.stall_delay_at(0, 2_000), Some(400));
        assert_eq!(lc.stall_delay_at(0, 5_000), None);
        assert_eq!(lc.timeline.status_at(0, 3_000), SiteStatus::Suspect);
        assert!(lc.timeline.status_at(0, 3_000).in_rotation());
        assert_eq!(lc.timeline.status_at(0, 59_999), SiteStatus::Healthy);
    }

    #[test]
    fn control_plane_replays_bit_identically() {
        let mut plan = FailurePlan::none(42);
        plan.add(RootLetter::A, 11, FailureKind::Crash, (2_000, 9_000));
        plan.add(RootLetter::A, 12, FailureKind::Blackhole, (3_000, 7_000));
        plan.add(
            RootLetter::B,
            20,
            FailureKind::Stall { delay_ms: 250 },
            (1_000, 20_000),
        );
        let (a, b) = (run(&plan), run(&plan));
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.recoveries, b.recoveries);
        for (x, y) in a.letters.iter().zip(&b.letters) {
            assert_eq!(x.timeline.events(), y.timeline.events());
            assert_eq!(x.outages, y.outages);
            assert_eq!(x.stalls, y.stalls);
        }
    }

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let p = RecoveryPolicy::default();
        let delays: Vec<u64> = (1..=8).map(|a| p.backoff_ms(5, 1_000, a)).collect();
        assert_eq!(
            delays,
            (1..=8)
                .map(|a| p.backoff_ms(5, 1_000, a))
                .collect::<Vec<_>>()
        );
        // Roughly doubling, within jitter, and capped at the ceiling.
        for (i, &d) in delays.iter().enumerate() {
            let exp = (p.base_backoff_ms << i.min(20)).min(p.max_backoff_ms);
            let span = (exp as f64 * p.jitter_frac) as u64;
            assert!(
                d >= exp - span / 2 - 1 && d <= exp + span,
                "attempt {i}: {d} vs {exp}"
            );
        }
        assert_eq!(p.backoff_ms(5, 1_000, 0), 0);
        assert!(p.budget_ms() >= delays.iter().sum::<u64>());
    }

    #[test]
    fn unrecoverable_crash_exhausts_the_budget_and_stays_down() {
        let mut plan = FailurePlan::none(13);
        // The crash window outlasts the whole restart budget.
        plan.add(RootLetter::A, 10, FailureKind::Crash, (1_000, u64::MAX));
        let cp = run(&plan);
        assert_eq!(cp.recoveries.len(), 1);
        let log = cp.recoveries[0];
        assert!(!log.converged());
        assert_eq!(log.attempts, RecoveryPolicy::default().max_attempts);
        let lc = &cp.letters[0];
        assert_eq!(lc.outages[0], vec![(1_000, u64::MAX)]);
        assert_eq!(lc.timeline.status_at(0, 59_999), SiteStatus::Dead);
    }
}
