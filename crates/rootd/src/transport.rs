//! How request bytes reach the engine.
//!
//! The engine itself is a pure function from bytes to bytes; a
//! [`Transport`] decides what sits between client and server. Two
//! implementations:
//!
//! * [`InprocTransport`] — calls the engine directly. Deterministic, no
//!   sockets, no threads; what tests and `localroot` refresh use.
//! * [`LoopbackTransport`] — real UDP and TCP sockets against a
//!   [`LoopbackServer`] bound to 127.0.0.1. The same bytes travel through
//!   the kernel's loopback stack, including RFC 7766 two-byte length
//!   framing on TCP.
//!
//! Because the engine is deterministic and both transports move raw
//! message bytes unmodified, the two must produce byte-identical
//! responses for the same request — `tests/rootd_serving.rs` asserts it.

use crate::engine::{Rootd, ServeOutcome};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest datagram a transport will accept from the wire.
const MAX_DATAGRAM: usize = 65_535;

/// Errors a transport can surface. The in-proc transport never fails;
/// the loopback transport maps socket errors here.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure (bind, send, receive, connect).
    Io(std::io::Error),
    /// No response arrived within the receive timeout.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Timeout => write!(f, "transport timeout"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    }
}

/// A way to exchange request bytes for response bytes with a server.
pub trait Transport {
    /// One UDP-semantics exchange: a single datagram each way. `None`
    /// means the server dropped the request.
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError>;

    /// One TCP-semantics exchange: the request framed onto a stream, every
    /// response message read back (AXFR returns many).
    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError>;
}

/// The deterministic transport: a direct call into the engine.
#[derive(Debug, Clone)]
pub struct InprocTransport {
    engine: Arc<Rootd>,
}

impl InprocTransport {
    pub fn new(engine: Arc<Rootd>) -> InprocTransport {
        InprocTransport { engine }
    }

    /// The engine behind this transport.
    pub fn engine(&self) -> &Arc<Rootd> {
        &self.engine
    }
}

impl Transport for InprocTransport {
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(self.engine.serve_udp(request))
    }

    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        Ok(self.engine.serve_tcp(request))
    }
}

/// A server thread pair (UDP + TCP) bound to ephemeral loopback ports.
///
/// Dropping the server (or calling [`LoopbackServer::shutdown`]) stops the
/// listener threads.
#[derive(Debug)]
pub struct LoopbackServer {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl LoopbackServer {
    /// Bind UDP and TCP sockets on 127.0.0.1 (ephemeral ports) and serve
    /// `engine` from background threads.
    pub fn spawn(engine: Arc<Rootd>) -> Result<LoopbackServer, TransportError> {
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        udp.set_read_timeout(Some(Duration::from_millis(25)))?;
        let udp_addr = udp.local_addr()?;
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        tcp.set_nonblocking(true)?;
        let tcp_addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_engine = Arc::clone(&engine);
        let udp_stop = Arc::clone(&stop);
        let udp_thread = std::thread::spawn(move || {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            // Response scratch reused across datagrams: answer-cache hits
            // splice straight into it, no per-query allocation.
            let mut resp = Vec::with_capacity(MAX_DATAGRAM);
            while !udp_stop.load(Ordering::Relaxed) {
                match udp.recv_from(&mut buf) {
                    Ok((n, peer)) => {
                        if udp_engine.serve_udp_into(&buf[..n], &mut resp) != ServeOutcome::Dropped
                        {
                            let _ = udp.send_to(&resp, peer);
                        }
                    }
                    // Timeout: loop back around to check the stop flag.
                    Err(_) => continue,
                }
            }
        });

        let tcp_engine = Arc::clone(&engine);
        let tcp_stop = Arc::clone(&stop);
        let tcp_thread = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !tcp_stop.load(Ordering::Relaxed) {
                match tcp.accept() {
                    Ok((conn, _)) => {
                        let engine = Arc::clone(&tcp_engine);
                        workers.push(std::thread::spawn(move || serve_tcp_conn(conn, engine)));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });

        Ok(LoopbackServer {
            udp_addr,
            tcp_addr,
            stop,
            threads: vec![udp_thread, tcp_thread],
        })
    }

    /// UDP endpoint the server answers on.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// TCP endpoint the server answers on.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// A client transport connected to this server.
    pub fn transport(&self) -> LoopbackTransport {
        LoopbackTransport {
            udp_addr: self.udp_addr,
            tcp_addr: self.tcp_addr,
            timeout: Duration::from_secs(5),
        }
    }

    /// Stop the listener threads and wait for them to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LoopbackServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted TCP connection: read length-framed requests until the
/// client closes its write half, answering each with the engine's framed
/// response messages (RFC 7766 allows pipelined queries per connection).
fn serve_tcp_conn(mut conn: TcpStream, engine: Arc<Rootd>) {
    loop {
        let mut len_buf = [0u8; 2];
        if conn.read_exact(&mut len_buf).is_err() {
            return; // EOF or broken pipe: connection done.
        }
        let len = u16::from_be_bytes(len_buf) as usize;
        let mut req = vec![0u8; len];
        if conn.read_exact(&mut req).is_err() {
            return;
        }
        for msg in engine.serve_tcp(&req) {
            let framed = frame(&msg);
            if conn.write_all(&framed).is_err() {
                return;
            }
        }
    }
}

/// Prefix `msg` with its RFC 7766 two-byte length.
fn frame(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// A client-side transport speaking real UDP and TCP to a
/// [`LoopbackServer`].
#[derive(Debug, Clone)]
pub struct LoopbackTransport {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    timeout: Duration,
}

impl LoopbackTransport {
    /// Override the receive timeout (default 5 s).
    pub fn with_timeout(mut self, timeout: Duration) -> LoopbackTransport {
        self.timeout = timeout;
        self
    }
}

impl Transport for LoopbackTransport {
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.connect(self.udp_addr)?;
        sock.set_read_timeout(Some(self.timeout))?;
        sock.send(request)?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        match sock.recv(&mut buf) {
            Ok(n) => {
                buf.truncate(n);
                Ok(Some(buf))
            }
            // The engine legitimately drops some requests; a timeout is the
            // only way "no answer" manifests over a socket.
            Err(ref e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        let mut conn = TcpStream::connect(self.tcp_addr)?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.write_all(&frame(request))?;
        // One request per connection here: closing our write half tells the
        // server no more queries are coming, so it can finish and close.
        conn.shutdown(std::net::Shutdown::Write)?;
        let mut raw = Vec::new();
        conn.read_to_end(&mut raw)?;
        // De-frame the response stream.
        let mut out = Vec::new();
        let mut rest = raw.as_slice();
        while rest.len() >= 2 {
            let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
            if rest.len() < 2 + len {
                break; // truncated trailing frame: drop it
            }
            out.push(rest[2..2 + len].to_vec());
            rest = &rest[2 + len..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SiteIdentity;
    use crate::index::ZoneIndex;
    use dns_wire::{Message, Name, Question, Rcode, RrType};
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    fn engine() -> Arc<Rootd> {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 6,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(9),
        );
        Arc::new(Rootd::new(
            Arc::new(ZoneIndex::build(Arc::new(zone))),
            SiteIdentity::named("inproc-test"),
        ))
    }

    #[test]
    fn inproc_round_trips_a_query() {
        let mut t = InprocTransport::new(engine());
        let q = Message::query(3, Question::new(Name::root(), RrType::Ns));
        let resp = t.exchange_udp(&q.to_wire()).unwrap().expect("answered");
        let msg = Message::from_wire(&resp).unwrap();
        assert_eq!(msg.header.id, 3);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        assert_eq!(msg.answers.len(), 13);
    }

    #[test]
    fn loopback_udp_and_tcp_answer() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport();
        let q = Message::query(4, Question::new(Name::root(), RrType::Soa));
        let udp = t.exchange_udp(&q.to_wire()).unwrap().expect("udp answer");
        let tcp = t.exchange_tcp(&q.to_wire()).unwrap();
        assert_eq!(tcp.len(), 1);
        // Same engine, same bytes in: byte-identical out on both paths for
        // a response below the UDP limit.
        assert_eq!(udp, tcp[0]);
    }

    #[test]
    fn loopback_tcp_streams_axfr() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport();
        let q = Message::query(5, Question::new(Name::root(), RrType::Axfr));
        let frames = t.exchange_tcp(&q.to_wire()).unwrap();
        assert!(!frames.is_empty());
        let msgs: Vec<Message> = frames
            .iter()
            .map(|f| Message::from_wire(f).unwrap())
            .collect();
        let zone = dns_zone::axfr::assemble_axfr(&msgs, &Name::root()).unwrap();
        assert!(!zone.is_empty());
    }

    #[test]
    fn dropped_requests_time_out_to_none() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport().with_timeout(Duration::from_millis(100));
        // Sub-header garbage is dropped by the engine.
        assert_eq!(t.exchange_udp(&[0xff; 4]).unwrap(), None);
    }
}
