//! How request bytes reach the engine.
//!
//! The engine itself is a pure function from bytes to bytes; a
//! [`Transport`] decides what sits between client and server. Two
//! implementations:
//!
//! * [`InprocTransport`] — calls the engine directly. Deterministic, no
//!   sockets, no threads; what tests and `localroot` refresh use.
//! * [`LoopbackTransport`] — real UDP and TCP sockets against a
//!   [`LoopbackServer`] bound to 127.0.0.1. The same bytes travel through
//!   the kernel's loopback stack, including RFC 7766 two-byte length
//!   framing on TCP.
//!
//! Because the engine is deterministic and both transports move raw
//! message bytes unmodified, the two must produce byte-identical
//! responses for the same request — `tests/rootd_serving.rs` asserts it.

use crate::engine::{Rootd, ServeOutcome};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest datagram a transport will accept from the wire.
const MAX_DATAGRAM: usize = 65_535;

/// Errors a transport can surface. The in-proc transport never fails;
/// the loopback transport maps socket errors here.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure (bind, send, receive, connect).
    Io(std::io::Error),
    /// No response arrived within the receive timeout.
    Timeout,
    /// A length-prefixed TCP frame ended early: the peer promised `want`
    /// bytes (prefix included) but the stream delivered only `got`.
    ShortRead { got: usize, want: usize },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Timeout => write!(f, "transport timeout"),
            TransportError::ShortRead { got, want } => {
                write!(f, "short read: got {got} of {want} framed bytes")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    }
}

/// A caller-owned scratch slab for batched UDP exchanges
/// ([`Transport::exchange_udp_batch`]): many requests in, every answer
/// written back out, zero per-query allocation once the slabs are warm —
/// the recvmmsg/sendmmsg shape, minus the syscalls.
///
/// Requests are appended with [`UdpBatch::push_request`]. A server or
/// transport then commits exactly one response — or an explicit drop —
/// per request, *in request order*, via [`UdpBatch::io`] +
/// [`UdpBatch::commit_response`] (or [`UdpBatch::commit_response_bytes`]);
/// [`UdpBatch::response`] reads them back. [`UdpBatch::clear`] recycles
/// the batch, keeping every slab's capacity.
#[derive(Debug, Default, Clone)]
pub struct UdpBatch {
    /// Request bytes back to back; `req_ends[i]` ends request `i`.
    req: Vec<u8>,
    req_ends: Vec<usize>,
    /// Response bytes back to back; a zero-length span records a drop.
    resp: Vec<u8>,
    resp_ends: Vec<usize>,
    /// Scratch the current response is built in before committing.
    scratch: Vec<u8>,
}

impl UdpBatch {
    pub fn new() -> UdpBatch {
        UdpBatch::default()
    }

    /// Number of requests pushed.
    pub fn len(&self) -> usize {
        self.req_ends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.req_ends.is_empty()
    }

    /// Number of responses committed so far.
    pub fn responses(&self) -> usize {
        self.resp_ends.len()
    }

    /// Drop all requests and responses, keeping slab capacity.
    pub fn clear(&mut self) {
        self.req.clear();
        self.req_ends.clear();
        self.resp.clear();
        self.resp_ends.clear();
    }

    /// Append one request datagram.
    pub fn push_request(&mut self, request: &[u8]) {
        self.req.extend_from_slice(request);
        self.req_ends.push(self.req.len());
    }

    /// Request `i`'s bytes.
    pub fn request(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.req_ends[i - 1] };
        &self.req[start..self.req_ends[i]]
    }

    /// Request `i` plus the scratch buffer to build its response in;
    /// follow with [`Self::commit_response`].
    pub fn io(&mut self, i: usize) -> (&[u8], &mut Vec<u8>) {
        let start = if i == 0 { 0 } else { self.req_ends[i - 1] };
        let end = self.req_ends[i];
        let UdpBatch { req, scratch, .. } = self;
        (&req[start..end], scratch)
    }

    /// Commit the scratch buffer as the next response; `answered = false`
    /// records a dropped datagram instead.
    pub fn commit_response(&mut self, answered: bool) {
        if answered {
            self.resp.extend_from_slice(&self.scratch);
        }
        self.resp_ends.push(self.resp.len());
    }

    /// Commit `bytes` directly as the next response.
    pub fn commit_response_bytes(&mut self, bytes: &[u8]) {
        self.resp.extend_from_slice(bytes);
        self.resp_ends.push(self.resp.len());
    }

    /// Response `i`: `None` when the server dropped the request (a real
    /// response is never empty — a DNS header alone is 12 bytes).
    pub fn response(&self, i: usize) -> Option<&[u8]> {
        let start = if i == 0 { 0 } else { self.resp_ends[i - 1] };
        let end = self.resp_ends[i];
        (end > start).then(|| &self.resp[start..end])
    }
}

/// A way to exchange request bytes for response bytes with a server.
pub trait Transport {
    /// One UDP-semantics exchange: a single datagram each way. `None`
    /// means the server dropped the request.
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError>;

    /// One UDP exchange into a caller-owned buffer: `Ok(true)` filled
    /// `resp` with the response; `Ok(false)` means the server dropped the
    /// request (`resp` is then unspecified). The allocation-free twin of
    /// [`Transport::exchange_udp`]; the default forwards to it (and so
    /// still allocates — transports on the hot path override).
    fn exchange_udp_into(
        &mut self,
        request: &[u8],
        resp: &mut Vec<u8>,
    ) -> Result<bool, TransportError> {
        match self.exchange_udp(request)? {
            Some(bytes) => {
                resp.clear();
                resp.extend_from_slice(&bytes);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Exchange every request in `batch` (recvmmsg/sendmmsg-style),
    /// committing one response — or a drop — per request, in request
    /// order, byte-identical to per-datagram [`Transport::exchange_udp`]
    /// calls. The default loops [`Transport::exchange_udp_into`];
    /// transports override it to amortize per-datagram costs. On `Err`
    /// the batch holds a valid committed prefix only.
    fn exchange_udp_batch(&mut self, batch: &mut UdpBatch) -> Result<(), TransportError> {
        for i in 0..batch.len() {
            let answered = {
                let (req, scratch) = batch.io(i);
                self.exchange_udp_into(req, scratch)?
            };
            batch.commit_response(answered);
        }
        Ok(())
    }

    /// One TCP-semantics exchange: the request framed onto a stream, every
    /// response message read back (AXFR returns many).
    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError>;
}

/// The deterministic transport: a direct call into the engine.
#[derive(Debug, Clone)]
pub struct InprocTransport {
    engine: Arc<Rootd>,
}

impl InprocTransport {
    pub fn new(engine: Arc<Rootd>) -> InprocTransport {
        InprocTransport { engine }
    }

    /// The engine behind this transport.
    pub fn engine(&self) -> &Arc<Rootd> {
        &self.engine
    }
}

impl Transport for InprocTransport {
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(self.engine.serve_udp(request))
    }

    fn exchange_udp_into(
        &mut self,
        request: &[u8],
        resp: &mut Vec<u8>,
    ) -> Result<bool, TransportError> {
        Ok(self.engine.serve_udp_into(request, resp) != ServeOutcome::Dropped)
    }

    fn exchange_udp_batch(&mut self, batch: &mut UdpBatch) -> Result<(), TransportError> {
        self.engine.serve_udp_batch(batch);
        Ok(())
    }

    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        Ok(self.engine.serve_tcp(request))
    }
}

/// A server thread pair (UDP + TCP) bound to ephemeral loopback ports.
///
/// Dropping the server (or calling [`LoopbackServer::shutdown`]) stops the
/// listener threads.
#[derive(Debug)]
pub struct LoopbackServer {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl LoopbackServer {
    /// Bind UDP and TCP sockets on 127.0.0.1 (ephemeral ports) and serve
    /// `engine` from background threads.
    pub fn spawn(engine: Arc<Rootd>) -> Result<LoopbackServer, TransportError> {
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        udp.set_read_timeout(Some(Duration::from_millis(25)))?;
        let udp_addr = udp.local_addr()?;
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        tcp.set_nonblocking(true)?;
        let tcp_addr = tcp.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_engine = Arc::clone(&engine);
        let udp_stop = Arc::clone(&stop);
        let udp_thread = std::thread::spawn(move || {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            // Response scratch reused across datagrams: answer-cache hits
            // splice straight into it, no per-query allocation.
            let mut resp = Vec::with_capacity(MAX_DATAGRAM);
            while !udp_stop.load(Ordering::Relaxed) {
                match udp.recv_from(&mut buf) {
                    Ok((n, peer)) => {
                        if udp_engine.serve_udp_into(&buf[..n], &mut resp) != ServeOutcome::Dropped
                        {
                            let _ = udp.send_to(&resp, peer);
                        }
                    }
                    // Timeout: loop back around to check the stop flag.
                    Err(_) => continue,
                }
            }
        });

        let tcp_engine = Arc::clone(&engine);
        let tcp_stop = Arc::clone(&stop);
        let tcp_thread = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !tcp_stop.load(Ordering::Relaxed) {
                match tcp.accept() {
                    Ok((conn, _)) => {
                        let engine = Arc::clone(&tcp_engine);
                        workers.push(std::thread::spawn(move || serve_tcp_conn(conn, engine)));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });

        Ok(LoopbackServer {
            udp_addr,
            tcp_addr,
            stop,
            threads: vec![udp_thread, tcp_thread],
        })
    }

    /// UDP endpoint the server answers on.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// TCP endpoint the server answers on.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// A client transport connected to this server.
    pub fn transport(&self) -> LoopbackTransport {
        LoopbackTransport {
            udp_addr: self.udp_addr,
            tcp_addr: self.tcp_addr,
            timeout: Duration::from_secs(5),
            sock: None,
            recv_buf: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Stop the listener threads and wait for them to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LoopbackServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted TCP connection: read length-framed requests until the
/// client closes its write half, answering each with the engine's framed
/// response messages (RFC 7766 allows pipelined queries per connection).
fn serve_tcp_conn(mut conn: TcpStream, engine: Arc<Rootd>) {
    loop {
        let mut len_buf = [0u8; 2];
        if conn.read_exact(&mut len_buf).is_err() {
            return; // EOF or broken pipe: connection done.
        }
        let len = u16::from_be_bytes(len_buf) as usize;
        let mut req = vec![0u8; len];
        if conn.read_exact(&mut req).is_err() {
            return;
        }
        for msg in engine.serve_tcp(&req) {
            let framed = frame(&msg);
            if conn.write_all(&framed).is_err() {
                return;
            }
        }
    }
}

/// Prefix `msg` with its RFC 7766 two-byte length.
fn frame(msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + msg.len());
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// A client-side transport speaking real UDP and TCP to a
/// [`LoopbackServer`].
///
/// The UDP socket is bound once and reused across exchanges (bind +
/// connect per datagram would dominate the exchange cost). Because the
/// socket outlives individual exchanges, a request that timed out can
/// leave a late response in the kernel buffer; receives therefore match
/// the DNS message id against the outstanding request and skip stale
/// datagrams. Batched exchanges keep a window of requests in flight and
/// match the same way — so requests within one batch window should carry
/// distinct ids (duplicate ids pair with the earliest outstanding
/// request, which is also what a real client would do).
#[derive(Debug)]
pub struct LoopbackTransport {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    timeout: Duration,
    /// Lazily bound, persistent UDP socket.
    sock: Option<UdpSocket>,
    /// Receive scratch reused across datagrams.
    recv_buf: Vec<u8>,
    /// Per-slot response buffers for batched exchanges, reused across
    /// calls (an empty slot after the exchange means dropped).
    slots: Vec<Vec<u8>>,
}

impl Clone for LoopbackTransport {
    fn clone(&self) -> LoopbackTransport {
        // Each clone lazily binds its own socket.
        LoopbackTransport {
            udp_addr: self.udp_addr,
            tcp_addr: self.tcp_addr,
            timeout: self.timeout,
            sock: None,
            recv_buf: Vec::new(),
            slots: Vec::new(),
        }
    }
}

/// How many batched requests a [`LoopbackTransport`] keeps in flight.
const UDP_WINDOW: usize = 16;

impl LoopbackTransport {
    /// Override the receive timeout (default 5 s). Drops the bound
    /// socket; the next exchange re-binds with the new timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> LoopbackTransport {
        self.timeout = timeout;
        self.sock = None;
        self
    }

    /// The persistent UDP socket, bound and connected on first use.
    fn socket(&mut self) -> Result<&UdpSocket, TransportError> {
        if self.sock.is_none() {
            let sock = UdpSocket::bind("127.0.0.1:0")?;
            sock.connect(self.udp_addr)?;
            sock.set_read_timeout(Some(self.timeout))?;
            self.sock = Some(sock);
        }
        Ok(self.sock.as_ref().expect("socket just bound"))
    }

    /// Whether a received datagram answers `request` (DNS id match; a
    /// sub-header request can never be answered, so nothing matches it).
    fn id_matches(request: &[u8], resp: &[u8]) -> bool {
        request.len() >= 2 && resp.len() >= 2 && request[..2] == resp[..2]
    }
}

impl Transport for LoopbackTransport {
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        let mut resp = Vec::new();
        Ok(self.exchange_udp_into(request, &mut resp)?.then_some(resp))
    }

    fn exchange_udp_into(
        &mut self,
        request: &[u8],
        resp: &mut Vec<u8>,
    ) -> Result<bool, TransportError> {
        self.socket()?;
        let LoopbackTransport { sock, recv_buf, .. } = self;
        let sock = sock.as_ref().expect("socket bound above");
        recv_buf.resize(MAX_DATAGRAM, 0);
        sock.send(request)?;
        loop {
            match sock.recv(recv_buf) {
                Ok(n) => {
                    // A stale datagram (late answer to an earlier timed-out
                    // exchange): skip it and keep waiting for ours.
                    if !Self::id_matches(request, &recv_buf[..n]) {
                        continue;
                    }
                    resp.clear();
                    resp.extend_from_slice(&recv_buf[..n]);
                    return Ok(true);
                }
                // The engine legitimately drops some requests; a timeout is
                // the only way "no answer" manifests over a socket.
                Err(ref e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Windowed pipelining over the persistent socket: up to
    /// `UDP_WINDOW` requests in flight, responses matched back to their
    /// request by DNS id (the single-threaded server answers in order,
    /// but drops leave gaps). A receive timeout declares the oldest
    /// outstanding request dropped and moves on.
    fn exchange_udp_batch(&mut self, batch: &mut UdpBatch) -> Result<(), TransportError> {
        let n = batch.len();
        self.socket()?;
        {
            let LoopbackTransport {
                sock,
                recv_buf,
                slots,
                ..
            } = self;
            let sock = sock.as_ref().expect("socket bound above");
            recv_buf.resize(MAX_DATAGRAM, 0);
            if slots.len() < n {
                slots.resize_with(n, Vec::new);
            }
            for slot in slots.iter_mut().take(n) {
                slot.clear();
            }
            let mut pending: std::collections::VecDeque<usize> =
                std::collections::VecDeque::with_capacity(UDP_WINDOW);
            let mut next = 0usize;
            loop {
                while pending.len() < UDP_WINDOW && next < n {
                    sock.send(batch.request(next))?;
                    pending.push_back(next);
                    next += 1;
                }
                if pending.is_empty() {
                    break;
                }
                match sock.recv(recv_buf) {
                    Ok(got) => {
                        let matched = pending
                            .iter()
                            .position(|&i| Self::id_matches(batch.request(i), &recv_buf[..got]));
                        if let Some(pos) = matched {
                            let i = pending.remove(pos).expect("position is in range");
                            slots[i].extend_from_slice(&recv_buf[..got]);
                        }
                        // Unmatched: a stale datagram from an earlier
                        // exchange — ignore it.
                    }
                    Err(ref e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        // Nothing arrived for a full timeout: the oldest
                        // outstanding request was dropped by the server.
                        pending.pop_front();
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        for i in 0..n {
            if self.slots[i].is_empty() {
                batch.commit_response(false);
            } else {
                batch.commit_response_bytes(&self.slots[i]);
            }
        }
        Ok(())
    }

    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        let mut conn = TcpStream::connect(self.tcp_addr)?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.write_all(&frame(request))?;
        // One request per connection here: closing our write half tells the
        // server no more queries are coming, so it can finish and close.
        conn.shutdown(std::net::Shutdown::Write)?;
        let mut out = Vec::new();
        while let Some(msg) = read_frame(&mut conn)? {
            out.push(msg);
        }
        Ok(out)
    }
}

/// Read one RFC 7766 length-prefixed frame from `conn`, looping on partial
/// reads (TCP may deliver any byte split). A clean EOF *between* frames
/// returns `None`; an EOF mid-prefix or mid-body is a typed
/// [`TransportError::ShortRead`] — never a silently dropped tail.
fn read_frame(conn: &mut TcpStream) -> Result<Option<Vec<u8>>, TransportError> {
    let mut len_buf = [0u8; 2];
    let mut have = 0;
    while have < 2 {
        match conn.read(&mut len_buf[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => return Err(TransportError::ShortRead { got: have, want: 2 }),
            Ok(n) => have += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut body = vec![0u8; len];
    let mut have = 0;
    while have < len {
        match conn.read(&mut body[have..]) {
            Ok(0) => {
                return Err(TransportError::ShortRead {
                    got: 2 + have,
                    want: 2 + len,
                })
            }
            Ok(n) => have += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SiteIdentity;
    use crate::index::ZoneIndex;
    use dns_wire::{Message, Name, Question, Rcode, RrType};
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    fn engine() -> Arc<Rootd> {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 6,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(9),
        );
        Arc::new(Rootd::new(
            Arc::new(ZoneIndex::build(Arc::new(zone))),
            SiteIdentity::named("inproc-test"),
        ))
    }

    #[test]
    fn inproc_round_trips_a_query() {
        let mut t = InprocTransport::new(engine());
        let q = Message::query(3, Question::new(Name::root(), RrType::Ns));
        let resp = t.exchange_udp(&q.to_wire()).unwrap().expect("answered");
        let msg = Message::from_wire(&resp).unwrap();
        assert_eq!(msg.header.id, 3);
        assert_eq!(msg.header.rcode, Rcode::NoError);
        assert_eq!(msg.answers.len(), 13);
    }

    #[test]
    fn loopback_udp_and_tcp_answer() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport();
        let q = Message::query(4, Question::new(Name::root(), RrType::Soa));
        let udp = t.exchange_udp(&q.to_wire()).unwrap().expect("udp answer");
        let tcp = t.exchange_tcp(&q.to_wire()).unwrap();
        assert_eq!(tcp.len(), 1);
        // Same engine, same bytes in: byte-identical out on both paths for
        // a response below the UDP limit.
        assert_eq!(udp, tcp[0]);
    }

    #[test]
    fn loopback_tcp_streams_axfr() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport();
        let q = Message::query(5, Question::new(Name::root(), RrType::Axfr));
        let frames = t.exchange_tcp(&q.to_wire()).unwrap();
        assert!(!frames.is_empty());
        let msgs: Vec<Message> = frames
            .iter()
            .map(|f| Message::from_wire(f).unwrap())
            .collect();
        let zone = dns_zone::axfr::assemble_axfr(&msgs, &Name::root()).unwrap();
        assert!(!zone.is_empty());
    }

    #[test]
    fn dropped_requests_time_out_to_none() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport().with_timeout(Duration::from_millis(100));
        // Sub-header garbage is dropped by the engine.
        assert_eq!(t.exchange_udp(&[0xff; 4]).unwrap(), None);
    }

    /// Distinct-id queries across the answer shapes the engine caches
    /// (authoritative, referral-less apex, NXDOMAIN, CHAOS identity).
    fn query_set(n: u16) -> Vec<Vec<u8>> {
        (0..n)
            .map(|id| {
                let q = match id % 4 {
                    0 => Question::new(Name::root(), RrType::Soa),
                    1 => Question::new(Name::root(), RrType::Ns),
                    2 => Question::new(Name::parse(&format!("nx{id}.")).unwrap(), RrType::A),
                    _ => Question::chaos_txt(Name::parse("id.server.").unwrap()),
                };
                Message::query(id, q).to_wire()
            })
            .collect()
    }

    #[test]
    fn inproc_batch_is_byte_identical_to_one_shot() {
        let mut t = InprocTransport::new(engine());
        let queries = query_set(40);
        let mut batch = UdpBatch::new();
        for q in &queries {
            batch.push_request(q);
        }
        t.exchange_udp_batch(&mut batch).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let one_shot = t.exchange_udp(q).unwrap().expect("answered");
            assert_eq!(batch.response(i), Some(&one_shot[..]), "query {i}");
        }
    }

    #[test]
    fn loopback_batch_is_byte_identical_to_one_shot() {
        // 40 > UDP_WINDOW: the windowed pipelining wraps several times.
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport();
        let queries = query_set(40);
        let mut batch = UdpBatch::new();
        for q in &queries {
            batch.push_request(q);
        }
        t.exchange_udp_batch(&mut batch).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let one_shot = t.exchange_udp(q).unwrap().expect("answered");
            assert_eq!(batch.response(i), Some(&one_shot[..]), "query {i}");
        }
    }

    #[test]
    fn loopback_batch_reports_dropped_datagrams_in_place() {
        let server = LoopbackServer::spawn(engine()).unwrap();
        let mut t = server.transport().with_timeout(Duration::from_millis(200));
        let queries = query_set(8);
        let mut batch = UdpBatch::new();
        for (i, q) in queries.iter().enumerate() {
            if i == 3 {
                // Sub-header garbage: the engine drops it, no response.
                batch.push_request(&[0xff; 4]);
            }
            batch.push_request(q);
        }
        t.exchange_udp_batch(&mut batch).unwrap();
        assert_eq!(batch.response(3), None, "dropped datagram must stay empty");
        // Every slot got a commit (drops included)...
        assert_eq!(batch.responses(), batch.len());
        // ...and only the garbage slot is empty.
        let answered = (0..batch.len())
            .filter(|&i| batch.response(i).is_some())
            .count();
        assert_eq!(answered, queries.len());
        for (i, q) in queries.iter().enumerate() {
            let slot = if i < 3 { i } else { i + 1 };
            let one_shot = t.exchange_udp(q).unwrap().expect("answered");
            assert_eq!(batch.response(slot), Some(&one_shot[..]), "query {i}");
        }
    }

    /// A raw TCP server that answers every connection with `payload` bytes
    /// (no engine): lets the tests put arbitrary — including broken —
    /// framing on the wire.
    fn raw_tcp_server(payload: Vec<u8>, dribble: bool) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut sink = Vec::new();
                let _ = conn.read_to_end(&mut sink); // drain the request
                if dribble {
                    // Worst-case segmentation: one byte per write.
                    for b in &payload {
                        let _ = conn.write_all(&[*b]);
                        let _ = conn.flush();
                    }
                } else {
                    let _ = conn.write_all(&payload);
                }
            }
        });
        addr
    }

    fn transport_to(addr: SocketAddr) -> LoopbackTransport {
        LoopbackTransport {
            udp_addr: addr, // unused by the TCP tests
            tcp_addr: addr,
            timeout: Duration::from_secs(2),
            sock: None,
            recv_buf: Vec::new(),
            slots: Vec::new(),
        }
    }

    #[test]
    fn tcp_frame_reads_loop_on_partial_reads() {
        // Two framed messages delivered one byte at a time must still
        // assemble: the length-prefix reads loop until satisfied.
        let msgs = [vec![1u8, 2, 3], vec![9u8; 600]];
        let mut payload = Vec::new();
        for m in &msgs {
            payload.extend_from_slice(&frame(m));
        }
        let addr = raw_tcp_server(payload, true);
        let got = transport_to(addr).exchange_tcp(&[0u8; 12]).unwrap();
        assert_eq!(got, msgs);
    }

    #[test]
    fn truncated_tcp_frame_is_a_typed_short_read() {
        // A frame promising 100 bytes but delivering 10 must surface as
        // ShortRead, not be silently dropped.
        let mut payload = (100u16).to_be_bytes().to_vec();
        payload.extend_from_slice(&[0xab; 10]);
        let addr = raw_tcp_server(payload, false);
        match transport_to(addr).exchange_tcp(&[0u8; 12]) {
            Err(TransportError::ShortRead { got, want }) => {
                assert_eq!(got, 12);
                assert_eq!(want, 102);
            }
            other => panic!("expected ShortRead, got {other:?}"),
        }
    }

    #[test]
    fn half_a_length_prefix_is_a_typed_short_read() {
        let addr = raw_tcp_server(vec![0x00], false);
        match transport_to(addr).exchange_tcp(&[0u8; 12]) {
            Err(TransportError::ShortRead { got, want }) => {
                assert_eq!((got, want), (1, 2));
            }
            other => panic!("expected ShortRead, got {other:?}"),
        }
    }

    #[test]
    fn silent_tcp_server_is_a_typed_timeout() {
        // A server that accepts and never answers: the client's blocking
        // read hits its deadline and maps to the Timeout variant.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_millis(400));
            drop(conn);
        });
        let mut client = transport_to(addr);
        client.timeout = Duration::from_millis(50);
        assert!(matches!(
            client.exchange_tcp(&[0u8; 12]),
            Err(TransportError::Timeout)
        ));
        t.join().unwrap();
    }
}
