//! Response-rate limiting (RRL): the server-side defense against spoofed
//! floods, after the scheme BIND/NSD deploy on real root letters.
//!
//! An authoritative server cannot tell a spoofed query from a real one —
//! it can only refuse to be a good amplifier. RRL buckets outgoing
//! *responses* by (masked source, response class) per virtual-time
//! window; once a bucket exhausts its budget, further responses in the
//! window are dropped, except that every `slip`-th limited response goes
//! out as a minimal truncated (TC=1) reply instead. A real client behind
//! the spoofed address takes the TC hint and retries over TCP — which is
//! never rate-limited, because TCP cannot be spoofed off-path — and still
//! gets the full answer; the reflector's amplification gain collapses to
//! a question-sized packet every `slip` responses.
//!
//! # Determinism
//!
//! Buckets refill by *fixed window*: window `w = t_ms / window_ms`,
//! globally aligned, full budget at each window start. Given the
//! arrivals of one (bucket, window), the k-th arrival's verdict is a
//! pure function of k — `Pass` while `k ≤ limit`, then the slip cadence
//! — so per-window totals are order-independent, and per-query verdicts
//! are reproducible whenever each (bucket, window)'s arrivals are
//! replayed in order (the attack generator's window-chunk partitioning
//! guarantees exactly that; see `attack.rs`). Windows deliberately carry
//! no per-bucket phase: a seeded phase would break that alignment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// RRL parameters. Rates are response budgets per bucket per window;
/// a limit of 0 disables limiting for that class.
#[derive(Debug, Clone)]
pub struct RrlConfig {
    /// Seed recorded for report provenance (verdicts are seed-free: the
    /// accounting is a pure function of bucket key and virtual time).
    pub seed: u64,
    /// Window length in virtual ms. Windows are aligned to multiples of
    /// this — `window = t_ms / window_ms` — for all buckets.
    pub window_ms: u64,
    /// Budget per window for positive responses (answers, referrals,
    /// NODATA).
    pub responses_limit: u32,
    /// Budget per window for NXDOMAIN — the water-torture class.
    pub nxdomain_limit: u32,
    /// Budget per window for error responses (FORMERR, REFUSED, …).
    pub error_limit: u32,
    /// Every `slip`-th limited response is sent truncated instead of
    /// dropped (2 = every other). 0 drops all limited responses.
    pub slip: u32,
    /// Right-shift applied to the source address before bucketing, so
    /// adjacent sources share a bucket (BIND masks to /24; the simulated
    /// address space is AS-granular, so the default shift is 0).
    pub prefix_shift: u32,
}

impl Default for RrlConfig {
    fn default() -> Self {
        RrlConfig {
            seed: 0,
            window_ms: 1_000,
            responses_limit: 25,
            nxdomain_limit: 25,
            error_limit: 5,
            slip: 2,
            prefix_shift: 0,
        }
    }
}

impl RrlConfig {
    /// The per-window budget for `class` (0 = unlimited).
    pub fn limit_for(&self, class: ResponseClass) -> u32 {
        match class {
            ResponseClass::Answer | ResponseClass::Referral | ResponseClass::NoData => {
                self.responses_limit
            }
            ResponseClass::NxDomain => self.nxdomain_limit,
            ResponseClass::Error => self.error_limit,
        }
    }

    /// The refill window containing virtual instant `t_ms`.
    pub fn window_of(&self, t_ms: u64) -> u64 {
        t_ms / self.window_ms.max(1)
    }
}

/// What kind of response a datagram is, for bucketing purposes —
/// classified from the raw response bytes (header fields only), so the
/// serve path never re-parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResponseClass {
    /// NOERROR with answer records (includes amplification-prone shapes
    /// like apex DNSKEY/ANY).
    Answer,
    /// NOERROR, empty answer, non-authoritative authority: a delegation.
    Referral,
    /// NOERROR, empty answer, authoritative SOA: negative existence.
    NoData,
    /// RCODE 3 — the water-torture class.
    NxDomain,
    /// Any other RCODE (FORMERR, REFUSED, SERVFAIL, NOTIMP, …).
    Error,
}

impl ResponseClass {
    /// Classify a response from its header bytes. Anything too short to
    /// carry a header counts as an error.
    pub fn of(resp: &[u8]) -> ResponseClass {
        if resp.len() < 12 {
            return ResponseClass::Error;
        }
        match resp[3] & 0x0f {
            3 => ResponseClass::NxDomain,
            0 => {
                let ancount = u16::from_be_bytes([resp[6], resp[7]]);
                let nscount = u16::from_be_bytes([resp[8], resp[9]]);
                if ancount > 0 {
                    ResponseClass::Answer
                } else if nscount > 0 && resp[2] & 0x04 == 0 {
                    // Empty answer + authority without AA: a referral.
                    ResponseClass::Referral
                } else if nscount > 0 {
                    ResponseClass::NoData
                } else {
                    // Header-only NOERROR (e.g. the empty-TC AXFR stub).
                    ResponseClass::Answer
                }
            }
            _ => ResponseClass::Error,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ResponseClass::Answer => "answer",
            ResponseClass::Referral => "referral",
            ResponseClass::NoData => "nodata",
            ResponseClass::NxDomain => "nxdomain",
            ResponseClass::Error => "error",
        }
    }
}

/// The limiter's verdict for one would-be response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrlDecision {
    /// Within budget: send the response unmodified.
    Pass,
    /// Over budget, on the slip cadence: send a minimal TC=1 reply.
    Slip,
    /// Over budget: send nothing.
    Drop,
}

/// Aggregate limiter counters, mergeable across engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrlCounters {
    /// Responses that consulted the limiter.
    pub checked: u64,
    /// Sent unmodified.
    pub passed: u64,
    /// Sent as minimal TC=1 replies.
    pub slipped: u64,
    /// Suppressed entirely.
    pub dropped: u64,
}

impl RrlCounters {
    pub fn merge(&mut self, other: &RrlCounters) {
        self.checked += other.checked;
        self.passed += other.passed;
        self.slipped += other.slipped;
        self.dropped += other.dropped;
    }

    pub fn render(&self) -> String {
        format!(
            "checked={} passed={} slipped(TC)={} dropped={}",
            self.checked, self.passed, self.slipped, self.dropped
        )
    }
}

/// Per-(source-prefix, class) totals aggregated over all windows —
/// the per-bucket view the flood reports print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketStat {
    pub prefix: u64,
    pub class: ResponseClass,
    pub arrivals: u64,
    pub passed: u64,
    pub slipped: u64,
    pub dropped: u64,
}

/// Given `arrivals` responses landing in one (bucket, window), the split
/// the slip cadence produces — the closed form the verdict sequence sums
/// to, independent of everything but the count. Exposed for the
/// accounting proptests.
pub fn window_totals(arrivals: u64, limit: u32, slip: u32) -> (u64, u64, u64) {
    if limit == 0 {
        return (arrivals, 0, 0);
    }
    let passed = arrivals.min(limit as u64);
    let limited = arrivals - passed;
    let slipped = if slip == 0 {
        0
    } else {
        limited.div_ceil(slip as u64)
    };
    (passed, slipped, limited - slipped)
}

const SHARDS: usize = 32;

type BucketKey = (u64, ResponseClass, u64);

/// The limiter state one engine holds: sharded per-(bucket, window)
/// arrival counts plus lock-free aggregate counters. Created per config
/// epoch (`Rootd::set_rrl`), so a new config starts with empty buckets.
#[derive(Debug)]
pub struct Rrl {
    cfg: RrlConfig,
    shards: Vec<Mutex<HashMap<BucketKey, u64>>>,
    checked: AtomicU64,
    passed: AtomicU64,
    slipped: AtomicU64,
    dropped: AtomicU64,
}

impl Rrl {
    pub fn new(cfg: RrlConfig) -> Rrl {
        Rrl {
            cfg,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            checked: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            slipped: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &RrlConfig {
        &self.cfg
    }

    /// Account one would-be response from `src` of class `class` at
    /// virtual instant `t_ms`, and rule on it.
    pub fn decide(&self, src: u64, class: ResponseClass, t_ms: u64) -> RrlDecision {
        self.checked.fetch_add(1, Ordering::Relaxed);
        let limit = self.cfg.limit_for(class);
        if limit == 0 {
            self.passed.fetch_add(1, Ordering::Relaxed);
            return RrlDecision::Pass;
        }
        let key = (
            src >> self.cfg.prefix_shift,
            class,
            self.cfg.window_of(t_ms),
        );
        let n = {
            let mut shard = self.shards[shard_of(&key)].lock().unwrap();
            let slot = shard.entry(key).or_insert(0);
            *slot += 1;
            *slot
        };
        if n <= limit as u64 {
            self.passed.fetch_add(1, Ordering::Relaxed);
            return RrlDecision::Pass;
        }
        // j-th limited response of the window (1-based): slip the first
        // and then every `slip`-th after it, drop the rest.
        let j = n - limit as u64;
        if self.cfg.slip > 0 && (j - 1).is_multiple_of(self.cfg.slip as u64) {
            self.slipped.fetch_add(1, Ordering::Relaxed);
            RrlDecision::Slip
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            RrlDecision::Drop
        }
    }

    pub fn counters(&self) -> RrlCounters {
        RrlCounters {
            checked: self.checked.load(Ordering::Relaxed),
            passed: self.passed.load(Ordering::Relaxed),
            slipped: self.slipped.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Per-bucket totals, summed over windows via [`window_totals`] and
    /// sorted hottest-first (then by key, for a deterministic order).
    pub fn bucket_stats(&self) -> Vec<BucketStat> {
        let mut per_bucket: HashMap<(u64, ResponseClass), (u64, u64, u64, u64)> = HashMap::new();
        for shard in &self.shards {
            for (&(prefix, class, _window), &arrivals) in shard.lock().unwrap().iter() {
                let limit = self.cfg.limit_for(class);
                let (p, s, d) = window_totals(arrivals, limit, self.cfg.slip);
                let agg = per_bucket.entry((prefix, class)).or_insert((0, 0, 0, 0));
                agg.0 += arrivals;
                agg.1 += p;
                agg.2 += s;
                agg.3 += d;
            }
        }
        let mut stats: Vec<BucketStat> = per_bucket
            .into_iter()
            .map(
                |((prefix, class), (arrivals, passed, slipped, dropped))| BucketStat {
                    prefix,
                    class,
                    arrivals,
                    passed,
                    slipped,
                    dropped,
                },
            )
            .collect();
        stats.sort_by(|a, b| {
            b.arrivals
                .cmp(&a.arrivals)
                .then(a.prefix.cmp(&b.prefix))
                .then(a.class.cmp(&b.class))
        });
        stats
    }
}

fn shard_of(key: &BucketKey) -> usize {
    // Fibonacci-hash the prefix (classes and windows cluster; sources
    // are what spread).
    (key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 59) as usize % SHARDS
}

/// Write the minimal slipped reply for `request` into `out`: the request
/// id and question echoed under a header with QR, AA, and TC set and
/// every section count but QDCOUNT zero. Carries no OPT — the point is
/// the smallest possible packet that still drives a real client to TCP.
/// Returns false (and leaves `out` untouched garbage) when the request
/// has no parseable question to echo; callers treat that as a drop.
pub(crate) fn write_slip(request: &[u8], out: &mut Vec<u8>) -> bool {
    if request.len() < 12 {
        return false;
    }
    // Walk the qname: length-prefixed labels until the root byte.
    let mut i = 12;
    loop {
        let Some(&len) = request.get(i) else {
            return false;
        };
        if len == 0 {
            i += 1;
            break;
        }
        if len & 0xc0 != 0 {
            return false; // compression pointers are invalid in queries
        }
        i += 1 + len as usize;
    }
    let qend = i + 4; // qtype + qclass
    if request.len() < qend {
        return false;
    }
    out.clear();
    // QR | AA | TC, RD echoed; rcode NOERROR; QDCOUNT=1, rest zero.
    out.extend_from_slice(&[
        request[0],
        request[1],
        0x86 | (request[2] & 0x01),
        0x00,
        0,
        1,
        0,
        0,
        0,
        0,
        0,
        0,
    ]);
    out.extend_from_slice(&request[12..qend]);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(limit: u32, slip: u32) -> RrlConfig {
        RrlConfig {
            responses_limit: limit,
            nxdomain_limit: limit,
            error_limit: limit,
            slip,
            ..Default::default()
        }
    }

    #[test]
    fn passes_until_limit_then_slips_on_cadence() {
        let rrl = Rrl::new(cfg(3, 2));
        let verdicts: Vec<RrlDecision> = (0..9)
            .map(|_| rrl.decide(7, ResponseClass::NxDomain, 100))
            .collect();
        use RrlDecision::*;
        assert_eq!(
            verdicts,
            vec![Pass, Pass, Pass, Slip, Drop, Slip, Drop, Slip, Drop]
        );
        let c = rrl.counters();
        assert_eq!((c.checked, c.passed, c.slipped, c.dropped), (9, 3, 3, 3));
    }

    #[test]
    fn window_roll_restores_the_full_budget() {
        let rrl = Rrl::new(cfg(2, 0));
        for _ in 0..5 {
            rrl.decide(1, ResponseClass::Answer, 500);
        }
        // Next window: budget back, independent of the previous one.
        assert_eq!(
            rrl.decide(1, ResponseClass::Answer, 1_000),
            RrlDecision::Pass
        );
        assert_eq!(
            rrl.decide(1, ResponseClass::Answer, 1_999),
            RrlDecision::Pass
        );
        assert_eq!(
            rrl.decide(1, ResponseClass::Answer, 1_999),
            RrlDecision::Drop
        );
    }

    #[test]
    fn buckets_are_independent_per_source_and_class() {
        let rrl = Rrl::new(cfg(1, 0));
        assert_eq!(rrl.decide(1, ResponseClass::Answer, 0), RrlDecision::Pass);
        assert_eq!(rrl.decide(1, ResponseClass::Answer, 0), RrlDecision::Drop);
        // Different source: fresh bucket.
        assert_eq!(rrl.decide(2, ResponseClass::Answer, 0), RrlDecision::Pass);
        // Same source, different class: fresh bucket.
        assert_eq!(rrl.decide(1, ResponseClass::NxDomain, 0), RrlDecision::Pass);
    }

    #[test]
    fn prefix_shift_aggregates_adjacent_sources() {
        let rrl = Rrl::new(RrlConfig {
            prefix_shift: 4,
            ..cfg(1, 0)
        });
        assert_eq!(
            rrl.decide(0x10, ResponseClass::Answer, 0),
            RrlDecision::Pass
        );
        // 0x1f shares the /60-equivalent prefix with 0x10.
        assert_eq!(
            rrl.decide(0x1f, ResponseClass::Answer, 0),
            RrlDecision::Drop
        );
        assert_eq!(
            rrl.decide(0x20, ResponseClass::Answer, 0),
            RrlDecision::Pass
        );
    }

    #[test]
    fn zero_limit_means_unlimited() {
        let rrl = Rrl::new(cfg(0, 2));
        for _ in 0..100 {
            assert_eq!(rrl.decide(1, ResponseClass::Answer, 0), RrlDecision::Pass);
        }
        assert_eq!(rrl.counters().passed, 100);
    }

    #[test]
    fn classify_covers_the_answer_matrix() {
        // Minimal header fixtures: [id, id, b2, b3, qd, qd, an, an, ns, ns, ar, ar].
        let mk = |b2: u8, rcode: u8, an: u16, ns: u16| {
            let mut h = vec![0u8, 1, b2, rcode, 0, 1, 0, 0, 0, 0, 0, 0];
            h[6..8].copy_from_slice(&an.to_be_bytes());
            h[8..10].copy_from_slice(&ns.to_be_bytes());
            h
        };
        assert_eq!(ResponseClass::of(&mk(0x84, 0, 2, 1)), ResponseClass::Answer);
        assert_eq!(
            ResponseClass::of(&mk(0x80, 0, 0, 3)),
            ResponseClass::Referral
        );
        assert_eq!(ResponseClass::of(&mk(0x84, 0, 0, 1)), ResponseClass::NoData);
        assert_eq!(
            ResponseClass::of(&mk(0x84, 3, 0, 2)),
            ResponseClass::NxDomain
        );
        assert_eq!(ResponseClass::of(&mk(0x80, 1, 0, 0)), ResponseClass::Error);
        assert_eq!(ResponseClass::of(&mk(0x80, 5, 0, 0)), ResponseClass::Error);
        assert_eq!(ResponseClass::of(&[0u8; 5]), ResponseClass::Error);
    }

    #[test]
    fn slip_reply_echoes_id_and_question_only() {
        // A real query: id 0xbeef, RD set, one question "ab." A IN.
        let req = [
            0xbe, 0xef, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0, 2, b'a', b'b', 0, 0, 1, 0, 1,
        ];
        let mut out = Vec::new();
        assert!(write_slip(&req, &mut out));
        assert_eq!(out[0..2], [0xbe, 0xef]);
        assert_eq!(out[2], 0x87); // QR | AA | TC | RD
        assert_eq!(out[3], 0x00);
        assert_eq!(&out[4..12], &[0, 1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(&out[12..], &req[12..20]);
        // Truncated garbage cannot be slipped.
        assert!(!write_slip(&req[..14], &mut out));
        assert!(!write_slip(&[0u8; 3], &mut out));
    }

    proptest! {
        /// Refill determinism: the verdict sequence of a (bucket, window)
        /// is a pure function of arrival count and config — two limiters
        /// fed the same arrivals agree verdict-by-verdict, regardless of
        /// seed, and regardless of traffic in other buckets or windows.
        #[test]
        fn verdicts_are_pure_in_bucket_and_window(
            limit in 0u32..40,
            slip in 0u32..5,
            arrivals in 1u64..200,
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
            noise in proptest::collection::vec((0u64..8, 0u64..20_000), 0..50),
        ) {
            let a = Rrl::new(RrlConfig { seed: seed_a, ..cfg(limit, slip) });
            let b = Rrl::new(RrlConfig { seed: seed_b, ..cfg(limit, slip) });
            // Interleave unrelated traffic into `b` only.
            for &(src, t) in &noise {
                b.decide(1000 + src, ResponseClass::Answer, t);
            }
            for k in 0..arrivals {
                let va = a.decide(42, ResponseClass::NxDomain, 300);
                let vb = b.decide(42, ResponseClass::NxDomain, 300);
                prop_assert_eq!(va, vb, "arrival {} diverged", k);
            }
        }

        /// Slip cadence exactness: the verdict stream of one window sums
        /// to the closed form `window_totals` predicts.
        #[test]
        fn verdict_stream_matches_closed_form(
            limit in 0u32..40,
            slip in 0u32..5,
            arrivals in 0u64..300,
        ) {
            let rrl = Rrl::new(cfg(limit, slip));
            let (mut p, mut s, mut d) = (0u64, 0u64, 0u64);
            for _ in 0..arrivals {
                match rrl.decide(9, ResponseClass::Error, 0) {
                    RrlDecision::Pass => p += 1,
                    RrlDecision::Slip => s += 1,
                    RrlDecision::Drop => d += 1,
                }
            }
            prop_assert_eq!((p, s, d), window_totals(arrivals, limit, slip));
            // And consecutive slips are exactly `slip` limited responses
            // apart — re-derive from the closed form at each prefix.
            // limit 0 bypasses the buckets entirely (nothing recorded).
            let stats = rrl.bucket_stats();
            if arrivals > 0 && limit > 0 {
                prop_assert_eq!(stats.len(), 1);
                prop_assert_eq!(stats[0].arrivals, arrivals);
                prop_assert_eq!((stats[0].passed, stats[0].slipped, stats[0].dropped), (p, s, d));
            }
        }

        /// Order independence: shuffling which bucket each arrival hits
        /// never changes any bucket's totals.
        #[test]
        fn totals_ignore_interleaving_order(
            arrivals in proptest::collection::vec((0u64..4, 0u64..3_000), 1..120),
            rot in 0usize..119,
        ) {
            let a = Rrl::new(cfg(3, 2));
            let b = Rrl::new(cfg(3, 2));
            for &(src, t) in &arrivals {
                a.decide(src, ResponseClass::NxDomain, t);
            }
            let rot = rot % arrivals.len();
            for &(src, t) in arrivals[rot..].iter().chain(&arrivals[..rot]) {
                b.decide(src, ResponseClass::NxDomain, t);
            }
            prop_assert_eq!(a.bucket_stats(), b.bucket_stats());
            prop_assert_eq!(a.counters(), b.counters());
        }

        /// Slipped replies always parse as empty truncated responses
        /// echoing the question, whatever the qname shape.
        #[test]
        fn slip_reply_is_wellformed_for_arbitrary_qnames(
            labels in proptest::collection::vec(
                proptest::collection::vec(0x61u8..0x7b, 1..20), 0..5),
            qtype in 1u16..260,
        ) {
            let mut req = vec![0x12, 0x34, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0];
            for l in &labels {
                req.push(l.len() as u8);
                req.extend_from_slice(l);
            }
            req.push(0);
            req.extend_from_slice(&qtype.to_be_bytes());
            req.extend_from_slice(&[0, 1]);
            let mut out = Vec::new();
            prop_assert!(write_slip(&req, &mut out));
            prop_assert_eq!(out.len(), req.len());
            prop_assert_eq!(out[2] & 0x02, 0x02, "TC must be set");
            prop_assert_eq!(&out[12..], &req[12..]);
        }
    }
}
