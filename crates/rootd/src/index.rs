//! The zone precompiled for serving.
//!
//! An authoritative server cannot afford a linear scan over the zone per
//! query (the root answers every query from the same small zone, so the
//! whole zone is indexed once at load). [`ZoneIndex`] precomputes what the
//! answer path needs:
//!
//! * positive RRsets keyed `(owner, type)` with their covering RRSIGs;
//! * the set of existing owner names (NODATA vs NXDOMAIN);
//! * per-TLD referral bundles: delegation NS in the authority section, DS
//!   (+RRSIG) for signed delegations, in-bailiwick glue as additionals;
//! * the apex SOA (+RRSIG) for negative responses;
//! * the NSEC chain in canonical order, for NXDOMAIN proofs.

use dns_wire::rdata::Rdata;
use dns_wire::{Name, Record, RrType};
use dns_zone::Zone;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A delegation response bundle for one TLD.
#[derive(Debug, Clone, Default)]
pub struct Referral {
    /// NS RRset at the TLD, plus DS and RRSIG(DS) when the query asks for
    /// DNSSEC.
    pub ns: Vec<Record>,
    pub ds: Vec<Record>,
    pub ds_rrsigs: Vec<Record>,
    /// In-bailiwick glue (A/AAAA of the delegated name servers).
    pub glue: Vec<Record>,
}

/// One positive answer: the RRset and its covering signatures.
#[derive(Debug, Clone, Default)]
pub struct RrsetEntry {
    pub records: Vec<Record>,
    pub rrsigs: Vec<Record>,
}

/// The result of a name/type lookup.
#[derive(Debug)]
pub enum Lookup<'a> {
    /// Authoritative data (apex RRsets, parent-side DS/NSEC at a cut).
    Answer(&'a RrsetEntry),
    /// The name is at or below a zone cut: delegate.
    Referral(&'a Referral),
    /// The name exists but has no data of this type.
    NoData,
    /// The name does not exist.
    NxDomain,
}

/// The signed root zone, precompiled into hash lookups.
#[derive(Debug)]
pub struct ZoneIndex {
    zone: Arc<Zone>,
    origin: Name,
    serial: u32,
    answers: HashMap<(Name, RrType), RrsetEntry>,
    names: HashSet<Name>,
    delegations: HashMap<Name, Referral>,
    /// Apex SOA and its RRSIG, for negative-response authority sections.
    negative_soa: Vec<Record>,
    negative_soa_rrsig: Vec<Record>,
    /// NSEC owners in canonical order with their records and signatures.
    nsec_chain: Vec<(Name, RrsetEntry)>,
}

impl ZoneIndex {
    /// Precompile `zone` for serving.
    pub fn build(zone: Arc<Zone>) -> ZoneIndex {
        let origin = zone.origin().clone();
        let serial = zone.serial().unwrap_or(0);
        let mut answers: HashMap<(Name, RrType), RrsetEntry> = HashMap::new();
        let mut names: HashSet<Name> = HashSet::new();

        // First pass: group records by (owner, type); attach RRSIGs to the
        // type they cover.
        for rec in zone.records() {
            names.insert(rec.name.clone());
            match &rec.rdata {
                Rdata::Rrsig(sig) => {
                    answers
                        .entry((rec.name.clone(), sig.type_covered))
                        .or_default()
                        .rrsigs
                        .push(rec.clone());
                }
                _ => {
                    answers
                        .entry((rec.name.clone(), rec.rr_type))
                        .or_default()
                        .records
                        .push(rec.clone());
                }
            }
        }

        // Second pass: delegation bundles. A delegated TLD is a non-apex
        // owner holding an NS RRset (the root zone has no in-zone cuts
        // deeper than one label).
        let mut delegations: HashMap<Name, Referral> = HashMap::new();
        for ((name, rr_type), entry) in &answers {
            if *rr_type != RrType::Ns || *name == origin || entry.records.is_empty() {
                continue;
            }
            let mut referral = Referral {
                ns: entry.records.clone(),
                ..Default::default()
            };
            if let Some(ds) = answers.get(&(name.clone(), RrType::Ds)) {
                referral.ds = ds.records.clone();
                referral.ds_rrsigs = ds.rrsigs.clone();
            }
            for ns in &referral.ns {
                let Rdata::Ns(target) = &ns.rdata else {
                    continue;
                };
                for glue_type in [RrType::A, RrType::Aaaa] {
                    if let Some(glue) = answers.get(&(target.clone(), glue_type)) {
                        referral.glue.extend(glue.records.iter().cloned());
                    }
                }
            }
            delegations.insert(name.clone(), referral);
        }

        let soa_entry = answers.get(&(origin.clone(), RrType::Soa));
        let negative_soa = soa_entry.map(|e| e.records.clone()).unwrap_or_default();
        let negative_soa_rrsig = soa_entry.map(|e| e.rrsigs.clone()).unwrap_or_default();

        let mut nsec_chain: Vec<(Name, RrsetEntry)> = answers
            .iter()
            .filter(|((_, t), _)| *t == RrType::Nsec)
            .map(|((n, _), e)| (n.clone(), e.clone()))
            .collect();
        nsec_chain.sort_by(|a, b| a.0.canonical_cmp(&b.0));

        ZoneIndex {
            zone,
            origin,
            serial,
            answers,
            names,
            delegations,
            negative_soa,
            negative_soa_rrsig,
            nsec_chain,
        }
    }

    /// The indexed zone (AXFR streams straight from it).
    pub fn zone(&self) -> &Arc<Zone> {
        &self.zone
    }

    /// Zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Zone serial.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// Delegated TLD labels (lowercase, no trailing dot), sorted — the
    /// load generator draws its in-zone query names from this.
    pub fn tld_labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .delegations
            .keys()
            .map(|n| n.to_string().trim_end_matches('.').to_ascii_lowercase())
            .collect();
        out.sort();
        out
    }

    /// Direct RRset access (the engine assembles priming glue from this).
    pub fn rrset(&self, name: &Name, rr_type: RrType) -> Option<&RrsetEntry> {
        self.answers.get(&(name.clone(), rr_type))
    }

    /// Every owner name the zone holds (answer-cache enumeration).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.names.iter()
    }

    /// The NSEC chain in canonical order: owner names with their NSEC
    /// records and signatures. The answer cache precompiles one NXDOMAIN
    /// template per link.
    pub fn nsec_chain(&self) -> &[(Name, RrsetEntry)] {
        &self.nsec_chain
    }

    /// SOA (+ RRSIG when `dnssec`) for negative-response authority.
    pub fn negative_authority(&self, dnssec: bool) -> Vec<Record> {
        let mut out = self.negative_soa.clone();
        if dnssec {
            out.extend(self.negative_soa_rrsig.iter().cloned());
        }
        out
    }

    /// The NSEC entry covering `name` (the chain link whose owner
    /// canonically precedes or equals it), for NXDOMAIN proofs.
    pub fn covering_nsec(&self, name: &Name) -> Option<&RrsetEntry> {
        if self.nsec_chain.is_empty() {
            return None;
        }
        let idx = match self
            .nsec_chain
            .binary_search_by(|(owner, _)| owner.canonical_cmp(name))
        {
            Ok(i) => i,
            // The chain wraps: a name before the first owner is covered by
            // the last link.
            Err(0) => self.nsec_chain.len() - 1,
            Err(i) => i - 1,
        };
        Some(&self.nsec_chain[idx].1)
    }

    /// Resolve a query name/type against the index.
    pub fn lookup(&self, name: &Name, rr_type: RrType) -> Lookup<'_> {
        if *name == self.origin {
            return match self.answers.get(&(name.clone(), rr_type)) {
                Some(entry) if !entry.records.is_empty() => Lookup::Answer(entry),
                _ => Lookup::NoData,
            };
        }
        // Find the zone cut: the ancestor of `name` at one label depth
        // (the root zone delegates exactly at TLD names).
        let mut cut = name.clone();
        while cut.label_count() > 1 {
            cut = cut.parent();
        }
        if let Some(referral) = self.delegations.get(&cut) {
            if *name == cut {
                // Parent-side types are answered authoritatively at the
                // cut itself (DS and the NSEC proving the delegation).
                if matches!(rr_type, RrType::Ds | RrType::Nsec) {
                    return match self.answers.get(&(name.clone(), rr_type)) {
                        Some(entry) if !entry.records.is_empty() => Lookup::Answer(entry),
                        _ => Lookup::NoData,
                    };
                }
            }
            return Lookup::Referral(referral);
        }
        if self.names.contains(name) {
            // Glue owners and other non-cut names the zone happens to hold.
            return match self.answers.get(&(name.clone(), rr_type)) {
                Some(entry) if !entry.records.is_empty() => Lookup::Answer(entry),
                _ => Lookup::NoData,
            };
        }
        Lookup::NxDomain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    fn index() -> ZoneIndex {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 8,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(1),
        );
        ZoneIndex::build(Arc::new(zone))
    }

    #[test]
    fn apex_rrsets_found_with_rrsigs() {
        let idx = index();
        match idx.lookup(&Name::root(), RrType::Soa) {
            Lookup::Answer(e) => {
                assert_eq!(e.records.len(), 1);
                assert!(!e.rrsigs.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match idx.lookup(&Name::root(), RrType::Ns) {
            Lookup::Answer(e) => assert_eq!(e.records.len(), 13),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tld_names_refer() {
        let idx = index();
        let com = Name::parse("com.").unwrap();
        match idx.lookup(&com, RrType::A) {
            Lookup::Referral(r) => {
                assert_eq!(r.ns.len(), 2);
                assert!(!r.ds.is_empty());
                assert_eq!(r.glue.len(), 4); // 2 NS × (A + AAAA)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Below the cut: still a referral.
        let www = Name::parse("www.com.").unwrap();
        assert!(matches!(idx.lookup(&www, RrType::A), Lookup::Referral(_)));
    }

    #[test]
    fn ds_at_cut_is_authoritative() {
        let idx = index();
        let com = Name::parse("com.").unwrap();
        match idx.lookup(&com, RrType::Ds) {
            Lookup::Answer(e) => {
                assert!(!e.records.is_empty());
                assert!(!e.rrsigs.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_and_nodata_distinguished() {
        let idx = index();
        let junk = Name::parse("zz9999doesnotexist.").unwrap();
        assert!(matches!(idx.lookup(&junk, RrType::A), Lookup::NxDomain));
        // Apex has no TXT: NODATA, not NXDOMAIN.
        assert!(matches!(
            idx.lookup(&Name::root(), RrType::Txt),
            Lookup::NoData
        ));
    }

    #[test]
    fn negative_authority_carries_soa_and_optionally_rrsig() {
        let idx = index();
        let plain = idx.negative_authority(false);
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].rr_type, RrType::Soa);
        let signed = idx.negative_authority(true);
        assert!(signed.iter().any(|r| r.rr_type == RrType::Rrsig));
    }

    #[test]
    fn covering_nsec_found_for_missing_name() {
        let idx = index();
        let junk = Name::parse("zz9999doesnotexist.").unwrap();
        let nsec = idx.covering_nsec(&junk).expect("signed zone has a chain");
        assert!(!nsec.records.is_empty());
        assert!(!nsec.rrsigs.is_empty());
    }

    #[test]
    fn tld_labels_enumerated() {
        let idx = index();
        let labels = idx.tld_labels();
        assert_eq!(labels.len(), 8);
        assert!(labels.contains(&"com".to_string()));
    }
}
