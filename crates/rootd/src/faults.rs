//! Deterministic fault injection between a client and a [`Transport`].
//!
//! The paper's RQ3 (§7) argues that parties ingesting the root zone must
//! "implement appropriate fallback mechanisms such as rescheduling a zone
//! transfer from a different root server" to survive bitflips and stale
//! copies. That fallback logic is only trustworthy if it is exercised
//! against the failures it exists for — so this module grows a seeded
//! chaos layer: [`FaultyTransport`] decorates any [`Transport`] and
//! injects datagram loss, duplication, reordering, fixed+jittered delay,
//! payload bitflips, mid-stream AXFR truncation, blackhole windows, and
//! garbage responses, all scheduled per upstream and per protocol by a
//! [`FaultPlan`].
//!
//! Every decision is derived from [`SimRng`] keyed on
//! `(plan seed, upstream id, protocol, exchange number)`, so a fault mix
//! replays bit-identically across runs; callers that need totals
//! independent of how exchanges are partitioned across worker threads
//! (the load generator) can key each exchange explicitly with
//! [`FaultyTransport::with_next_key`]. Per-fault counters mirror the
//! answer-cache hit/miss discipline: same plan seed ⇒ same
//! [`FaultCounters`], every run.
//!
//! A plan whose spec [`is_clean`](FaultSpec::is_clean) short-circuits to
//! the inner transport — byte-identical responses (asserted by
//! `tests/chaos_refresh.rs`) at a branch's worth of overhead (the
//! `rootd/serve_faultfree_wrapped` bench records it; cleanliness is
//! precomputed at construction so the fast path never touches the plan).
//!
//! ## Time
//!
//! Fault windows are defined on the [`simclock`] virtual-ms axis. Each
//! transport holds a [`ClockHandle`]; by default it is private, and
//! [`with_clock`](FaultyTransport::with_clock) shares one clock across
//! the transport and its client so that client waits (retry backoff,
//! timeout waits) move the same timeline the fault windows are declared
//! on. Exchanges bill outcome-based time: a blackholed or dropped
//! exchange costs the client timeout, a delayed response costs
//! `min(delay, timeout)`, a clean exchange costs nothing. Callers that
//! precompute arrival times (the load generator) pin one exchange to an
//! explicit instant with [`at_time`](FaultyTransport::at_time) — in that
//! mode the transport never writes the clock, which keeps fault totals
//! independent of worker partitioning.

use crate::transport::{Transport, TransportError, UdpBatch};
use netsim::rng::SimRng;
use simclock::ClockHandle;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Which wire protocol an exchange uses; fault schedules are per-protocol
/// (loss hits datagrams, truncation hits streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Udp,
    Tcp,
}

impl Protocol {
    fn id(self) -> u64 {
        match self {
            Protocol::Udp => 0,
            Protocol::Tcp => 1,
        }
    }
}

/// The fault mix applied to one (upstream, protocol) pair.
///
/// Probabilities are per exchange; delays are virtual milliseconds on
/// the transport's shared [`ClockHandle`] (nothing sleeps — determinism
/// over realism).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability the request (or its response) is silently lost.
    pub drop_prob: f64,
    /// Probability the delivered datagram is queued again and re-delivered
    /// by a later reorder.
    pub dup_prob: f64,
    /// Probability a previously queued (late/duplicated) datagram is
    /// delivered *instead of* the current response, which arrives later.
    pub reorder_prob: f64,
    /// Fixed injected latency per exchange.
    pub delay_ms: u64,
    /// Upper bound of the uniform jitter added on top of `delay_ms`.
    pub delay_jitter_ms: u64,
    /// Probability one uniformly chosen bit of the response is flipped —
    /// the RQ3 integrity fault, on the wire instead of in server RAM.
    pub bitflip_prob: f64,
    /// Probability a TCP message stream (an AXFR) is cut off mid-record:
    /// a suffix of the frames is lost and the last surviving frame ends
    /// mid-message.
    pub truncate_stream_prob: f64,
    /// Probability the response payload is replaced by seeded random
    /// bytes of the same length.
    pub garbage_prob: f64,
    /// Virtual-clock windows `[start_ms, end_ms)` during which every
    /// exchange vanishes (an upstream that is unreachable for a while).
    pub blackholes: Vec<(u64, u64)>,
}

impl FaultSpec {
    /// No faults at all.
    pub fn clean() -> FaultSpec {
        FaultSpec {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            delay_ms: 0,
            delay_jitter_ms: 0,
            bitflip_prob: 0.0,
            truncate_stream_prob: 0.0,
            garbage_prob: 0.0,
            blackholes: Vec::new(),
        }
    }

    /// Pure datagram loss at probability `p`.
    pub fn loss(p: f64) -> FaultSpec {
        FaultSpec {
            drop_prob: p,
            ..FaultSpec::clean()
        }
    }

    /// Bit corruption at probability `p`.
    pub fn bitflip(p: f64) -> FaultSpec {
        FaultSpec {
            bitflip_prob: p,
            ..FaultSpec::clean()
        }
    }

    /// An upstream that never answers (one blackhole window covering all
    /// of virtual time).
    pub fn blackhole() -> FaultSpec {
        FaultSpec {
            blackholes: vec![(0, u64::MAX)],
            ..FaultSpec::clean()
        }
    }

    /// Whether this spec can never perturb an exchange — the passthrough
    /// fast path (no RNG derivation, no draws).
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_prob == 0.0
            && self.delay_ms == 0
            && self.delay_jitter_ms == 0
            && self.bitflip_prob == 0.0
            && self.truncate_stream_prob == 0.0
            && self.garbage_prob == 0.0
            && self.blackholes.is_empty()
    }

    fn blackholed(&self, t_ms: u64) -> bool {
        self.blackholes.iter().any(|&(s, e)| t_ms >= s && t_ms < e)
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::clean()
    }
}

/// A seeded, per-upstream, per-protocol fault schedule.
///
/// Overrides are *windows* on the virtual-ms axis: [`set`](FaultPlan::set)
/// installs an all-of-time override, [`set_windowed`](FaultPlan::set_windowed)
/// a bounded one (how scenario events project onto the wire). Outside
/// every window the default spec applies.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed every fault decision derives from.
    pub seed: u64,
    /// Injected delay beyond this bound turns into a client-visible
    /// timeout (the response arrives after the client stopped waiting).
    pub client_timeout_ms: u64,
    default_spec: FaultSpec,
    per_upstream: HashMap<(u64, Protocol), Vec<FaultWindow>>,
}

/// One scheduled override: the virtual-ms window `[start, end)` and the
/// spec applied inside it.
type FaultWindow = (u64, u64, FaultSpec);

impl FaultPlan {
    /// A plan that injects nothing (useful as the wrap-overhead baseline).
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            client_timeout_ms: 1_000,
            default_spec: FaultSpec::clean(),
            per_upstream: HashMap::new(),
        }
    }

    /// Replace the spec applied where no per-upstream override exists.
    pub fn with_default(mut self, spec: FaultSpec) -> FaultPlan {
        self.default_spec = spec;
        self
    }

    /// Override the client timeout bound.
    pub fn with_timeout_ms(mut self, ms: u64) -> FaultPlan {
        self.client_timeout_ms = ms;
        self
    }

    /// Schedule `spec` for one (upstream, protocol) pair across all of
    /// virtual time, replacing any existing windows.
    pub fn set(&mut self, upstream: u64, proto: Protocol, spec: FaultSpec) {
        self.per_upstream
            .insert((upstream, proto), vec![(0, u64::MAX, spec)]);
    }

    /// Schedule `spec` for one (upstream, protocol) pair during the
    /// virtual-ms window `[start_ms, end_ms)`. Windows are consulted in
    /// insertion order; the first one containing the exchange time wins.
    pub fn set_windowed(
        &mut self,
        upstream: u64,
        proto: Protocol,
        window: (u64, u64),
        spec: FaultSpec,
    ) {
        self.per_upstream
            .entry((upstream, proto))
            .or_default()
            .push((window.0, window.1, spec));
    }

    /// Schedule `spec` for both protocols of `upstream`.
    pub fn set_both(&mut self, upstream: u64, spec: FaultSpec) {
        self.set(upstream, Protocol::Udp, spec.clone());
        self.set(upstream, Protocol::Tcp, spec);
    }

    /// Schedule `spec` for both protocols of `upstream` during one
    /// virtual-ms window.
    pub fn set_both_windowed(&mut self, upstream: u64, window: (u64, u64), spec: FaultSpec) {
        self.set_windowed(upstream, Protocol::Udp, window, spec.clone());
        self.set_windowed(upstream, Protocol::Tcp, window, spec);
    }

    /// The spec in force for one (upstream, protocol) pair at virtual
    /// time zero — the whole story for plans built with [`set`](FaultPlan::set).
    pub fn spec(&self, upstream: u64, proto: Protocol) -> &FaultSpec {
        self.spec_at(upstream, proto, 0)
    }

    /// The spec in force for one (upstream, protocol) pair at virtual
    /// time `t_ms`.
    pub fn spec_at(&self, upstream: u64, proto: Protocol, t_ms: u64) -> &FaultSpec {
        self.per_upstream
            .get(&(upstream, proto))
            .and_then(|windows| {
                windows
                    .iter()
                    .find(|&&(s, e, _)| t_ms >= s && t_ms < e)
                    .map(|(_, _, spec)| spec)
            })
            .unwrap_or(&self.default_spec)
    }

    /// Whether no window or default could ever perturb this (upstream,
    /// protocol) pair — precomputed by [`FaultyTransport::new`] so the
    /// per-exchange fast path is a boolean test, not a plan lookup.
    fn always_clean(&self, upstream: u64, proto: Protocol) -> bool {
        self.default_spec.is_clean()
            && !self
                .per_upstream
                .get(&(upstream, proto))
                .is_some_and(|windows| windows.iter().any(|(_, _, spec)| !spec.is_clean()))
    }
}

/// What the fault layer did, per fault class. Deterministic for a given
/// (plan seed, exchange-key sequence) — the chaos harness asserts two runs
/// produce equal values, like the PR 4 cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Exchanges that reached the fault layer.
    pub exchanges: u64,
    /// Exchanges forwarded without any perturbation.
    pub clean: u64,
    /// Requests swallowed by a blackhole window.
    pub blackholed: u64,
    /// Requests/responses dropped by the loss dice.
    pub drops: u64,
    /// Responses delayed past the client timeout (delivered to nobody).
    pub timeouts_induced: u64,
    /// Exchanges that had nonzero latency injected.
    pub delayed: u64,
    /// Responses with one bit flipped.
    pub bitflips: u64,
    /// TCP streams cut off mid-record.
    pub truncations: u64,
    /// Responses replaced with random bytes.
    pub garbage: u64,
    /// Responses queued for re-delivery.
    pub duplicates: u64,
    /// Stale queued datagrams delivered in place of the fresh response.
    pub reorders: u64,
}

impl FaultCounters {
    /// Sum of all injected faults (everything except `exchanges`/`clean`).
    pub fn total_faults(&self) -> u64 {
        self.blackholed
            + self.drops
            + self.timeouts_induced
            + self.bitflips
            + self.truncations
            + self.garbage
            + self.duplicates
            + self.reorders
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.exchanges += other.exchanges;
        self.clean += other.clean;
        self.blackholed += other.blackholed;
        self.drops += other.drops;
        self.timeouts_induced += other.timeouts_induced;
        self.delayed += other.delayed;
        self.bitflips += other.bitflips;
        self.truncations += other.truncations;
        self.garbage += other.garbage;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
    }

    /// One-line summary in the counter style `Metrics::render` uses.
    pub fn render(&self) -> String {
        format!(
            "exchanges={} clean={} blackholed={} drops={} timeouts={} bitflips={} \
             truncations={} garbage={} dups={} reorders={}",
            self.exchanges,
            self.clean,
            self.blackholed,
            self.drops,
            self.timeouts_induced,
            self.bitflips,
            self.truncations,
            self.garbage,
            self.duplicates,
            self.reorders,
        )
    }
}

/// A [`Transport`] decorator that injects the faults a [`FaultPlan`]
/// schedules for its upstream.
#[derive(Debug, Clone)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: Arc<FaultPlan>,
    upstream: u64,
    /// Exchange counter; the default per-exchange derivation key.
    seq: u64,
    /// Explicit key for the next exchange (see [`with_next_key`]).
    ///
    /// [`with_next_key`]: FaultyTransport::with_next_key
    next_key: Option<u64>,
    /// The virtual clock fault windows are evaluated against. Private by
    /// default; [`with_clock`](FaultyTransport::with_clock) shares the
    /// client's clock so its waits and our windows live on one axis.
    clock: ClockHandle,
    /// Explicit instant for the next exchange (see [`at_time`]); while an
    /// exchange is pinned this way the clock is read-only.
    ///
    /// [`at_time`]: FaultyTransport::at_time
    next_time: Option<u64>,
    /// Precomputed per-protocol "this plan can never perturb us" flags —
    /// the zero-fault fast path costs a boolean test, not a plan lookup.
    clean_udp: bool,
    clean_tcp: bool,
    /// Datagrams in flight: delayed past the timeout or duplicated, they
    /// linger here until a reorder decision delivers one.
    pending: VecDeque<Vec<u8>>,
    counters: FaultCounters,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, applying the faults `plan` schedules for `upstream`,
    /// on a private clock starting at 0 ms.
    pub fn new(inner: T, plan: Arc<FaultPlan>, upstream: u64) -> FaultyTransport<T> {
        let clean_udp = plan.always_clean(upstream, Protocol::Udp);
        let clean_tcp = plan.always_clean(upstream, Protocol::Tcp);
        FaultyTransport {
            inner,
            plan,
            upstream,
            seq: 0,
            next_key: None,
            clock: ClockHandle::new(),
            next_time: None,
            clean_udp,
            clean_tcp,
            pending: VecDeque::new(),
            counters: FaultCounters::default(),
        }
    }

    /// Share `clock` with this transport: fault windows are evaluated at
    /// the instant the clock shows when an exchange starts, and exchange
    /// outcomes advance it (a timeout costs the client timeout, a delayed
    /// answer its delay). Anything else holding the handle — retry
    /// backoff, a scheduler — moves the same timeline.
    pub fn with_clock(mut self, clock: ClockHandle) -> FaultyTransport<T> {
        self.clock = clock;
        self
    }

    /// Key the next exchange's fault derivation explicitly instead of by
    /// this transport's own exchange counter. The load generator keys by
    /// global query index so fault totals do not depend on how queries are
    /// partitioned across worker threads.
    pub fn with_next_key(&mut self, key: u64) -> &mut Self {
        self.next_key = Some(key);
        self
    }

    /// Pin the next exchange to virtual instant `t_ms` instead of the
    /// clock's current reading. The exchange never writes the clock:
    /// callers that precompute arrival schedules (the load generator)
    /// stay deterministic across worker partitioning because no thread
    /// interleaving can skew the times windows are evaluated at.
    pub fn at_time(&mut self, t_ms: u64) -> &mut Self {
        self.next_time = Some(t_ms);
        self
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Current virtual time in milliseconds.
    pub fn virtual_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// The clock this transport evaluates fault windows against.
    pub fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The per-exchange decision stream: a fresh RNG per (upstream,
    /// protocol, key) tuple, so one exchange's outcome is a pure function
    /// of its key no matter what happened before it.
    fn dice(&mut self, proto: Protocol) -> SimRng {
        self.seq += 1;
        let key = self.next_key.take().unwrap_or(self.seq);
        SimRng::new(self.plan.seed).derive_ids(&[0xfa17, self.upstream, proto.id(), key])
    }

    /// The instant this exchange happens at: an explicit [`at_time`]
    /// pin, or the shared clock's current reading. Returns `(t0,
    /// pinned)`; a pinned exchange must not write the clock.
    ///
    /// [`at_time`]: FaultyTransport::at_time
    fn begin(&mut self) -> (u64, bool) {
        match self.next_time.take() {
            Some(t) => (t, true),
            None => (self.clock.now_ms(), false),
        }
    }

    /// Bill `wait_ms` of client-visible waiting to the shared clock —
    /// unless the exchange was pinned to an explicit instant, in which
    /// case the caller owns the timeline.
    fn bill(&mut self, pinned: bool, wait_ms: u64) {
        if !pinned && wait_ms > 0 {
            self.clock.advance(wait_ms);
        }
    }

    /// Draw the injected latency for this exchange (fixed + jitter).
    fn draw_delay(&mut self, spec: &FaultSpec, rng: &mut SimRng) -> u64 {
        let jitter = if spec.delay_jitter_ms > 0 {
            rng.next_range(spec.delay_jitter_ms as usize + 1) as u64
        } else {
            0
        };
        let delay = spec.delay_ms + jitter;
        if delay > 0 {
            self.counters.delayed += 1;
        }
        delay
    }
}

/// Flip one uniformly chosen bit of `buf`.
fn flip_random_bit(buf: &mut [u8], rng: &mut SimRng) {
    if buf.is_empty() {
        return;
    }
    let bit = rng.next_range(buf.len() * 8);
    buf[bit / 8] ^= 1 << (bit % 8);
}

/// Replace `buf` with seeded random bytes of the same length.
fn garble(buf: &mut [u8], rng: &mut SimRng) {
    for b in buf.iter_mut() {
        *b = (rng.next_u64() & 0xff) as u8;
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// The perturbing tail of a datagram exchange: dice already owed, spec
    /// known dirty. Split out of [`exchange_udp_into`] so the two clean
    /// fast paths above it stay branch-cheap and allocation-free.
    ///
    /// [`exchange_udp_into`]: Transport::exchange_udp_into
    fn exchange_udp_dirty(
        &mut self,
        request: &[u8],
        resp: &mut Vec<u8>,
        t0: u64,
        pinned: bool,
        spec: &FaultSpec,
    ) -> Result<bool, TransportError> {
        let timeout = self.plan.client_timeout_ms;
        let mut rng = self.dice(Protocol::Udp);
        // All dice are rolled up front, in a fixed order, so every counter
        // is a pure function of the exchange key even when an earlier
        // fault preempts a later one.
        let delay = self.draw_delay(spec, &mut rng);
        let dropped = rng.chance(spec.drop_prob);
        let garbage = rng.chance(spec.garbage_prob);
        let bitflip = rng.chance(spec.bitflip_prob);
        let reorder = rng.chance(spec.reorder_prob);
        let duplicate = rng.chance(spec.dup_prob);
        if spec.blackholed(t0) {
            self.counters.blackholed += 1;
            self.bill(pinned, timeout);
            return Ok(false);
        }
        if dropped {
            self.counters.drops += 1;
            self.bill(pinned, timeout);
            return Ok(false);
        }
        if !self.inner.exchange_udp_into(request, resp)? {
            self.bill(pinned, timeout);
            return Ok(false);
        }
        if delay > timeout {
            // The answer exists but lands after the client gave up; it
            // lingers in flight, and a later reorder may deliver it.
            self.counters.timeouts_induced += 1;
            self.pending.push_back(std::mem::take(resp));
            self.bill(pinned, timeout);
            return Ok(false);
        }
        self.bill(pinned, delay);
        if garbage {
            self.counters.garbage += 1;
            garble(resp, &mut rng);
        } else if bitflip {
            self.counters.bitflips += 1;
            flip_random_bit(resp, &mut rng);
        }
        if reorder {
            self.counters.reorders += 1;
            if let Some(stale) = self.pending.pop_front() {
                let fresh = std::mem::replace(resp, stale);
                self.pending.push_back(fresh);
            }
        }
        if duplicate {
            self.counters.duplicates += 1;
            self.pending.push_back(resp.clone());
        }
        Ok(true)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        // The clean fast paths forward to the inner transport's own
        // allocating exchange rather than routing through
        // `exchange_udp_into` — keeping this, the benched wrapper path,
        // codegen-identical to the bare transport call (the <5% overhead
        // bound in `bench_faultfree_wrapper` is on exactly this method).
        self.counters.exchanges += 1;
        if self.clean_udp {
            self.seq += 1;
            self.next_key = None;
            self.next_time = None;
            self.counters.clean += 1;
            return self.inner.exchange_udp(request);
        }
        let (t0, pinned) = self.begin();
        let spec = self.plan.spec_at(self.upstream, Protocol::Udp, t0).clone();
        if spec.is_clean() {
            self.seq += 1;
            self.next_key = None;
            self.counters.clean += 1;
            return self.inner.exchange_udp(request);
        }
        let mut resp = Vec::new();
        Ok(self
            .exchange_udp_dirty(request, &mut resp, t0, pinned, &spec)?
            .then_some(resp))
    }

    fn exchange_udp_into(
        &mut self,
        request: &[u8],
        resp: &mut Vec<u8>,
    ) -> Result<bool, TransportError> {
        self.counters.exchanges += 1;
        if self.clean_udp {
            self.seq += 1;
            self.next_key = None;
            self.next_time = None;
            self.counters.clean += 1;
            return self.inner.exchange_udp_into(request, resp);
        }
        let (t0, pinned) = self.begin();
        let spec = self.plan.spec_at(self.upstream, Protocol::Udp, t0).clone();
        if spec.is_clean() {
            // Outside every fault window: forward untouched, cost nothing.
            self.seq += 1;
            self.next_key = None;
            self.counters.clean += 1;
            return self.inner.exchange_udp_into(request, resp);
        }
        self.exchange_udp_dirty(request, resp, t0, pinned, &spec)
    }

    /// Batched exchange under the fault plan: every datagram rolls its own
    /// dice, exactly as a sequence of one-shot exchanges would. A pending
    /// [`with_next_key`] seeds the whole batch — datagram `i` gets
    /// `key + i`, so fault totals stay independent of how a query stream
    /// is split into batches (and across worker shards). A pending
    /// [`at_time`] pins every datagram in the batch to that instant (a
    /// recvmmsg burst arrives "at once"); the clock is never written then.
    ///
    /// [`with_next_key`]: FaultyTransport::with_next_key
    /// [`at_time`]: FaultyTransport::at_time
    fn exchange_udp_batch(&mut self, batch: &mut UdpBatch) -> Result<(), TransportError> {
        let n = batch.len();
        let base_key = self.next_key.take();
        let pin = self.next_time.take();
        if self.clean_udp {
            // Whole-batch fast path: forward to the inner transport's own
            // batched exchange, billing counters as n clean one-shots.
            self.seq += n as u64;
            self.counters.exchanges += n as u64;
            self.counters.clean += n as u64;
            return self.inner.exchange_udp_batch(batch);
        }
        for i in 0..n {
            if let Some(key) = base_key {
                self.next_key = Some(key + i as u64);
            }
            if let Some(t) = pin {
                self.next_time = Some(t);
            }
            let answered = {
                let (req, scratch) = batch.io(i);
                self.exchange_udp_into(req, scratch)?
            };
            batch.commit_response(answered);
        }
        Ok(())
    }

    fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
        self.counters.exchanges += 1;
        if self.clean_tcp {
            self.seq += 1;
            self.next_key = None;
            self.next_time = None;
            self.counters.clean += 1;
            return self.inner.exchange_tcp(request);
        }
        let (t0, pinned) = self.begin();
        let spec = self.plan.spec_at(self.upstream, Protocol::Tcp, t0).clone();
        if spec.is_clean() {
            self.seq += 1;
            self.next_key = None;
            self.counters.clean += 1;
            return self.inner.exchange_tcp(request);
        }
        let timeout = self.plan.client_timeout_ms;
        let mut rng = self.dice(Protocol::Tcp);
        let delay = self.draw_delay(&spec, &mut rng);
        let dropped = rng.chance(spec.drop_prob);
        let truncate = rng.chance(spec.truncate_stream_prob);
        let garbage = rng.chance(spec.garbage_prob);
        let bitflip = rng.chance(spec.bitflip_prob);
        let duplicate = rng.chance(spec.dup_prob);
        let reorder = rng.chance(spec.reorder_prob);
        if spec.blackholed(t0) {
            self.counters.blackholed += 1;
            self.bill(pinned, timeout);
            return Err(TransportError::Timeout);
        }
        if dropped {
            self.counters.drops += 1;
            self.bill(pinned, timeout);
            return Err(TransportError::Timeout);
        }
        let mut frames = self.inner.exchange_tcp(request)?;
        if delay > timeout {
            self.counters.timeouts_induced += 1;
            self.bill(pinned, timeout);
            return Err(TransportError::Timeout);
        }
        self.bill(pinned, delay);
        if frames.is_empty() {
            return Ok(frames);
        }
        if truncate {
            // The connection dies mid-transfer: a suffix of the message
            // stream is lost, and the last message that did arrive ends
            // mid-record (a strict prefix of its bytes).
            self.counters.truncations += 1;
            let keep = 1 + rng.next_range(frames.len());
            frames.truncate(keep);
            if let Some(last) = frames.last_mut() {
                if last.len() > 2 {
                    let cut = 1 + rng.next_range(last.len() - 1);
                    last.truncate(cut);
                }
            }
        }
        if garbage {
            self.counters.garbage += 1;
            let idx = rng.next_range(frames.len());
            garble(&mut frames[idx], &mut rng);
        } else if bitflip {
            self.counters.bitflips += 1;
            let idx = rng.next_range(frames.len());
            flip_random_bit(&mut frames[idx], &mut rng);
        }
        if duplicate {
            // A repeated segment: one message shows up twice in sequence.
            self.counters.duplicates += 1;
            let idx = rng.next_range(frames.len());
            let copy = frames[idx].clone();
            frames.insert(idx, copy);
        }
        if reorder && frames.len() >= 2 {
            self.counters.reorders += 1;
            let idx = rng.next_range(frames.len() - 1);
            frames.swap(idx, idx + 1);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Rootd, SiteIdentity};
    use crate::index::ZoneIndex;
    use crate::transport::InprocTransport;
    use dns_wire::{Message, Name, Question, RrType};
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    fn inproc() -> InprocTransport {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 6,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        );
        InprocTransport::new(Arc::new(Rootd::new(
            Arc::new(ZoneIndex::build(Arc::new(zone))),
            SiteIdentity::named("faults-test"),
        )))
    }

    fn soa_query(id: u16) -> Vec<u8> {
        Message::query(id, Question::new(Name::root(), RrType::Soa)).to_wire()
    }

    fn axfr_query(id: u16) -> Vec<u8> {
        Message::query(id, Question::new(Name::root(), RrType::Axfr)).to_wire()
    }

    #[test]
    fn clean_plan_is_byte_identical_to_bare_transport() {
        let mut bare = inproc();
        let mut wrapped = FaultyTransport::new(inproc(), Arc::new(FaultPlan::clean(7)), 0);
        for id in 0..50u16 {
            let q = soa_query(id);
            assert_eq!(
                bare.exchange_udp(&q).unwrap(),
                wrapped.exchange_udp(&q).unwrap()
            );
        }
        let axfr = axfr_query(99);
        assert_eq!(
            bare.exchange_tcp(&axfr).unwrap(),
            wrapped.exchange_tcp(&axfr).unwrap()
        );
        let c = wrapped.counters();
        assert_eq!(c.exchanges, 51);
        assert_eq!(c.clean, 51);
        assert_eq!(c.total_faults(), 0);
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let plan = Arc::new(FaultPlan::clean(11).with_default(FaultSpec::loss(0.5)));
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        let mut answered = 0;
        for id in 0..400u16 {
            if t.exchange_udp(&soa_query(id)).unwrap().is_some() {
                answered += 1;
            }
        }
        let c = t.counters();
        assert_eq!(c.drops + answered, 400);
        assert!((120..=280).contains(&answered), "answered = {answered}");
    }

    #[test]
    fn same_seed_same_counters_different_seed_different_stream() {
        let spec = FaultSpec {
            drop_prob: 0.3,
            bitflip_prob: 0.2,
            garbage_prob: 0.1,
            delay_ms: 10,
            delay_jitter_ms: 40,
            ..FaultSpec::clean()
        };
        let run = |seed: u64| {
            let plan = Arc::new(FaultPlan::clean(seed).with_default(spec.clone()));
            let mut t = FaultyTransport::new(inproc(), plan, 3);
            for id in 0..300u16 {
                let _ = t.exchange_udp(&soa_query(id));
            }
            t.counters()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn explicit_keys_make_totals_partition_independent() {
        let spec = FaultSpec {
            drop_prob: 0.4,
            bitflip_prob: 0.2,
            ..FaultSpec::clean()
        };
        // Two transports splitting the same key range arbitrarily must sum
        // to one transport consuming it whole.
        let plan = Arc::new(FaultPlan::clean(9).with_default(spec));
        let totals = |splits: &[std::ops::Range<u64>]| {
            let mut sum = FaultCounters::default();
            for range in splits {
                let mut t = FaultyTransport::new(inproc(), Arc::clone(&plan), 0);
                for key in range.clone() {
                    t.with_next_key(key);
                    let _ = t.exchange_udp(&soa_query(key as u16));
                }
                sum.merge(&t.counters());
            }
            sum
        };
        // One whole-range element, not a range expression for a Vec:
        #[allow(clippy::single_range_in_vec_init)]
        let whole = [0..500];
        assert_eq!(totals(&whole), totals(&[0..137, 137..400, 400..500]));
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit() {
        let plan = Arc::new(FaultPlan::clean(3).with_default(FaultSpec::bitflip(1.0)));
        let mut wrapped = FaultyTransport::new(inproc(), plan, 0);
        let mut bare = inproc();
        let q = soa_query(1);
        let clean = bare.exchange_udp(&q).unwrap().unwrap();
        let dirty = wrapped.exchange_udp(&q).unwrap().unwrap();
        assert_eq!(clean.len(), dirty.len());
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn blackhole_window_swallows_everything_inside_it() {
        let spec = FaultSpec {
            blackholes: vec![(0, u64::MAX)],
            ..FaultSpec::clean()
        };
        let plan = Arc::new(FaultPlan::clean(5).with_default(spec));
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        for id in 0..20u16 {
            assert_eq!(t.exchange_udp(&soa_query(id)).unwrap(), None);
        }
        assert!(matches!(
            t.exchange_tcp(&axfr_query(21)),
            Err(TransportError::Timeout)
        ));
        assert_eq!(t.counters().blackholed, 21);
    }

    #[test]
    fn truncated_axfr_stream_loses_its_tail_mid_message() {
        let spec = FaultSpec {
            truncate_stream_prob: 1.0,
            ..FaultSpec::clean()
        };
        let plan = Arc::new(FaultPlan::clean(17).with_default(spec));
        let mut wrapped = FaultyTransport::new(inproc(), plan, 0);
        let mut bare = inproc();
        let q = axfr_query(2);
        let full = bare.exchange_tcp(&q).unwrap();
        let cut = wrapped.exchange_tcp(&q).unwrap();
        assert_eq!(wrapped.counters().truncations, 1);
        assert!(!cut.is_empty());
        assert!(
            cut.len() < full.len() || cut.last().unwrap().len() < full[cut.len() - 1].len(),
            "stream must lose frames or end mid-message"
        );
        // The surviving tail never parses as a complete message.
        assert!(Message::from_wire(cut.last().unwrap()).is_err());
    }

    #[test]
    fn delay_past_timeout_is_a_client_visible_timeout() {
        let spec = FaultSpec {
            delay_ms: 5_000,
            ..FaultSpec::clean()
        };
        let plan = Arc::new(
            FaultPlan::clean(23)
                .with_timeout_ms(1_000)
                .with_default(spec),
        );
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        assert_eq!(t.exchange_udp(&soa_query(1)).unwrap(), None);
        assert_eq!(t.counters().timeouts_induced, 1);
        // The client waits its timeout — not the full injected delay the
        // response is still in flight for.
        assert_eq!(t.virtual_ms(), 1_000);
    }

    #[test]
    fn a_shared_clock_lets_waits_move_fault_windows() {
        // Blackhole for the first 5 s of virtual time only.
        let spec = FaultSpec {
            blackholes: vec![(0, 5_000)],
            ..FaultSpec::clean()
        };
        let plan = Arc::new(FaultPlan::clean(2).with_default(spec));
        let clock = ClockHandle::new();
        let mut t = FaultyTransport::new(inproc(), plan, 0).with_clock(clock.clone());
        // Inside the window: swallowed, and the timeout it cost moved the
        // shared clock.
        assert_eq!(t.exchange_udp(&soa_query(1)).unwrap(), None);
        assert_eq!(clock.now_ms(), 1_000);
        // The client backs off on the same clock...
        clock.sleep(4_000);
        // ...and the very same upstream answers: the window was time, not
        // an exchange count.
        assert!(t.exchange_udp(&soa_query(2)).unwrap().is_some());
        assert_eq!(t.counters().blackholed, 1);
    }

    #[test]
    fn windowed_specs_apply_only_inside_their_window() {
        let mut plan = FaultPlan::clean(4);
        plan.set_windowed(0, Protocol::Udp, (2_000, 3_000), FaultSpec::loss(1.0));
        let plan = Arc::new(plan);
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        // Before the window: clean.
        assert!(t.at_time(0).exchange_udp(&soa_query(1)).unwrap().is_some());
        // Inside: total loss.
        assert_eq!(t.at_time(2_500).exchange_udp(&soa_query(2)).unwrap(), None);
        // After: clean again.
        assert!(t
            .at_time(3_000)
            .exchange_udp(&soa_query(3))
            .unwrap()
            .is_some());
        let c = t.counters();
        assert_eq!((c.clean, c.drops), (2, 1));
    }

    #[test]
    fn pinned_exchanges_never_write_the_clock() {
        let plan = Arc::new(
            FaultPlan::clean(6)
                .with_timeout_ms(1_000)
                .with_default(FaultSpec::loss(1.0)),
        );
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        assert_eq!(t.at_time(7_000).exchange_udp(&soa_query(1)).unwrap(), None);
        assert_eq!(t.virtual_ms(), 0, "pinned exchange must not bill time");
        // An unpinned drop bills the client timeout.
        assert_eq!(t.exchange_udp(&soa_query(2)).unwrap(), None);
        assert_eq!(t.virtual_ms(), 1_000);
    }

    #[test]
    fn reorder_delivers_a_stale_datagram_with_the_old_id() {
        // Some responses are delayed past the timeout (stay in flight);
        // later reorders deliver them against newer queries, so the
        // client sees responses whose IDs do not match — exactly the
        // condition the refresh client's ID check exists for.
        let mixed = FaultSpec {
            delay_ms: 0,
            delay_jitter_ms: 3_000,
            reorder_prob: 0.5,
            ..FaultSpec::clean()
        };
        let plan = Arc::new(
            FaultPlan::clean(31)
                .with_timeout_ms(1_000)
                .with_default(mixed),
        );
        let mut t = FaultyTransport::new(inproc(), plan, 0);
        let mut mismatched = 0;
        for id in 0..200u16 {
            if let Some(resp) = t.exchange_udp(&soa_query(id)).unwrap() {
                let got = u16::from_be_bytes([resp[0], resp[1]]);
                if got != id {
                    mismatched += 1;
                }
            }
        }
        let c = t.counters();
        assert!(c.timeouts_induced > 0, "{c:?}");
        assert!(mismatched > 0, "reorders must surface stale IDs: {c:?}");
    }

    #[test]
    fn faulted_batch_is_byte_identical_to_one_shot_faulted_path() {
        let spec = FaultSpec {
            drop_prob: 0.3,
            bitflip_prob: 0.2,
            garbage_prob: 0.1,
            ..FaultSpec::clean()
        };
        let plan = Arc::new(FaultPlan::clean(21).with_default(spec));
        let queries: Vec<Vec<u8>> = (0..200u16).map(soa_query).collect();
        // Reference: one-shot exchanges keyed 0..n, all pinned to one
        // instant (a burst arriving "at once").
        let mut one = FaultyTransport::new(inproc(), Arc::clone(&plan), 0);
        let mut singles = Vec::new();
        for (key, q) in queries.iter().enumerate() {
            one.with_next_key(key as u64).at_time(500);
            singles.push(one.exchange_udp(q).unwrap());
        }
        // The batch path with the same base key and pin must reproduce
        // every byte, every drop, and every counter.
        let mut batched = FaultyTransport::new(inproc(), Arc::clone(&plan), 0);
        let mut batch = UdpBatch::new();
        for q in &queries {
            batch.push_request(q);
        }
        batched.with_next_key(0).at_time(500);
        batched.exchange_udp_batch(&mut batch).unwrap();
        for (i, single) in singles.iter().enumerate() {
            assert_eq!(batch.response(i), single.as_deref(), "datagram {i}");
        }
        assert_eq!(batched.counters(), one.counters());
        assert!(batched.counters().drops > 0, "loss dice must have fired");
        assert_eq!(batched.virtual_ms(), 0, "pinned batch must not bill time");
    }

    #[test]
    fn clean_batch_fast_path_matches_dirty_loop_semantics() {
        let queries: Vec<Vec<u8>> = (0..40u16).map(soa_query).collect();
        let mut wrapped = FaultyTransport::new(inproc(), Arc::new(FaultPlan::clean(7)), 0);
        let mut batch = UdpBatch::new();
        for q in &queries {
            batch.push_request(q);
        }
        wrapped.with_next_key(17).at_time(9_000);
        wrapped.exchange_udp_batch(&mut batch).unwrap();
        let mut bare = inproc();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                batch.response(i),
                bare.exchange_udp(q).unwrap().as_deref(),
                "clean batch diverged on {i}"
            );
        }
        let c = wrapped.counters();
        assert_eq!((c.exchanges, c.clean), (40, 40));
        // The pending key/pin were consumed by the batch, not leaked into
        // the next exchange.
        assert!(wrapped.exchange_udp(&soa_query(99)).unwrap().is_some());
        assert_eq!(wrapped.virtual_ms(), 0);
    }

    /// An in-proc inner transport that counts engine-level drops, so the
    /// reconciliation test below can attribute every empty response span
    /// to exactly one layer (transport dice vs. engine verdict).
    struct CountingInner {
        inner: InprocTransport,
        engine_drops: u64,
    }

    impl Transport for CountingInner {
        fn exchange_udp(&mut self, request: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
            let resp = self.inner.exchange_udp(request)?;
            if resp.is_none() {
                self.engine_drops += 1;
            }
            Ok(resp)
        }

        fn exchange_udp_into(
            &mut self,
            request: &[u8],
            resp: &mut Vec<u8>,
        ) -> Result<bool, TransportError> {
            let answered = self.inner.exchange_udp_into(request, resp)?;
            if !answered {
                self.engine_drops += 1;
            }
            Ok(answered)
        }

        fn exchange_tcp(&mut self, request: &[u8]) -> Result<Vec<Vec<u8>>, TransportError> {
            self.inner.exchange_tcp(request)
        }
    }

    #[test]
    fn batch_drop_accounting_reconciles_tally_and_fault_counters_across_shards() {
        use crate::engine::{Rootd, SiteIdentity};
        use crate::index::ZoneIndex;
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 6,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        );
        let engine = Arc::new(Rootd::new(
            Arc::new(ZoneIndex::build(Arc::new(zone))),
            SiteIdentity::named("recon-test"),
        ));
        let total = 440usize;
        // Sub-header garbage at every 11th-ish slot: the engine drops it.
        let queries: Vec<Vec<u8>> = (0..total)
            .map(|g| {
                if g % 11 == 5 {
                    vec![0xab; 5]
                } else {
                    soa_query(g as u16)
                }
            })
            .collect();
        let malformed = queries.iter().filter(|q| q.len() < 12).count() as u64;

        // Server side, no faults in the way: BatchTally records every
        // engine drop, and the slab span table records them in place.
        let mut server_batch = UdpBatch::new();
        for q in &queries {
            server_batch.push_request(q);
        }
        let tally = engine.serve_udp_batch(&mut server_batch);
        assert_eq!(tally.dropped, malformed);
        assert_eq!(tally.hits + tally.fallbacks + tally.dropped, total as u64);
        for (g, q) in queries.iter().enumerate() {
            assert_eq!(
                server_batch.response(g).is_none(),
                q.len() < 12,
                "span table must record drops exactly in place (slot {g})"
            );
        }

        // Client side: datagram loss in front of the same engine, keyed by
        // global index. For every shard partition the merged counters, the
        // per-slot spans, and the layer attribution must reconcile:
        //   empty spans == transport drops + engine drops of delivered.
        let plan = Arc::new(FaultPlan::clean(29).with_default(FaultSpec::loss(0.25)));
        let run = |shards: usize| {
            let per_shard = total.div_ceil(shards);
            let mut merged = FaultCounters::default();
            let mut engine_drops = 0u64;
            let mut spans: Vec<Option<Vec<u8>>> = Vec::with_capacity(total);
            for t in 0..shards {
                let first = t * per_shard;
                let last = ((t + 1) * per_shard).min(total);
                if first >= last {
                    continue;
                }
                let inner = CountingInner {
                    inner: InprocTransport::new(Arc::clone(&engine)),
                    engine_drops: 0,
                };
                let mut ft = FaultyTransport::new(inner, Arc::clone(&plan), 0);
                let mut batch = UdpBatch::new();
                for q in &queries[first..last] {
                    batch.push_request(q);
                }
                ft.with_next_key(first as u64).at_time(100);
                ft.exchange_udp_batch(&mut batch).unwrap();
                merged.merge(&ft.counters());
                engine_drops += ft.inner().engine_drops;
                for i in 0..batch.len() {
                    spans.push(batch.response(i).map(|r| r.to_vec()));
                }
            }
            (merged, engine_drops, spans)
        };
        let (ref_counters, ref_engine_drops, ref_spans) = run(1);
        let empties = ref_spans.iter().filter(|s| s.is_none()).count() as u64;
        assert!(ref_counters.drops > 0 && ref_engine_drops > 0);
        assert_eq!(empties, ref_counters.drops + ref_engine_drops);
        for shards in 2..=8 {
            let (counters, drops, spans) = run(shards);
            assert_eq!(counters, ref_counters, "{shards} shards");
            assert_eq!(drops, ref_engine_drops, "{shards} shards");
            assert_eq!(spans, ref_spans, "{shards} shards");
        }
    }

    #[test]
    fn per_upstream_specs_are_independent() {
        let mut plan = FaultPlan::clean(1);
        plan.set_both(0, FaultSpec::blackhole());
        let plan = Arc::new(plan);
        let mut dead = FaultyTransport::new(inproc(), Arc::clone(&plan), 0);
        let mut alive = FaultyTransport::new(inproc(), plan, 1);
        assert_eq!(dead.exchange_udp(&soa_query(1)).unwrap(), None);
        assert!(alive.exchange_udp(&soa_query(1)).unwrap().is_some());
    }
}
