//! Per-site health tracking for the serving farm.
//!
//! The farm's watchdog probes every site engine on the shared virtual
//! clock and feeds the results through a [`SiteHealth`] state machine —
//! the same circuit-breaker discipline `localroot::refresh` applies to
//! its upstreams (Healthy → Dead at a consecutive-failure threshold,
//! Dead → Probation on the first sign of life, Probation → Healthy after
//! sustained successes, any Probation failure reopens the breaker). The
//! farm layer adds a **Suspect** stage between Healthy and Dead: a site
//! that answers slowly (a stalled shard) or misses a single probe is
//! suspect — still in the steering tables, watched closely — and only
//! hard unreachability sustained across [`HealthConfig::dead_after`]
//! probes withdraws it.
//!
//! Everything here is a pure function of the probe outcome sequence:
//! [`SiteHealth::on_probe`] takes no clock and draws no randomness, so
//! the control plane replays bit-identically for a given failure plan.
//! The per-site transition history accumulates in a [`HealthTimeline`],
//! which the data plane reads as a piecewise-constant `status_at(slot,
//! t)` — that is what keeps the sharded chaos run deterministic: shards
//! consult the same precomputed timeline instead of racing on shared
//! health state.

/// Where a site stands in the failover state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteStatus {
    /// Serving normally; in every steering table.
    Healthy,
    /// Missed a probe or answered past the SLO: still steered to, but on
    /// a short leash — the next hard failures kill it.
    Suspect,
    /// Withdrawn from steering (the BGP withdrawal analogue); the
    /// recovery controller owns bringing it back.
    Dead,
    /// Answering again after death, serving but not yet trusted: one
    /// failure reopens the breaker, sustained successes graduate it.
    Probation,
}

impl SiteStatus {
    /// Whether catchment steering may send clients here. Only Dead sites
    /// are withdrawn — Suspect and Probation keep serving (pulling them
    /// early would double traffic shifts for transient blips).
    pub fn in_rotation(self) -> bool {
        !matches!(self, SiteStatus::Dead)
    }

    /// Stable numeric id for fingerprinting.
    pub fn id(self) -> u64 {
        match self {
            SiteStatus::Healthy => 0,
            SiteStatus::Suspect => 1,
            SiteStatus::Dead => 2,
            SiteStatus::Probation => 3,
        }
    }
}

/// Watchdog cadence and state-machine thresholds.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Virtual-ms between watchdog probes of each site.
    pub probe_interval_ms: u64,
    /// Consecutive bad observations (missed or slow) before a Healthy
    /// site turns Suspect.
    pub suspect_after: u32,
    /// Consecutive *hard* failures (probe unanswered) before a site is
    /// declared Dead and withdrawn. Matches the `failure_threshold`
    /// discipline of `localroot::refresh`.
    pub dead_after: u32,
    /// Consecutive successful probes a Probation site must string
    /// together before it is trusted as Healthy again.
    pub probation_successes: u32,
    /// A probe slower than this counts as a degraded observation (the
    /// stalled-shard signal) without ever killing the site on its own.
    pub slo_ms: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            probe_interval_ms: 250,
            suspect_after: 1,
            dead_after: 3,
            probation_successes: 2,
            slo_ms: 100,
        }
    }
}

/// One watchdog observation of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Answered within the SLO.
    Ok,
    /// Answered, but slower than [`HealthConfig::slo_ms`].
    Slow,
    /// No answer at all (crashed engine, blackholed site).
    Down,
}

/// The per-site circuit breaker.
#[derive(Debug, Clone)]
pub struct SiteHealth {
    status: SiteStatus,
    /// Consecutive bad observations (hard failures count here too).
    consecutive_bad: u32,
    /// Consecutive hard (Down) failures only — the kill counter.
    consecutive_down: u32,
    /// Consecutive Ok probes while in Probation.
    probation_oks: u32,
}

impl Default for SiteHealth {
    fn default() -> Self {
        SiteHealth::new()
    }
}

impl SiteHealth {
    pub fn new() -> SiteHealth {
        SiteHealth {
            status: SiteStatus::Healthy,
            consecutive_bad: 0,
            consecutive_down: 0,
            probation_oks: 0,
        }
    }

    /// Current status.
    pub fn status(&self) -> SiteStatus {
        self.status
    }

    /// Feed one probe observation through the state machine. Returns the
    /// new status when this observation caused a transition, `None` when
    /// the status is unchanged. Pure: same outcome sequence, same
    /// transitions, always.
    pub fn on_probe(&mut self, outcome: ProbeOutcome, cfg: &HealthConfig) -> Option<SiteStatus> {
        let next = match outcome {
            ProbeOutcome::Ok => {
                self.consecutive_bad = 0;
                self.consecutive_down = 0;
                match self.status {
                    // First sign of life after withdrawal: serve again,
                    // under watch.
                    SiteStatus::Dead => {
                        self.probation_oks = 1;
                        if cfg.probation_successes <= 1 {
                            SiteStatus::Healthy
                        } else {
                            SiteStatus::Probation
                        }
                    }
                    SiteStatus::Probation => {
                        self.probation_oks += 1;
                        if self.probation_oks >= cfg.probation_successes {
                            SiteStatus::Healthy
                        } else {
                            SiteStatus::Probation
                        }
                    }
                    SiteStatus::Suspect | SiteStatus::Healthy => SiteStatus::Healthy,
                }
            }
            ProbeOutcome::Slow => {
                self.consecutive_bad += 1;
                self.consecutive_down = 0;
                match self.status {
                    // Slowness alone never kills and never graduates: a
                    // stalled shard is degraded, not gone.
                    SiteStatus::Dead => SiteStatus::Dead,
                    SiteStatus::Probation => {
                        self.probation_oks = 0;
                        SiteStatus::Probation
                    }
                    _ if self.consecutive_bad >= cfg.suspect_after => SiteStatus::Suspect,
                    other => other,
                }
            }
            ProbeOutcome::Down => {
                self.consecutive_bad += 1;
                self.consecutive_down += 1;
                match self.status {
                    SiteStatus::Dead => SiteStatus::Dead,
                    // A Probation failure reopens the breaker immediately
                    // (the refresh-client discipline).
                    SiteStatus::Probation => SiteStatus::Dead,
                    _ if self.consecutive_down >= cfg.dead_after => SiteStatus::Dead,
                    _ if self.consecutive_bad >= cfg.suspect_after => SiteStatus::Suspect,
                    other => other,
                }
            }
        };
        if next == self.status {
            return None;
        }
        if next == SiteStatus::Dead {
            self.probation_oks = 0;
        }
        self.status = next;
        Some(next)
    }
}

/// The piecewise-constant health history of one letter's sites: per site
/// slot, `(from_ms, status)` transitions in time order (first entry is
/// `(0, Healthy)`). The sharded data plane reads this instead of live
/// state, so every shard sees the same world at the same virtual instant.
#[derive(Debug, Clone)]
pub struct HealthTimeline {
    transitions: Vec<Vec<(u64, SiteStatus)>>,
}

impl HealthTimeline {
    /// All `slots` sites start Healthy at t=0.
    pub fn new(slots: usize) -> HealthTimeline {
        HealthTimeline {
            transitions: vec![vec![(0, SiteStatus::Healthy)]; slots],
        }
    }

    /// Number of site slots tracked.
    pub fn slots(&self) -> usize {
        self.transitions.len()
    }

    /// Record that `slot` entered `status` at `from_ms`. Must be appended
    /// in non-decreasing time order per slot.
    pub fn record(&mut self, slot: usize, from_ms: u64, status: SiteStatus) {
        debug_assert!(self.transitions[slot]
            .last()
            .is_none_or(|&(t, _)| t <= from_ms));
        self.transitions[slot].push((from_ms, status));
    }

    /// The status `slot` held at virtual instant `t`.
    pub fn status_at(&self, slot: usize, t: u64) -> SiteStatus {
        let row = &self.transitions[slot];
        match row.binary_search_by(|&(from, _)| from.cmp(&t)) {
            // Exact hit: the transition at `t` is already in force.
            Ok(i) => row[i].1,
            Err(0) => SiteStatus::Healthy,
            Err(i) => row[i - 1].1,
        }
    }

    /// Every transition beyond the initial Healthy state, flattened as
    /// `(slot, from_ms, status)` in (time, slot) order — the render- and
    /// fingerprint-stable view.
    pub fn events(&self) -> Vec<(usize, u64, SiteStatus)> {
        let mut out: Vec<(usize, u64, SiteStatus)> = self
            .transitions
            .iter()
            .enumerate()
            .flat_map(|(slot, row)| row.iter().skip(1).map(move |&(t, s)| (slot, t, s)))
            .collect();
        out.sort_by_key(|&(slot, t, _)| (t, slot));
        out
    }

    /// The distinct steering epochs this timeline induces: `(from_ms,
    /// dead_mask)` intervals where the set of withdrawn (Dead) slots is
    /// constant, starting with the all-alive epoch at t=0. Consecutive
    /// intervals with identical masks are merged.
    pub fn steering_epochs(&self) -> Vec<(u64, Vec<bool>)> {
        let mut times: Vec<u64> = self
            .transitions
            .iter()
            .flat_map(|row| row.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut epochs: Vec<(u64, Vec<bool>)> = Vec::new();
        for t in times {
            let mask: Vec<bool> = (0..self.slots())
                .map(|slot| !self.status_at(slot, t).in_rotation())
                .collect();
            match epochs.last() {
                Some((_, last)) if *last == mask => {}
                _ => epochs.push((t, mask)),
            }
        }
        epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    fn feed(h: &mut SiteHealth, outcomes: &[ProbeOutcome]) -> Vec<SiteStatus> {
        outcomes
            .iter()
            .filter_map(|&o| h.on_probe(o, &cfg()))
            .collect()
    }

    #[test]
    fn healthy_site_stays_healthy_on_ok_probes() {
        let mut h = SiteHealth::new();
        assert!(feed(&mut h, &[ProbeOutcome::Ok; 10]).is_empty());
        assert_eq!(h.status(), SiteStatus::Healthy);
    }

    #[test]
    fn hard_failures_walk_healthy_through_suspect_to_dead() {
        let mut h = SiteHealth::new();
        let t = feed(&mut h, &[ProbeOutcome::Down; 4]);
        assert_eq!(t, vec![SiteStatus::Suspect, SiteStatus::Dead]);
        assert_eq!(h.status(), SiteStatus::Dead);
    }

    #[test]
    fn slowness_suspects_but_never_kills() {
        let mut h = SiteHealth::new();
        let t = feed(&mut h, &[ProbeOutcome::Slow; 50]);
        assert_eq!(t, vec![SiteStatus::Suspect]);
        assert!(h.status().in_rotation(), "a stalled site keeps serving");
        // One clean probe clears the suspicion.
        assert_eq!(
            h.on_probe(ProbeOutcome::Ok, &cfg()),
            Some(SiteStatus::Healthy)
        );
    }

    #[test]
    fn recovery_goes_through_probation_before_trust() {
        let mut h = SiteHealth::new();
        feed(&mut h, &[ProbeOutcome::Down; 3]);
        assert_eq!(h.status(), SiteStatus::Dead);
        assert_eq!(
            h.on_probe(ProbeOutcome::Ok, &cfg()),
            Some(SiteStatus::Probation)
        );
        assert!(h.status().in_rotation(), "probation serves again");
        assert_eq!(
            h.on_probe(ProbeOutcome::Ok, &cfg()),
            Some(SiteStatus::Healthy)
        );
    }

    #[test]
    fn probation_failure_reopens_the_breaker_immediately() {
        let mut h = SiteHealth::new();
        feed(&mut h, &[ProbeOutcome::Down; 3]);
        h.on_probe(ProbeOutcome::Ok, &cfg());
        assert_eq!(h.status(), SiteStatus::Probation);
        assert_eq!(
            h.on_probe(ProbeOutcome::Down, &cfg()),
            Some(SiteStatus::Dead)
        );
        // ...and the next recovery starts probation over from scratch.
        h.on_probe(ProbeOutcome::Ok, &cfg());
        assert_eq!(h.status(), SiteStatus::Probation);
    }

    #[test]
    fn timeline_answers_status_at_any_instant() {
        let mut tl = HealthTimeline::new(2);
        tl.record(0, 1_000, SiteStatus::Suspect);
        tl.record(0, 1_500, SiteStatus::Dead);
        tl.record(0, 4_000, SiteStatus::Probation);
        assert_eq!(tl.status_at(0, 0), SiteStatus::Healthy);
        assert_eq!(tl.status_at(0, 999), SiteStatus::Healthy);
        assert_eq!(tl.status_at(0, 1_000), SiteStatus::Suspect);
        assert_eq!(tl.status_at(0, 2_500), SiteStatus::Dead);
        assert_eq!(tl.status_at(0, 9_999), SiteStatus::Probation);
        assert_eq!(tl.status_at(1, 2_500), SiteStatus::Healthy);
    }

    #[test]
    fn steering_epochs_track_only_dead_set_changes() {
        let mut tl = HealthTimeline::new(2);
        // Suspect does not change steering; Dead and the later revival do.
        tl.record(0, 1_000, SiteStatus::Suspect);
        tl.record(0, 1_500, SiteStatus::Dead);
        tl.record(0, 4_000, SiteStatus::Probation);
        tl.record(0, 4_500, SiteStatus::Healthy);
        let epochs = tl.steering_epochs();
        assert_eq!(
            epochs,
            vec![
                (0, vec![false, false]),
                (1_500, vec![true, false]),
                (4_000, vec![false, false]),
            ]
        );
    }
}
