//! The answer path: request bytes in, response bytes out.
//!
//! [`Rootd`] is one serving instance — one anycast site's worth of
//! authoritative root service. It parses untrusted request bytes with
//! [`Message::from_wire`], resolves the question against the precompiled
//! [`ZoneIndex`], and encodes the response honoring the client's EDNS
//! payload budget with TC-bit truncation at record boundaries. AXFR is
//! served as the multi-message stream `dns_zone::axfr` produces; CHAOS
//! identity queries answer from the site's [`SiteIdentity`].
//!
//! The hot path is the precompiled [`AnswerCache`]: when enabled
//! ([`Rootd::with_answer_cache`]), `serve_udp_into` first tries a hash
//! lookup that splices the request id, RD bit, and question bytes into a
//! pre-encoded response — zero allocation, zero record cloning. Cold
//! shapes (AXFR, FORMERR, NSID, odd payload sizes) fall through to the
//! full parse/respond/encode path below. Zone swaps ([`Rootd::reload`])
//! replace the whole serving state atomically behind an epoch-swapped
//! `Arc`, bumping [`Rootd::generation`].

use crate::cache::{AnswerCache, ChaosCache};
use crate::index::{Lookup, ZoneIndex};
use crate::rrl::{self, ResponseClass, Rrl, RrlConfig, RrlDecision};
use crate::transport::UdpBatch;
use dns_wire::edns::{edns_of, set_edns, Edns};
use dns_wire::message::Opcode;
use dns_wire::rdata::Rdata;
use dns_wire::{Class, Message, Question, Rcode, Record, RrType};
use dns_zone::axfr::serve_axfr;
use dns_zone::zone::Zone;
use dns_zone::zonemd::ZonemdError;
use parking_lot::RwLock;
use rss::catalog::RootSite;
use rss::RootLetter;
use std::sync::Arc;

/// Minimum response budget every DNS/UDP client must accept (RFC 1035).
pub const MIN_UDP_PAYLOAD: usize = 512;

/// The payload size this server advertises in its own OPT records, and the
/// ceiling it honors from clients (RFC 6891 recommends not trusting larger
/// advertisements across unknown paths).
pub const MAX_UDP_PAYLOAD: usize = 4096;

/// What an instance reports on the CHAOS identity channel.
#[derive(Debug, Clone)]
pub struct SiteIdentity {
    /// `hostname.bind` / `id.server` answer. `None` models operators that
    /// disable identity queries (REFUSED).
    pub hostname: Option<String>,
    /// `version.bind` / `version.server` banner.
    pub version: String,
}

impl Default for SiteIdentity {
    fn default() -> Self {
        SiteIdentity {
            hostname: None,
            version: "rootd 0.1".to_string(),
        }
    }
}

impl SiteIdentity {
    /// The identity a catalog site exposes: its published instance
    /// identifier when the letter maps one, nothing otherwise.
    pub fn for_site(site: &RootSite) -> SiteIdentity {
        SiteIdentity {
            hostname: site.instance_id.clone(),
            version: format!("rootd 0.1 ({}.root)", site.letter.ch()),
        }
    }

    /// A named instance (tests, single-server setups).
    pub fn named(hostname: &str) -> SiteIdentity {
        SiteIdentity {
            hostname: Some(hostname.to_string()),
            ..Default::default()
        }
    }
}

/// How one UDP datagram was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Answered from the precompiled cache (id/RD/question splice only).
    CacheHit,
    /// Answered through the full parse/respond/encode path.
    Fallback,
    /// Dropped: unparseable beyond the header, or a stray response.
    Dropped,
}

/// The verdict of the rate-limited UDP path ([`Rootd::serve_udp_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeVerdict {
    /// Within budget (or RRL disabled): `out` holds the full response,
    /// byte-identical to what [`Rootd::serve_udp_into`] writes.
    Answered(ServeOutcome),
    /// Rate-limited on the slip cadence: `out` holds a minimal TC=1
    /// reply; a real client retries over TCP.
    Slipped,
    /// Rate-limited: nothing is sent, `out` is garbage.
    Limited,
    /// Unserveable datagram (unparseable, stray response): no response
    /// regardless of RRL.
    Dropped,
}

/// Everything the serve path reads per query, swapped atomically on
/// [`Rootd::reload`]. Readers clone nothing: they hold the lock only for
/// the duration of one datagram. The cache rides behind its own `Arc` so
/// config-only swaps ([`Rootd::set_rrl`]) never rebuild it.
#[derive(Debug)]
struct ServingState {
    index: Arc<ZoneIndex>,
    cache: Option<Arc<AnswerCache>>,
    generation: u64,
    /// Response-rate limiter, `None` when disabled. Lives in the serving
    /// state so the whole per-query read is one epoch pointer; counters
    /// survive zone reloads (the `Arc` is carried across).
    rrl: Option<Arc<Rrl>>,
}

/// One letter's epoch-swapped serving state, shared by every site engine
/// of that letter ([`Rootd::with_shared_state`]). The zone index and the
/// identity-free answer cache are built once per letter; a
/// [`SharedState::reload`] publishes the next zone epoch to all sharing
/// engines atomically (in-flight queries finish against the old state).
#[derive(Debug, Clone)]
pub struct SharedState {
    state: Arc<RwLock<Arc<ServingState>>>,
}

impl SharedState {
    /// Build the shared state for `index`, with the zone-only precompiled
    /// answer cache (CHAOS identity shapes live per-engine instead).
    pub fn build(index: Arc<ZoneIndex>) -> SharedState {
        let cache = Some(Arc::new(AnswerCache::build_zone(&index)));
        SharedState {
            state: Arc::new(RwLock::new(Arc::new(ServingState {
                index,
                cache,
                generation: 0,
                rrl: None,
            }))),
        }
    }

    /// Build the shared state from preassembled parts. The farm uses this
    /// to share ONE zone-only cache across all thirteen letters — the
    /// cache is identity-free, hence letter-independent, so building it
    /// thirteen times would be pure waste.
    pub(crate) fn with_parts(index: Arc<ZoneIndex>, cache: Arc<AnswerCache>) -> SharedState {
        SharedState {
            state: Arc::new(RwLock::new(Arc::new(ServingState {
                index,
                cache: Some(cache),
                generation: 0,
                rrl: None,
            }))),
        }
    }

    /// Swap in a new zone epoch for every sharing engine: rebuild the
    /// index (and the zone-only cache), bump the generation, and publish
    /// atomically.
    pub fn reload(&self, zone: Arc<Zone>) {
        let index = Arc::new(ZoneIndex::build(zone));
        let (generation, rrl, cached) = {
            let s = self.state.read();
            (s.generation + 1, s.rrl.clone(), s.cache.is_some())
        };
        let cache = cached.then(|| Arc::new(AnswerCache::build_zone(&index)));
        *self.state.write() = Arc::new(ServingState {
            index,
            cache,
            generation,
            rrl,
        });
    }

    /// Validated, atomic reload: verify `zone` (ZONEMD, then RRSIG /
    /// structural validation at wall-time `now`) **before** building
    /// anything, and only then publish the next epoch. On any validation
    /// failure the old `ServingState` keeps serving and the generation
    /// does not move — a poisoned zone can never activate, not even
    /// partially. Returns the new generation on success.
    ///
    /// Unlike [`Self::reload`], the generation bump happens under the same
    /// write lock that publishes the state, so two concurrent reloads can
    /// never mint the same generation.
    pub fn try_reload(&self, zone: Arc<Zone>, now: u32) -> Result<u64, ReloadError> {
        validate_for_reload(&zone, now)?;
        // Heavy lifting outside the lock: readers keep serving the old
        // epoch while the replacement index and cache are assembled.
        let index = Arc::new(ZoneIndex::build(zone));
        let cached = self.state.read().cache.is_some();
        let cache = cached.then(|| Arc::new(AnswerCache::build_zone(&index)));
        let mut guard = self.state.write();
        let generation = guard.generation + 1;
        *guard = Arc::new(ServingState {
            index,
            cache,
            generation,
            rrl: guard.rrl.clone(),
        });
        Ok(generation)
    }

    /// Epoch generation: bumped by every [`Self::reload`]. Starts at 0.
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    /// The zone index currently published to sharing engines.
    pub fn index(&self) -> Arc<ZoneIndex> {
        Arc::clone(&self.state.read().index)
    }
}

/// Why a validated reload ([`SharedState::try_reload`]) refused to
/// activate a zone. The serving state is untouched in every case: the old
/// epoch keeps serving and the generation does not move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The zone's ZONEMD digest does not verify (missing-digest and
    /// unknown-algorithm zones are tolerated, RFC 8976 §3; mismatches and
    /// serial skew are not).
    Zonemd(ZonemdError),
    /// RRSIG/structural validation failed; the carried strings are the
    /// rendered [`dns_zone::ValidationIssue`]s.
    Invalid(Vec<String>),
    /// The farm was asked to reload a letter it does not serve.
    UnknownLetter,
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Zonemd(e) => write!(f, "zonemd verification failed: {e:?}"),
            ReloadError::Invalid(issues) => {
                write!(f, "zone validation failed: {}", issues.join("; "))
            }
            ReloadError::UnknownLetter => write!(f, "letter not served by this farm"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Validate `zone` the way a root operator's pre-activation check would:
/// ZONEMD first (RFC 8976; zones without a digest or with an unknown
/// algorithm are tolerated, mismatches rejected), then the full
/// RRSIG/structural pass at wall-time `now`.
fn validate_for_reload(zone: &Zone, now: u32) -> Result<(), ReloadError> {
    match dns_zone::verify_zonemd(zone) {
        Ok(()) | Err(ZonemdError::NoZonemd) | Err(ZonemdError::UnsupportedAlgorithm) => {}
        Err(e) => return Err(ReloadError::Zonemd(e)),
    }
    let report = dns_zone::validate_zone(zone, now);
    if report.is_valid() {
        Ok(())
    } else {
        Err(ReloadError::Invalid(
            report.issues.iter().map(|i| format!("{i:?}")).collect(),
        ))
    }
}

/// Per-batch serve tally from [`Rootd::serve_udp_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchTally {
    /// Answered from the precompiled caches.
    pub hits: u64,
    /// Answered through the full parse/respond/encode path.
    pub fallbacks: u64,
    /// Datagrams with no response.
    pub dropped: u64,
}

/// One authoritative serving instance.
#[derive(Debug)]
pub struct Rootd {
    state: Arc<RwLock<Arc<ServingState>>>,
    identity: SiteIdentity,
    /// CHAOS TXT rdata precomputed at build time so identity queries do
    /// not re-allocate the banner strings per query.
    chaos_hostname: Option<Rdata>,
    chaos_version: Rdata,
    /// Per-engine CHAOS identity shapes, present on engines built over a
    /// [`SharedState`] (whose answer cache is identity-free).
    chaos: Option<ChaosCache>,
    /// Whether [`Rootd::reload`] rebuilds the answer cache.
    cache_enabled: bool,
    /// Answer records per AXFR message.
    axfr_batch: usize,
    /// Which letter the instance serves as (CHAOS banner flavour only; the
    /// zone is the same for all letters).
    pub letter: Option<RootLetter>,
}

impl Rootd {
    /// An instance serving `index` with `identity`. No answer cache: the
    /// serve path parses and encodes every datagram. Chain
    /// [`Self::with_answer_cache`] for the precompiled fast path.
    pub fn new(index: Arc<ZoneIndex>, identity: SiteIdentity) -> Rootd {
        let chaos_hostname = identity
            .hostname
            .as_ref()
            .map(|h| Rdata::Txt(vec![h.clone().into_bytes()]));
        let chaos_version = Rdata::Txt(vec![identity.version.clone().into_bytes()]);
        Rootd {
            state: Arc::new(RwLock::new(Arc::new(ServingState {
                index,
                cache: None,
                generation: 0,
                rrl: None,
            }))),
            identity,
            chaos_hostname,
            chaos_version,
            chaos: None,
            cache_enabled: false,
            axfr_batch: dns_zone::axfr::DEFAULT_BATCH,
            letter: None,
        }
    }

    /// A site engine serving a letter's [`SharedState`]: the zone index
    /// and precompiled answer cache are shared across all of the letter's
    /// sites; only the CHAOS identity answers are per-engine. A
    /// [`SharedState::reload`] (or a [`Rootd::reload`] through any
    /// sharing engine) swaps the epoch for every sharer at once.
    pub fn with_shared_state(shared: &SharedState, identity: SiteIdentity) -> Rootd {
        let chaos_hostname = identity
            .hostname
            .as_ref()
            .map(|h| Rdata::Txt(vec![h.clone().into_bytes()]));
        let chaos_version = Rdata::Txt(vec![identity.version.clone().into_bytes()]);
        let mut me = Rootd {
            state: Arc::clone(&shared.state),
            identity,
            chaos_hostname,
            chaos_version,
            chaos: None,
            cache_enabled: true,
            axfr_batch: dns_zone::axfr::DEFAULT_BATCH,
            letter: None,
        };
        let chaos = {
            let state = me.state.read();
            ChaosCache::build(&me.answerer(&state))
        };
        me.chaos = Some(chaos);
        me
    }

    /// Precompile the answer cache for the current zone and keep it in
    /// sync across [`Self::reload`]s. Costs one pass over every (name,
    /// qtype, EDNS-state) shape at build time; serve-time hits are then a
    /// hash lookup plus a header/question splice.
    pub fn with_answer_cache(self) -> Rootd {
        let me = Rootd {
            cache_enabled: true,
            ..self
        };
        let (index, generation, rrl) = {
            let state = me.state.read();
            (
                Arc::clone(&state.index),
                state.generation,
                state.rrl.clone(),
            )
        };
        *me.state.write() = Arc::new(me.build_state(index, generation, rrl));
        me
    }

    /// Enable response-rate limiting with `cfg` (builder form).
    pub fn with_rrl(self, cfg: RrlConfig) -> Rootd {
        self.set_rrl(Some(cfg));
        self
    }

    /// Swap the rate-limiter config without rebuilding the answer cache:
    /// a fresh [`Rrl`] (empty buckets, zeroed counters) for `Some`, the
    /// plain unlimited path for `None`. Epoch-swapped like
    /// [`Self::reload`] — in-flight queries finish under the old config.
    pub fn set_rrl(&self, cfg: Option<RrlConfig>) {
        let current = Arc::clone(&self.state.read());
        *self.state.write() = Arc::new(ServingState {
            index: Arc::clone(&current.index),
            cache: current.cache.clone(),
            generation: current.generation,
            rrl: cfg.map(|c| Arc::new(Rrl::new(c))),
        });
    }

    /// The active rate limiter (its counters and bucket stats), if any.
    pub fn rrl(&self) -> Option<Arc<Rrl>> {
        self.state.read().rrl.clone()
    }

    /// The zone index being served (the current epoch's).
    pub fn index(&self) -> Arc<ZoneIndex> {
        Arc::clone(&self.state.read().index)
    }

    /// Cache generation: bumped by every [`Self::reload`]. Starts at 0.
    pub fn generation(&self) -> u64 {
        self.state.read().generation
    }

    /// Whether the precompiled answer cache is active.
    pub fn has_answer_cache(&self) -> bool {
        self.state.read().cache.is_some()
    }

    /// Swap in a new zone epoch: rebuild the index (and the answer cache,
    /// when enabled), bump the generation, and publish atomically. In-flight
    /// queries finish against the old state; the next datagram sees the new.
    pub fn reload(&self, zone: Arc<Zone>) {
        let index = Arc::new(ZoneIndex::build(zone));
        let (generation, rrl) = {
            let state = self.state.read();
            (state.generation + 1, state.rrl.clone())
        };
        let next = Arc::new(self.build_state(index, generation, rrl));
        *self.state.write() = next;
    }

    fn build_state(
        &self,
        index: Arc<ZoneIndex>,
        generation: u64,
        rrl: Option<Arc<Rrl>>,
    ) -> ServingState {
        let cache = self.cache_enabled.then(|| {
            if self.chaos.is_some() {
                // Shared-state engine: the cache is identity-free (all
                // sharers see this swap; identity stays per-engine).
                Arc::new(AnswerCache::build_zone(&index))
            } else {
                Arc::new(AnswerCache::build(&Answerer {
                    index: &index,
                    hostname: self.identity.hostname.as_deref(),
                    chaos_hostname: self.chaos_hostname.as_ref(),
                    chaos_version: &self.chaos_version,
                }))
            }
        });
        ServingState {
            index,
            cache,
            generation,
            rrl,
        }
    }

    /// Override the AXFR message batch size (framing granularity only).
    pub fn with_axfr_batch(mut self, batch: usize) -> Rootd {
        self.axfr_batch = batch.max(1);
        self
    }

    /// Serve one UDP datagram into a caller-provided scratch buffer.
    /// [`ServeOutcome::Dropped`] means no response (unparseable beyond the
    /// header, or a stray response); `out` is untouched garbage then. The
    /// response never exceeds the client's advertised EDNS payload size
    /// (512 without EDNS); when the full response would, records are
    /// dropped at record boundaries and TC is set so the client retries
    /// over TCP.
    pub fn serve_udp_into(&self, request: &[u8], out: &mut Vec<u8>) -> ServeOutcome {
        let state = self.state.read();
        self.serve_locked(&state, request, out)
    }

    fn serve_locked(
        &self,
        state: &ServingState,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> ServeOutcome {
        if let Some(cache) = &state.cache {
            if cache.serve(request, out) {
                return ServeOutcome::CacheHit;
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.serve(request, out) {
                return ServeOutcome::CacheHit;
            }
        }
        let answerer = self.answerer(state);
        if serve_udp_fallback(&answerer, request, out) {
            ServeOutcome::Fallback
        } else {
            ServeOutcome::Dropped
        }
    }

    /// Serve every request in `batch`, writing each answer into the
    /// batch's response slab (the farm's recvmmsg-style inner loop). One
    /// state read covers the whole batch — the per-datagram epoch-pointer
    /// load of [`Self::serve_udp_into`] is amortized across it — and no
    /// per-query allocation happens once the slabs are warm. Answers are
    /// byte-identical to per-datagram [`Self::serve_udp_into`] calls.
    pub fn serve_udp_batch(&self, batch: &mut UdpBatch) -> BatchTally {
        let state = self.state.read();
        let mut tally = BatchTally::default();
        for i in 0..batch.len() {
            let outcome = {
                let (req, scratch) = batch.io(i);
                self.serve_locked(&state, req, scratch)
            };
            match outcome {
                ServeOutcome::CacheHit => tally.hits += 1,
                ServeOutcome::Fallback => tally.fallbacks += 1,
                ServeOutcome::Dropped => tally.dropped += 1,
            }
            batch.commit_response(outcome != ServeOutcome::Dropped);
        }
        tally
    }

    /// Serve one UDP datagram from source `src` at virtual instant
    /// `now_ms`, applying response-rate limiting when configured. With
    /// RRL disabled this is [`Self::serve_udp_into`] plus one `Option`
    /// check: same path, byte-identical output (asserted by tests and
    /// bench-guarded at ≤5% overhead). With RRL enabled the response is
    /// built first, classified from its header bytes, and then the
    /// limiter rules on it — [`ServeVerdict::Slipped`] replaces `out`
    /// with a minimal TC=1 reply, [`ServeVerdict::Limited`] means send
    /// nothing. TCP ([`Self::serve_tcp`]) is never limited: it is the
    /// spoof-victim's escape hatch.
    pub fn serve_udp_from(
        &self,
        src: u64,
        now_ms: u64,
        request: &[u8],
        out: &mut Vec<u8>,
    ) -> ServeVerdict {
        let state = self.state.read();
        let outcome = self.serve_locked(&state, request, out);
        let Some(rrl) = &state.rrl else {
            return ServeVerdict::Answered(outcome);
        };
        if outcome == ServeOutcome::Dropped {
            return ServeVerdict::Dropped;
        }
        match rrl.decide(src, ResponseClass::of(out), now_ms) {
            RrlDecision::Pass => ServeVerdict::Answered(outcome),
            RrlDecision::Slip => {
                if rrl::write_slip(request, out) {
                    ServeVerdict::Slipped
                } else {
                    ServeVerdict::Limited
                }
            }
            RrlDecision::Drop => ServeVerdict::Limited,
        }
    }

    /// Serve one UDP datagram: `None` means drop. Allocating convenience
    /// wrapper over [`Self::serve_udp_into`].
    pub fn serve_udp(&self, request: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        match self.serve_udp_into(request, &mut out) {
            ServeOutcome::Dropped => None,
            _ => Some(out),
        }
    }

    /// Serve one request over a TCP stream: the full, untruncated response
    /// as a sequence of messages (one for everything but AXFR, which
    /// streams the zone in [`Self::with_axfr_batch`]-sized batches).
    pub fn serve_tcp(&self, request: &[u8]) -> Vec<Vec<u8>> {
        let query = match Message::from_wire(request) {
            Ok(q) => q,
            Err(_) => {
                let mut out = Vec::new();
                return if formerr_stub(request, &mut out) {
                    vec![out]
                } else {
                    Vec::new()
                };
            }
        };
        if query.header.flags.response {
            return Vec::new();
        }
        let state = self.state.read();
        if is_axfr(&query) {
            return match serve_axfr(state.index.zone(), query.header.id, self.axfr_batch) {
                Ok(msgs) => msgs.iter().map(|m| m.to_wire()).collect(),
                Err(_) => {
                    vec![Message::response_to(&query, Rcode::ServFail, Vec::new()).to_wire()]
                }
            };
        }
        vec![self.answerer(&state).respond(&query).to_wire()]
    }

    /// Build the (single-message) response to a parsed, non-AXFR query.
    pub fn respond(&self, query: &Message) -> Message {
        let state = self.state.read();
        self.answerer(&state).respond(query)
    }

    fn answerer<'a>(&'a self, state: &'a ServingState) -> Answerer<'a> {
        Answerer {
            index: &state.index,
            hostname: self.identity.hostname.as_deref(),
            chaos_hostname: self.chaos_hostname.as_ref(),
            chaos_version: &self.chaos_version,
        }
    }
}

/// The full (uncached) answer logic, borrowed from one serving state. The
/// answer cache is built by running every reachable shape through this
/// exact code, so cached and fallback responses are byte-identical by
/// construction.
pub(crate) struct Answerer<'a> {
    pub(crate) index: &'a ZoneIndex,
    pub(crate) hostname: Option<&'a str>,
    pub(crate) chaos_hostname: Option<&'a Rdata>,
    pub(crate) chaos_version: &'a Rdata,
}

impl Answerer<'_> {
    /// Build the (single-message) response to a parsed, non-AXFR query.
    pub(crate) fn respond(&self, query: &Message) -> Message {
        let mut resp = self.respond_inner(query);
        self.attach_edns(query, &mut resp);
        resp
    }

    fn respond_inner(&self, query: &Message) -> Message {
        if query.header.opcode != Opcode::Query {
            return Message::response_to(query, Rcode::NotImp, Vec::new());
        }
        let [q] = query.questions.as_slice() else {
            // Zero or multiple questions: nothing sane to answer.
            return Message::response_to(query, Rcode::FormErr, Vec::new());
        };
        let q = q.clone();
        match q.class {
            Class::Ch => self.answer_chaos(query, &q),
            Class::In => self.answer_in(query, &q),
            _ => Message::response_to(query, Rcode::Refused, Vec::new()),
        }
    }

    fn answer_chaos(&self, query: &Message, q: &Question) -> Message {
        let rdata = if q.rr_type == RrType::Txt {
            if chaos_name_is(&q.name, b"hostname", b"bind")
                || chaos_name_is(&q.name, b"id", b"server")
            {
                self.chaos_hostname.cloned()
            } else if chaos_name_is(&q.name, b"version", b"bind")
                || chaos_name_is(&q.name, b"version", b"server")
            {
                Some(self.chaos_version.clone())
            } else {
                None
            }
        } else {
            None
        };
        match rdata {
            Some(r) => Message::response_to(
                query,
                Rcode::NoError,
                vec![Record::chaos(q.name.clone(), 0, r)],
            ),
            None => Message::response_to(query, Rcode::Refused, Vec::new()),
        }
    }

    fn answer_in(&self, query: &Message, q: &Question) -> Message {
        let dnssec = edns_of(query).map(|e| e.dnssec_ok).unwrap_or(false);
        match self.index.lookup(&q.name, q.rr_type) {
            Lookup::Answer(entry) => {
                let mut answers = entry.records.clone();
                if dnssec {
                    answers.extend(entry.rrsigs.iter().cloned());
                }
                let mut resp = Message::response_to(query, Rcode::NoError, answers);
                if q.rr_type == RrType::Ns && q.name == *self.index.origin() {
                    // Priming response (RFC 8109): ship the root server
                    // addresses so resolvers can bootstrap.
                    for rec in &entry.records {
                        let Rdata::Ns(target) = &rec.rdata else {
                            continue;
                        };
                        for glue_type in [RrType::A, RrType::Aaaa] {
                            if let Some(glue) = self.index.rrset(target, glue_type) {
                                resp.additionals.extend(glue.records.iter().cloned());
                            }
                        }
                    }
                }
                resp
            }
            Lookup::Referral(referral) => {
                let mut resp = Message::response_to(query, Rcode::NoError, Vec::new());
                // Referrals are non-authoritative: the data lives below the
                // zone cut.
                resp.header.flags.authoritative = false;
                resp.authorities.extend(referral.ns.iter().cloned());
                if dnssec {
                    resp.authorities.extend(referral.ds.iter().cloned());
                    resp.authorities.extend(referral.ds_rrsigs.iter().cloned());
                }
                resp.additionals.extend(referral.glue.iter().cloned());
                resp
            }
            Lookup::NoData => self.negative(query, q, Rcode::NoError, dnssec),
            Lookup::NxDomain => self.negative(query, q, Rcode::NxDomain, dnssec),
        }
    }

    /// NODATA / NXDOMAIN: SOA in the authority section, plus the covering
    /// NSEC proof when the client asked for DNSSEC.
    fn negative(&self, query: &Message, q: &Question, rcode: Rcode, dnssec: bool) -> Message {
        let nsec = if dnssec {
            self.index.covering_nsec(&q.name)
        } else {
            None
        };
        self.negative_with(query, rcode, dnssec, nsec)
    }

    /// Negative response with an explicitly chosen NSEC link (the answer
    /// cache precompiles one NXDOMAIN template per chain link).
    pub(crate) fn negative_with(
        &self,
        query: &Message,
        rcode: Rcode,
        dnssec: bool,
        nsec: Option<&crate::index::RrsetEntry>,
    ) -> Message {
        let mut resp = Message::response_to(query, rcode, Vec::new());
        resp.authorities = self.index.negative_authority(dnssec);
        if let Some(nsec) = nsec {
            resp.authorities.extend(nsec.records.iter().cloned());
            resp.authorities.extend(nsec.rrsigs.iter().cloned());
        }
        resp
    }

    /// Mirror the client's EDNS: advertise our payload size, echo DO, and
    /// answer an NSID request with the instance identity (RFC 5001).
    pub(crate) fn attach_edns(&self, query: &Message, resp: &mut Message) {
        let Some(edns) = edns_of(query) else { return };
        let mut reply = Edns {
            udp_payload_size: MAX_UDP_PAYLOAD as u16,
            dnssec_ok: edns.dnssec_ok,
            ..Default::default()
        };
        if edns.nsid_requested() {
            if let Some(hostname) = self.hostname {
                reply = reply.with_nsid(hostname.as_bytes());
            }
        }
        set_edns(resp, &reply);
    }
}

/// Two-label CHAOS identity name match, case-insensitive, no allocation.
fn chaos_name_is(name: &dns_wire::Name, first: &[u8], second: &[u8]) -> bool {
    let mut labels = name.labels();
    matches!(
        (labels.next(), labels.next(), labels.next()),
        (Some(a), Some(b), None)
            if a.eq_ignore_ascii_case(first) && b.eq_ignore_ascii_case(second)
    )
}

/// The uncached UDP path: full parse, respond, budget-limited encode into
/// `out`. Returns false to drop the datagram.
fn serve_udp_fallback(answerer: &Answerer<'_>, request: &[u8], out: &mut Vec<u8>) -> bool {
    let query = match Message::from_wire(request) {
        Ok(q) => q,
        // Untrusted bytes: answer FORMERR when at least a header is
        // there to echo, drop otherwise (real servers do both).
        Err(_) => return formerr_stub(request, out),
    };
    if query.header.flags.response {
        return false;
    }
    let limit = udp_limit(&query);
    if is_axfr(&query) {
        // Zone transfers need a stream; over UDP the only honest answer
        // is an empty truncated response forcing the TCP retry.
        let mut resp = Message::response_to(&query, Rcode::NoError, Vec::new());
        resp.header.flags.truncated = true;
        answerer.attach_edns(&query, &mut resp);
        resp.encode_into(out);
        return true;
    }
    let resp = answerer.respond(&query);
    encode_limited_into(&resp, limit, out);
    true
}

/// Whether the (first) question asks for a zone transfer.
fn is_axfr(query: &Message) -> bool {
    query
        .questions
        .first()
        .is_some_and(|q| q.rr_type == RrType::Axfr && q.class == Class::In)
}

/// The response budget a query's EDNS advertises (512 without EDNS,
/// clamped to `[512, 4096]` with it).
fn udp_limit(query: &Message) -> usize {
    edns_of(query)
        .map(|e| (e.udp_payload_size as usize).clamp(MIN_UDP_PAYLOAD, MAX_UDP_PAYLOAD))
        .unwrap_or(MIN_UDP_PAYLOAD)
}

/// A header-only FORMERR echoing the request id, written into `out` when a
/// header exists to echo at all.
fn formerr_stub(request: &[u8], out: &mut Vec<u8>) -> bool {
    if request.len() < 12 {
        return false;
    }
    out.clear();
    // QR=1, rcode=FORMERR(1), all counts zero.
    out.extend_from_slice(&[request[0], request[1], 0x80, 0x01, 0, 0, 0, 0, 0, 0, 0, 0]);
    true
}

/// Encode `msg` within `limit` bytes into `out`: while it does not fit,
/// drop whole records — opportunistic additionals first, then authority,
/// then answer — and set TC. The OPT pseudo-record survives truncation (it
/// carries the EDNS negotiation itself). Dropping never splits a record,
/// so the result always reparses with consistent section counts.
pub(crate) fn encode_limited_into(msg: &Message, limit: usize, out: &mut Vec<u8>) {
    msg.encode_into(out);
    if out.len() <= limit {
        return;
    }
    let mut an = msg.answers.len();
    let mut ns = msg.authorities.len();
    let mut ar = msg
        .additionals
        .iter()
        .filter(|r| r.rr_type != RrType::Opt)
        .count();
    loop {
        if ar > 0 {
            ar -= 1;
        } else if ns > 0 {
            ns -= 1;
        } else if an > 0 {
            an -= 1;
        } else {
            // Header + question + OPT alone always fit 512 bytes for names
            // the root serves; return as-is rather than loop forever.
            return;
        }
        msg.encode_truncated_into(an, ns, ar, out);
        if out.len() <= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Name;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    fn engine() -> Rootd {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 10,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        );
        Rootd::new(
            Arc::new(ZoneIndex::build(Arc::new(zone))),
            SiteIdentity::named("lax2f"),
        )
    }

    fn ask(e: &Rootd, q: Message) -> Message {
        let wire = e.serve_udp(&q.to_wire()).expect("answered");
        Message::from_wire(&wire).unwrap()
    }

    #[test]
    fn soa_query_answered_authoritatively() {
        let e = engine();
        let resp = ask(
            &e,
            Message::query(7, Question::new(Name::root(), RrType::Soa)),
        );
        assert_eq!(resp.header.id, 7);
        assert!(resp.header.flags.authoritative);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rr_type, RrType::Soa);
    }

    #[test]
    fn dnssec_answers_carry_rrsigs() {
        let e = engine();
        let mut q = Message::query(1, Question::new(Name::root(), RrType::Dnskey));
        set_edns(&mut q, &Edns::dnssec());
        let resp = ask(&e, q);
        assert!(resp.answers.iter().any(|r| r.rr_type == RrType::Dnskey));
        assert!(resp.answers.iter().any(|r| r.rr_type == RrType::Rrsig));
        // Without DO: no signatures.
        let plain = ask(
            &e,
            Message::query(2, Question::new(Name::root(), RrType::Dnskey)),
        );
        assert!(plain.answers.iter().all(|r| r.rr_type != RrType::Rrsig));
    }

    #[test]
    fn tld_query_returns_referral() {
        let e = engine();
        let mut q = Message::query(
            3,
            Question::new(Name::parse("www.com.").unwrap(), RrType::A),
        );
        set_edns(&mut q, &Edns::dnssec());
        let resp = ask(&e, q);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(!resp.header.flags.authoritative);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.iter().any(|r| r.rr_type == RrType::Ns));
        assert!(resp.authorities.iter().any(|r| r.rr_type == RrType::Ds));
        assert!(resp.additionals.iter().any(|r| r.rr_type == RrType::A));
    }

    #[test]
    fn nxdomain_has_soa_and_nsec_proof() {
        let e = engine();
        let mut q = Message::query(
            4,
            Question::new(Name::parse("nosuchtld12345.").unwrap(), RrType::A),
        );
        set_edns(&mut q, &Edns::dnssec());
        let resp = ask(&e, q);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rr_type == RrType::Soa));
        assert!(resp.authorities.iter().any(|r| r.rr_type == RrType::Nsec));
        assert!(resp.authorities.iter().any(|r| r.rr_type == RrType::Rrsig));
    }

    #[test]
    fn chaos_identity_answers() {
        let e = engine();
        let resp = ask(
            &e,
            Message::query(5, Question::chaos_txt(Name::parse("id.server.").unwrap())),
        );
        match &resp.answers[0].rdata {
            Rdata::Txt(t) => assert_eq!(t[0], b"lax2f"),
            other => panic!("unexpected {other:?}"),
        }
        let resp = ask(
            &e,
            Message::query(
                6,
                Question::chaos_txt(Name::parse("version.bind.").unwrap()),
            ),
        );
        assert_eq!(resp.header.rcode, Rcode::NoError);
        // Unknown CHAOS name refused.
        let resp = ask(
            &e,
            Message::query(7, Question::chaos_txt(Name::parse("whoami.").unwrap())),
        );
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn udp_axfr_forces_tcp_retry() {
        let e = engine();
        let resp = ask(
            &e,
            Message::query(8, Question::new(Name::root(), RrType::Axfr)),
        );
        assert!(resp.header.flags.truncated);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn tcp_axfr_streams_whole_zone() {
        let e = engine();
        let q = Message::query(9, Question::new(Name::root(), RrType::Axfr));
        let frames = e.serve_tcp(&q.to_wire());
        assert!(frames.len() > 1 || !frames.is_empty());
        let msgs: Vec<Message> = frames
            .iter()
            .map(|f| Message::from_wire(f).unwrap())
            .collect();
        let zone = dns_zone::axfr::assemble_axfr(&msgs, &Name::root()).unwrap();
        assert_eq!(zone.len(), e.index().zone().len());
    }

    #[test]
    fn priming_response_carries_glue() {
        let e = engine();
        let resp = ask(
            &e,
            Message::query(20, Question::new(Name::root(), RrType::Ns)),
        );
        assert_eq!(resp.answers.len(), 13);
        // RFC 8109: address records for the root servers ride along.
        assert!(resp.additionals.iter().any(|r| r.rr_type == RrType::A));
        assert!(resp.additionals.iter().any(|r| r.rr_type == RrType::Aaaa));
    }

    #[test]
    fn truncation_respects_limit_and_reparses() {
        let e = engine();
        // A signed priming response (~1 kB) overflows a 512-byte budget.
        let mut q = Message::query(10, Question::new(Name::root(), RrType::Ns));
        set_edns(
            &mut q,
            &Edns {
                udp_payload_size: 512,
                dnssec_ok: true,
                ..Default::default()
            },
        );
        let wire = e.serve_udp(&q.to_wire()).unwrap();
        assert!(wire.len() <= 512, "{} bytes", wire.len());
        let resp = Message::from_wire(&wire).unwrap();
        assert!(resp.header.flags.truncated);
        // The full TCP response is bigger and complete.
        let full = Message::from_wire(&e.serve_tcp(&q.to_wire())[0]).unwrap();
        assert!(!full.header.flags.truncated);
        assert!(full.to_wire().len() > 512);
        assert!(
            full.answers.len() + full.authorities.len() + full.additionals.len()
                > resp.answers.len() + resp.authorities.len() + resp.additionals.len()
        );
    }

    #[test]
    fn malformed_bytes_get_formerr_or_drop() {
        let e = engine();
        // Shorter than a header: dropped.
        assert_eq!(e.serve_udp(&[0xab; 5]), None);
        // A header followed by garbage: FORMERR echoing the id.
        let mut junk = vec![0u8; 12];
        junk[0] = 0xde;
        junk[1] = 0xad;
        junk[4] = 0x00;
        junk[5] = 0x01; // claims one question
        junk.extend_from_slice(&[0xff, 0xff, 0xff]);
        let resp = Message::from_wire(&e.serve_udp(&junk).unwrap()).unwrap();
        assert_eq!(resp.header.id, 0xdead);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
        // A stray response is dropped, not reflected (no amplification
        // loops between servers).
        let mut stray = Message::query(1, Question::new(Name::root(), RrType::Soa));
        stray.header.flags.response = true;
        assert_eq!(e.serve_udp(&stray.to_wire()), None);
    }

    #[test]
    fn multi_question_rejected() {
        let e = engine();
        let mut q = Message::query(11, Question::new(Name::root(), RrType::Soa));
        q.questions.push(Question::new(Name::root(), RrType::Ns));
        let resp = ask(&e, q);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn notify_opcode_not_implemented() {
        let e = engine();
        let mut q = Message::query(12, Question::new(Name::root(), RrType::Soa));
        q.header.opcode = Opcode::Notify;
        let resp = ask(&e, q);
        assert_eq!(resp.header.rcode, Rcode::NotImp);
    }

    /// The answer-shape matrix the byte-identity tests sweep.
    fn shape_matrix() -> Vec<Vec<u8>> {
        let mut queries = Vec::new();
        for (name, rr_type) in [
            (".", RrType::Soa),
            (".", RrType::Ns),
            (".", RrType::Dnskey),
            ("com.", RrType::A),
            ("www.com.", RrType::A),
            ("nosuchtld12345.", RrType::A),
            ("deep.under.nosuchtld.", RrType::Aaaa),
        ] {
            for dnssec in [false, true] {
                let mut q = Message::query(77, Question::new(Name::parse(name).unwrap(), rr_type));
                if dnssec {
                    set_edns(&mut q, &Edns::dnssec());
                }
                queries.push(q.to_wire());
            }
        }
        queries.push(
            Message::query(78, Question::chaos_txt(Name::parse("id.server.").unwrap())).to_wire(),
        );
        queries.push(Message::query(79, Question::new(Name::root(), RrType::Axfr)).to_wire());
        queries
    }

    #[test]
    fn rrl_disabled_path_is_byte_identical_to_serve_udp_into() {
        let e = engine().with_answer_cache();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for wire in shape_matrix() {
            let outcome = e.serve_udp_into(&wire, &mut a);
            let verdict = e.serve_udp_from(0xdead, 123_456, &wire, &mut b);
            assert_eq!(verdict, ServeVerdict::Answered(outcome));
            if outcome != ServeOutcome::Dropped {
                assert_eq!(a, b, "disabled RRL diverged on {wire:?}");
            }
        }
        assert!(e.rrl().is_none());
    }

    #[test]
    fn rrl_limits_then_slips_and_tcp_stays_open() {
        let e = engine().with_rrl(RrlConfig {
            responses_limit: 2,
            slip: 2,
            ..Default::default()
        });
        let mut q = Message::query(30, Question::new(Name::root(), RrType::Dnskey));
        set_edns(&mut q, &Edns::dnssec());
        let wire = q.to_wire();
        let mut out = Vec::new();
        // Budget of 2, then the slip cadence: slip, drop, slip, …
        assert!(matches!(
            e.serve_udp_from(5, 0, &wire, &mut out),
            ServeVerdict::Answered(_)
        ));
        assert!(matches!(
            e.serve_udp_from(5, 1, &wire, &mut out),
            ServeVerdict::Answered(_)
        ));
        assert_eq!(
            e.serve_udp_from(5, 2, &wire, &mut out),
            ServeVerdict::Slipped
        );
        // The slipped reply: TC set, id echoed, no records.
        let slip = Message::from_wire(&out).unwrap();
        assert!(slip.header.flags.truncated);
        assert_eq!(slip.header.id, 30);
        assert!(slip.answers.is_empty() && slip.authorities.is_empty());
        assert_eq!(
            e.serve_udp_from(5, 3, &wire, &mut out),
            ServeVerdict::Limited
        );
        // A different source is untouched...
        assert!(matches!(
            e.serve_udp_from(6, 3, &wire, &mut out),
            ServeVerdict::Answered(_)
        ));
        // ...and TCP serves the limited source in full, always.
        let frames = e.serve_tcp(&wire);
        let full = Message::from_wire(&frames[0]).unwrap();
        assert!(!full.header.flags.truncated);
        assert!(full.answers.iter().any(|r| r.rr_type == RrType::Dnskey));
        let c = e.rrl().unwrap().counters();
        assert_eq!((c.passed, c.slipped, c.dropped), (3, 1, 1));
    }

    #[test]
    fn set_rrl_swaps_config_without_touching_cache_or_generation() {
        let e = engine().with_answer_cache();
        let gen_before = e.generation();
        e.set_rrl(Some(RrlConfig::default()));
        assert!(e.rrl().is_some());
        assert!(e.has_answer_cache());
        assert_eq!(e.generation(), gen_before);
        // Reload carries the limiter (and its counters) across epochs.
        let mut out = Vec::new();
        let wire = Message::query(1, Question::new(Name::root(), RrType::Soa)).to_wire();
        e.serve_udp_from(9, 0, &wire, &mut out);
        let checked_before = e.rrl().unwrap().counters().checked;
        e.reload(Arc::clone(e.index().zone()));
        assert_eq!(e.generation(), gen_before + 1);
        assert_eq!(e.rrl().unwrap().counters().checked, checked_before);
        // Disabling drops the limiter entirely.
        e.set_rrl(None);
        assert!(e.rrl().is_none());
    }

    #[test]
    fn try_reload_rejects_poisoned_zone_and_keeps_serving() {
        let cfg = RootZoneConfig {
            tld_count: 10,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let now = cfg.inception + 86_400;
        let zone = build_root_zone(&cfg, &ZoneKeys::from_seed(5));
        let shared = SharedState::build(Arc::new(ZoneIndex::build(Arc::new(zone.clone()))));
        let e = Rootd::with_shared_state(&shared, SiteIdentity::named("lax2f"));
        let wire = {
            let mut q = Message::query(21, Question::new(Name::root(), RrType::Dnskey));
            set_edns(&mut q, &Edns::dnssec());
            q.to_wire()
        };
        let before = e.serve_udp(&wire).unwrap();

        // A single flipped RRSIG bit must be caught before activation: the
        // generation does not move and the old epoch keeps serving,
        // byte-identically.
        let mut poisoned = zone.clone();
        dns_zone::corrupt::flip_rrsig_bit(&mut poisoned, 0xbad).expect("flippable rrsig");
        let err = shared
            .try_reload(Arc::new(poisoned), now)
            .expect_err("poisoned zone must not activate");
        // A Validating-phase zone carries a ZONEMD record, so the digest
        // check trips before RRSIG validation even runs.
        assert_eq!(err, ReloadError::Zonemd(ZonemdError::DigestMismatch));
        assert_eq!(shared.generation(), 0);
        assert_eq!(e.serve_udp(&wire).unwrap(), before);

        // A time-expired zone is also refused (stale copy, RQ3 style).
        let expired = shared
            .try_reload(Arc::new(zone.clone()), cfg.expiration + 1)
            .expect_err("expired signatures must not activate");
        assert!(matches!(expired, ReloadError::Invalid(_)));
        assert_eq!(shared.generation(), 0);

        // The clean zone sails through and bumps the epoch.
        let generation = shared.try_reload(Arc::new(zone), now).expect("valid zone");
        assert_eq!(generation, 1);
        assert_eq!(shared.generation(), 1);
        assert_eq!(e.serve_udp(&wire).unwrap(), before);
    }

    #[test]
    fn shared_state_engine_is_byte_identical_to_standalone() {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 10,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        );
        let index = Arc::new(ZoneIndex::build(Arc::new(zone)));
        let standalone =
            Rootd::new(Arc::clone(&index), SiteIdentity::named("lax2f")).with_answer_cache();
        let shared = SharedState::build(index);
        let sharer = Rootd::with_shared_state(&shared, SiteIdentity::named("lax2f"));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for wire in shape_matrix() {
            let oa = standalone.serve_udp_into(&wire, &mut a);
            let ob = sharer.serve_udp_into(&wire, &mut b);
            assert_eq!(oa, ob, "outcome diverged on {wire:?}");
            if oa != ServeOutcome::Dropped {
                assert_eq!(a, b, "bytes diverged on {wire:?}");
            }
        }
        // The per-engine CHAOS shapes serve identity from the cache path
        // even though the shared answer cache is identity-free.
        let chaos =
            Message::query(80, Question::chaos_txt(Name::parse("id.server.").unwrap())).to_wire();
        assert_eq!(
            sharer.serve_udp_into(&chaos, &mut b),
            ServeOutcome::CacheHit
        );
    }

    #[test]
    fn serve_udp_batch_matches_one_shot_serves() {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 10,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(5),
        );
        let shared = SharedState::build(Arc::new(ZoneIndex::build(Arc::new(zone))));
        let e = Rootd::with_shared_state(&shared, SiteIdentity::named("lax2f"));
        let queries = shape_matrix();
        let mut batch = crate::transport::UdpBatch::new();
        for wire in &queries {
            batch.push_request(wire);
        }
        let tally = e.serve_udp_batch(&mut batch);
        assert_eq!(
            tally.hits + tally.fallbacks + tally.dropped,
            queries.len() as u64
        );
        assert!(tally.hits > 0);
        let mut one_shot = Vec::new();
        for (i, wire) in queries.iter().enumerate() {
            let outcome = e.serve_udp_into(wire, &mut one_shot);
            match batch.response(i) {
                Some(resp) => {
                    assert_ne!(outcome, ServeOutcome::Dropped);
                    assert_eq!(resp, &one_shot[..], "batch diverged on {wire:?}");
                }
                None => assert_eq!(outcome, ServeOutcome::Dropped),
            }
        }
        // A second fill after clear() reuses the slabs correctly.
        batch.clear();
        assert!(batch.is_empty());
        for wire in &queries {
            batch.push_request(wire);
        }
        let again = e.serve_udp_batch(&mut batch);
        assert_eq!(again, tally);
    }

    #[test]
    fn nsid_echoes_site_identity() {
        let e = engine();
        let mut q = Message::query(13, Question::new(Name::root(), RrType::Soa));
        set_edns(&mut q, &Edns::dnssec().with_nsid_request());
        let resp = ask(&e, q);
        let edns = edns_of(&resp).unwrap();
        assert_eq!(edns.nsid(), Some(b"lax2f".as_slice()));
        assert_eq!(edns.udp_payload_size as usize, MAX_UDP_PAYLOAD);
    }
}
