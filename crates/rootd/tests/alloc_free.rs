//! Counting-allocator proof that the cached serve paths are
//! allocation-free once warm: single-shot `serve_udp_into`, the
//! scratch-slab `exchange_udp_into` transport path, and the batched
//! `serve_udp_batch` path must all run entirely inside pre-grown buffers.
//!
//! Lives in its own test binary so no sibling test thread can allocate
//! concurrently and pollute the counter.

use dns_wire::edns::{set_edns, Edns};
use dns_wire::{Message, Name, Question, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use rootd::{
    InprocTransport, Rootd, ServeOutcome, SharedState, SiteIdentity, Transport, UdpBatch, ZoneIndex,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator with an allocation counter (dealloc is free to run:
/// only new/grown blocks indicate per-query allocation).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Queries whose answers the engine precompiles: apex RRsets (± DNSSEC),
/// a TLD referral, and a CHAOS identity probe. No junk names — those take
/// the allocating fallback path by design.
fn cached_queries() -> Vec<Vec<u8>> {
    let mut queries = Vec::new();
    for (name, rr_type) in [
        (".", RrType::Soa),
        (".", RrType::Ns),
        (".", RrType::Dnskey),
        ("com.", RrType::A),
    ] {
        for dnssec in [false, true] {
            let mut q = Message::query(31, Question::new(Name::parse(name).unwrap(), rr_type));
            if dnssec {
                set_edns(&mut q, &Edns::dnssec());
            }
            queries.push(q.to_wire());
        }
    }
    queries.push(
        Message::query(32, Question::chaos_txt(Name::parse("id.server.").unwrap())).to_wire(),
    );
    queries
}

#[test]
fn warm_cached_serve_paths_do_not_allocate() {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 10,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(5),
    );
    let shared = SharedState::build(Arc::new(ZoneIndex::build(Arc::new(zone))));
    let engine = Arc::new(Rootd::with_shared_state(
        &shared,
        SiteIdentity::named("alloc-test"),
    ));
    let queries = cached_queries();
    let mut resp = Vec::with_capacity(4096);
    let mut transport = InprocTransport::new(Arc::clone(&engine));
    let mut batch = UdpBatch::new();

    // Warm every path once: response buffers and batch slabs grow to
    // steady state, and every query is confirmed to hit the cache.
    for q in &queries {
        assert_eq!(engine.serve_udp_into(q, &mut resp), ServeOutcome::CacheHit);
        assert!(transport.exchange_udp_into(q, &mut resp).unwrap());
        batch.push_request(q);
    }
    let tally = engine.serve_udp_batch(&mut batch);
    assert_eq!(tally.hits, queries.len() as u64);
    batch.clear();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..50 {
        for q in &queries {
            engine.serve_udp_into(q, &mut resp);
            let _ = transport.exchange_udp_into(q, &mut resp);
        }
        for q in &queries {
            batch.push_request(q);
        }
        engine.serve_udp_batch(&mut batch);
        batch.clear();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm cached serve paths must not allocate"
    );
}
