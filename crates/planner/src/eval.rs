//! Candidate evaluation: apply → propagate → sweep → score → revert.
//!
//! An [`EvalContext`] owns a private clone of the world's topology plus
//! the focus letter's in-service roster (the Table 1/4 baseline — exactly
//! what `vantage`'s routing recompute propagates, which is checked by
//! [`EvalContext::baseline_matches_world`]). Evaluating a candidate
//! applies its moves to that private state, recomputes both families'
//! route tables, sweeps every vantage point through the RTT model into an
//! [`analysis::catchment::DeploymentSummary`], scores the delta against
//! the baseline, and reverts — deployment moves through a stack of exact
//! inverses, topology moves through a [`netsim::TopologySnapshot`]
//! restore. The revert is bit-identical (routing *and* catchment
//! fingerprints), pinned by this crate's proptests, which is what makes a
//! context reusable across thousands of candidates.
//!
//! The optional simclock-pinned mode ([`TimelineSpec`]) additionally
//! scores each candidate *through* a scenario timeline: the scenario's
//! routing-mutating events (site outages, pending additions, peering-link
//! failures) are translated into moves per epoch, each epoch gets its own
//! events-only baseline, and the candidate is judged by its worst epoch —
//! "does this placement still hold during the outage window?".

use crate::moves::{CandidatePlan, Move};
use analysis::catchment::{DeploymentSummary, ServedSite, SummaryDelta};
use netsim::anycast::{Deployment, FacilityId, Site, SiteId};
use netsim::routing::propagate;
use netsim::{AsId, Family, Relation, RouteTable, RttModel, Topology, TopologySnapshot};
use rss::RootLetter;
use scenario::{EventKind, Scenario};
use simclock::TimeAxis;
use vantage::World;

/// Scenario-timeline scoring mode: candidates are additionally evaluated
/// through each epoch of `scenario` between `start` and `end` (seconds,
/// the measurement-schedule axis; virtual millisecond 0 of the
/// [`TimeAxis`] is `start`, matching `ScenarioEngine::time_axis`).
#[derive(Debug, Clone, Copy)]
pub struct TimelineSpec<'a> {
    pub scenario: &'a Scenario,
    pub start: u32,
    pub end: u32,
}

/// The score of one candidate: its steady-state delta vs the baseline,
/// assignment churn, and (in timeline mode) its worst epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    pub id: u32,
    /// The plan's human label (`identity`, `+siteg@f3+renumber`, ...).
    pub label: String,
    /// Steady-state delta vs the Table 1/4 baseline.
    pub delta: SummaryDelta,
    /// Fraction of (vantage point, family) best-site assignments that
    /// changed vs the baseline, plus 1.0 when the plan renumbers the
    /// prefix (every client re-learns the new address) — so the axis
    /// runs 0..=2.
    pub churn: f64,
    /// Worst per-epoch score when evaluated through a scenario timeline.
    pub worst_epoch: Option<EpochDelta>,
}

impl CandidateScore {
    /// The three Pareto axes: (RTT delta ms — lower better, locality
    /// delta — higher better, churn — lower better).
    pub fn axes(&self) -> (f64, f64, f64) {
        (self.delta.rtt_combined(), self.delta.locality, self.churn)
    }
}

/// One epoch's score in timeline mode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDelta {
    /// Epoch position on the timeline.
    pub epoch: usize,
    /// Window + active events, e.g. `[0ms,86400000ms) outage(b/2)`.
    pub label: String,
    /// Candidate delta vs the *events-only* baseline of the same epoch.
    pub delta: SummaryDelta,
    pub churn: f64,
}

/// One evaluated deployment state: the population summary, the per-
/// (vp, family) best-site assignment vector, and the two fingerprints the
/// revert invariant is checked against.
#[derive(Debug, Clone, PartialEq)]
struct EvalPoint {
    summary: DeploymentSummary,
    /// Per VP, per family index: best site id + 1, or 0 when unanswered
    /// (or the VP lacks the family).
    assignments: Vec<[u32; 2]>,
    route_fp: u64,
    catchment_fp: u64,
}

/// One timeline epoch: its label, the event-translated moves in force,
/// and the events-only baseline candidates are diffed against.
struct EpochSpec {
    label: String,
    moves: Vec<Move>,
    baseline: EvalPoint,
}

/// What one applied move needs for its exact inverse (deployment moves
/// only — topology moves are undone by snapshot restore).
enum Undo {
    None,
    /// A removed site goes back to its original position.
    ReinsertSite {
        index: usize,
        site: Site,
    },
    /// An added site is popped off the roster tail.
    PopSite,
    /// A re-homed site gets its facility and origin back.
    RehomeSite {
        index: usize,
        facility: FacilityId,
        origin_as: AsId,
    },
}

/// Reusable evaluation state for one (world, letter) pair.
pub struct EvalContext<'w> {
    world: &'w World,
    pub letter: RootLetter,
    topology: Topology,
    base_topology: TopologySnapshot,
    deployment: Deployment,
    base_deployment: Deployment,
    rtt: RttModel,
    /// First site id free for plan-added sites: past the *full* catalog
    /// roster, so fresh ids never collide with existing ones.
    fresh_site_base: u32,
    next_site_id: u32,
    /// Number of (vp, family) pairs eligible for assignment (v6 pairs
    /// exist only for v6-capable VPs) — the churn denominator.
    eligible_pairs: usize,
    baseline: EvalPoint,
    epochs: Vec<EpochSpec>,
}

impl<'w> EvalContext<'w> {
    /// Build a context for `letter` against `world`'s current state
    /// (withdrawn sites stay excluded, matching the world's own routing).
    /// With a [`TimelineSpec`], per-epoch events-only baselines are
    /// precomputed so candidates can be scored through the timeline.
    pub fn new(world: &'w World, letter: RootLetter, timeline: Option<TimelineSpec>) -> Self {
        let full = world.catalog.deployment(letter);
        let withdrawn = world.withdrawn_sites(letter);
        let deployment = Deployment {
            name: full.name.clone(),
            sites: full
                .sites
                .iter()
                .filter(|s| !withdrawn.contains(&s.id))
                .cloned()
                .collect(),
        };
        let topology = world.topology.clone();
        let base_topology = topology.snapshot();
        let eligible_pairs = world
            .population
            .vps()
            .iter()
            .map(|vp| 1 + usize::from(vp.has_v6))
            .sum();
        let mut ctx = EvalContext {
            world,
            letter,
            base_topology,
            base_deployment: deployment.clone(),
            deployment,
            topology,
            rtt: RttModel::default(),
            fresh_site_base: full.sites.len() as u32,
            next_site_id: full.sites.len() as u32,
            eligible_pairs,
            baseline: EvalPoint {
                summary: DeploymentSummary::new(),
                assignments: Vec::new(),
                route_fp: 0,
                catchment_fp: 0,
            },
            epochs: Vec::new(),
        };
        ctx.baseline = ctx.eval_current();
        if let Some(spec) = timeline {
            ctx.build_epochs(&spec);
        }
        ctx
    }

    /// Whether the context's pristine routing is bit-identical to what the
    /// world itself computed (per-family route-table fingerprints) — the
    /// guarantee that candidate deltas really are deltas against the
    /// Table 1/4 baseline.
    pub fn baseline_matches_world(&self) -> bool {
        self.baseline.route_fp == world_route_fingerprint(self.world, self.letter)
    }

    /// `(routing, catchment)` fingerprints of the pristine baseline.
    pub fn baseline_fingerprints(&self) -> (u64, u64) {
        (self.baseline.route_fp, self.baseline.catchment_fp)
    }

    /// `(routing, catchment)` fingerprints of the *current* private state,
    /// recomputed from scratch. After any `evaluate` this must equal
    /// [`EvalContext::baseline_fingerprints`] — the revert invariant the
    /// proptests pin.
    pub fn current_fingerprints(&self) -> (u64, u64) {
        let p = self.eval_current();
        (p.route_fp, p.catchment_fp)
    }

    /// Whether the private topology and roster are back in their pristine
    /// state (structural equality, not just fingerprints).
    pub fn is_pristine(&self) -> bool {
        self.base_topology.matches(&self.topology) && self.deployment == self.base_deployment
    }

    /// Number of timeline epochs (0 outside timeline mode).
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The window + active-events label of epoch `i`.
    pub fn epoch_label(&self, i: usize) -> &str {
        &self.epochs[i].label
    }

    /// `(routing, catchment)` fingerprints of epoch `i`'s events-only
    /// baseline — cross-checkable against a real [`World`] driven through
    /// `scenario::apply_event`.
    pub fn epoch_baseline_fingerprints(&self, i: usize) -> (u64, u64) {
        (
            self.epochs[i].baseline.route_fp,
            self.epochs[i].baseline.catchment_fp,
        )
    }

    /// Evaluate one candidate: steady-state delta vs the baseline, plus —
    /// in timeline mode — the worst epoch. The context is returned to its
    /// pristine state afterwards, bit-identically.
    pub fn evaluate(&mut self, plan: &CandidatePlan) -> CandidateScore {
        debug_assert_eq!(plan.letter, self.letter, "plan letter mismatch");
        let point = self.eval_with(&[], &plan.moves);
        let delta = point.summary.delta(&self.baseline.summary);
        let churn = self.churn(&point, &self.baseline, plan);

        let mut worst: Option<EpochDelta> = None;
        for (epoch, spec) in self.epochs.iter().enumerate() {
            let p = eval_applied(
                &mut self.topology,
                &mut self.deployment,
                &mut self.next_site_id,
                self.fresh_site_base,
                &self.base_topology,
                self.world,
                &self.rtt,
                &spec.moves,
                &plan.moves,
            );
            let d = p.summary.delta(&spec.baseline.summary);
            let c = self.churn(&p, &spec.baseline, plan);
            let cand = EpochDelta {
                epoch,
                label: spec.label.clone(),
                delta: d,
                churn: c,
            };
            let worse = match &worst {
                None => true,
                Some(cur) => {
                    let key = |e: &EpochDelta| (e.delta.rtt_combined(), e.delta.loss, e.churn);
                    let (a, b) = (key(&cand), key(cur));
                    a.0.total_cmp(&b.0)
                        .then(a.1.total_cmp(&b.1))
                        .then(a.2.total_cmp(&b.2))
                        .is_gt()
                }
            };
            if worse {
                worst = Some(cand);
            }
        }

        CandidateScore {
            id: plan.id,
            label: plan.label(),
            delta,
            churn,
            worst_epoch: worst,
        }
    }

    /// Assignment churn of `point` vs `base`: changed (vp, family) pairs
    /// over eligible pairs, plus the renumbering re-learn penalty.
    fn churn(&self, point: &EvalPoint, base: &EvalPoint, plan: &CandidatePlan) -> f64 {
        let changed = point
            .assignments
            .iter()
            .zip(&base.assignments)
            .map(|(a, b)| usize::from(a[0] != b[0]) + usize::from(a[1] != b[1]))
            .sum::<usize>();
        let moved = changed as f64 / self.eligible_pairs.max(1) as f64;
        if plan.renumbers() {
            moved + 1.0
        } else {
            moved
        }
    }

    /// Apply `event_moves` then `plan_moves`, evaluate, revert everything.
    fn eval_with(&mut self, event_moves: &[Move], plan_moves: &[Move]) -> EvalPoint {
        eval_applied(
            &mut self.topology,
            &mut self.deployment,
            &mut self.next_site_id,
            self.fresh_site_base,
            &self.base_topology,
            self.world,
            &self.rtt,
            event_moves,
            plan_moves,
        )
    }

    /// Sweep the current private state: propagate both families, walk the
    /// population through the RTT model, fingerprint routing + catchment.
    fn eval_current(&self) -> EvalPoint {
        eval_state(self.world, &self.topology, &self.deployment, &self.rtt)
    }

    /// Translate the timeline into per-epoch move sets and evaluate the
    /// events-only baseline of each epoch.
    fn build_epochs(&mut self, spec: &TimelineSpec) {
        let axis = TimeAxis::anchored_at(spec.start);
        let cuts = spec.scenario.boundaries(spec.start, spec.end);
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(spec.start);
        bounds.extend_from_slice(&cuts);
        bounds.push(spec.end);
        for w in bounds.windows(2) {
            let (w_start, w_end) = (w[0], w[1]);
            let mut moves = Vec::new();
            let mut active_labels = Vec::new();
            for ev in spec.scenario.events() {
                let active = ev.at <= w_start && ev.effective_until() > w_start;
                match ev.kind {
                    EventKind::SiteOutage { letter, site } if letter == self.letter && active => {
                        moves.push(Move::RemoveSite { site });
                        active_labels.push(ev.kind.label());
                    }
                    // A to-be-added site is out of service until its
                    // activation window — and withdrawn again after it —
                    // mirroring the scenario engine's hold-out discipline.
                    EventKind::SiteAddition { letter, site } if letter == self.letter => {
                        if active {
                            active_labels.push(ev.kind.label());
                        } else {
                            moves.push(Move::RemoveSite { site });
                        }
                    }
                    EventKind::PeeringLinkFailure { a, b } if active => {
                        moves.push(Move::LinkDown { a, b });
                        active_labels.push(ev.kind.label());
                    }
                    _ => {}
                }
            }
            let label = format!(
                "[{}ms,{}ms) {}",
                axis.wall_to_ms(w_start),
                axis.wall_to_ms(w_end),
                if active_labels.is_empty() {
                    "baseline".to_string()
                } else {
                    active_labels.join("+")
                }
            );
            let baseline = self.eval_with(&moves, &[]);
            self.epochs.push(EpochSpec {
                label,
                moves,
                baseline,
            });
        }
    }
}

/// The world's own per-family route-table fingerprint for `letter`,
/// combined the same way [`EvalContext`] combines its private tables.
pub fn world_route_fingerprint(world: &World, letter: RootLetter) -> u64 {
    combine_route_fps(
        world.routes(letter, Family::V4),
        world.routes(letter, Family::V6),
    )
}

fn combine_route_fps(v4: &RouteTable, v6: &RouteTable) -> u64 {
    fnv([v4.fingerprint(), v6.fingerprint()].into_iter())
}

fn fnv(vals: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Apply both move lists (events first, the candidate on top), evaluate,
/// then revert: deployment moves through their exact inverses in reverse
/// order, topology moves through a snapshot restore. Free function so
/// [`EvalContext::evaluate`] can call it while iterating `self.epochs`.
#[allow(clippy::too_many_arguments)]
fn eval_applied(
    topology: &mut Topology,
    deployment: &mut Deployment,
    next_site_id: &mut u32,
    fresh_site_base: u32,
    base_topology: &TopologySnapshot,
    world: &World,
    rtt: &RttModel,
    event_moves: &[Move],
    plan_moves: &[Move],
) -> EvalPoint {
    *next_site_id = fresh_site_base;
    let mut undos = Vec::with_capacity(event_moves.len() + plan_moves.len());
    let mut topo_touched = false;
    for m in event_moves.iter().chain(plan_moves) {
        let (undo, topo) = apply_move(topology, deployment, next_site_id, world, m);
        undos.push(undo);
        topo_touched |= topo;
    }
    let point = eval_state(world, topology, deployment, rtt);
    for undo in undos.into_iter().rev() {
        revert_move(deployment, undo);
    }
    if topo_touched {
        topology.restore(base_topology);
    }
    point
}

/// Apply one move. Returns its deployment inverse and whether it touched
/// the topology. Moves whose target vanished under an earlier move (e.g.
/// an epoch outage already removed the site a candidate re-homes) degrade
/// to no-ops rather than corrupting state.
fn apply_move(
    topology: &mut Topology,
    deployment: &mut Deployment,
    next_site_id: &mut u32,
    world: &World,
    m: &Move,
) -> (Undo, bool) {
    match *m {
        Move::AddSite { facility, scope } => {
            let id = SiteId(*next_site_id);
            *next_site_id += 1;
            let fac = world.catalog.facilities.get(facility);
            deployment.sites.push(Site {
                id,
                facility,
                scope,
                origin_as: fac.host_as,
                instance_stem: format!("plan{}", id.0),
            });
            (Undo::PopSite, false)
        }
        Move::RemoveSite { site } => match deployment.sites.iter().position(|s| s.id == site) {
            Some(index) => {
                let site = deployment.sites.remove(index);
                (Undo::ReinsertSite { index, site }, false)
            }
            None => (Undo::None, false),
        },
        Move::MoveSite { site, to } => match deployment.sites.iter().position(|s| s.id == site) {
            Some(index) => {
                let fac = world.catalog.facilities.get(to);
                let s = &mut deployment.sites[index];
                let undo = Undo::RehomeSite {
                    index,
                    facility: s.facility,
                    origin_as: s.origin_as,
                };
                s.facility = to;
                s.origin_as = fac.host_as;
                (undo, false)
            }
            None => (Undo::None, false),
        },
        Move::Renumber => (Undo::None, false),
        Move::LinkDown { a, b } => {
            let changed = topology.disable_link(a, b).is_some();
            (Undo::None, changed)
        }
        Move::LinkUp { a, b } => {
            // Validation guarantees non-adjacency for candidate moves; the
            // guard covers event/candidate stacking on the same pair,
            // where add_link's replace semantics would reorder adjacency.
            if topology.links(a).iter().any(|l| l.to == b) {
                (Undo::None, false)
            } else {
                topology.add_link(a, b, Relation::Peer, true, true);
                (Undo::None, true)
            }
        }
    }
}

fn revert_move(deployment: &mut Deployment, undo: Undo) {
    match undo {
        Undo::None => {}
        Undo::ReinsertSite { index, site } => deployment.sites.insert(index, site),
        Undo::PopSite => {
            deployment.sites.pop();
        }
        Undo::RehomeSite {
            index,
            facility,
            origin_as,
        } => {
            let s = &mut deployment.sites[index];
            s.facility = facility;
            s.origin_as = origin_as;
        }
    }
}

/// Propagate + population sweep of one (topology, deployment) state.
fn eval_state(
    world: &World,
    topology: &Topology,
    deployment: &Deployment,
    rtt: &RttModel,
) -> EvalPoint {
    let tables = [
        propagate(topology, deployment, Family::V4),
        propagate(topology, deployment, Family::V6),
    ];
    let facilities = &world.catalog.facilities;
    let vps = world.population.vps();
    let mut summary = DeploymentSummary::new();
    let mut assignments = vec![[0u32; 2]; vps.len()];
    for (i, vp) in vps.iter().enumerate() {
        for family in Family::BOTH {
            if family == Family::V6 && !vp.has_v6 {
                continue;
            }
            match tables[family.index()].best(vp.asn) {
                Some(route) => {
                    let site = deployment.site(route.site);
                    let fac = facilities.get(site.facility);
                    let ms = rtt.base_rtt_ms(topology, facilities, vp.coord, route, site.facility);
                    summary.observe(
                        vp.region,
                        family,
                        Some(ServedSite {
                            site: route.site.0,
                            region: fac.city.region,
                            rtt_ms: ms,
                        }),
                    );
                    assignments[i][family.index()] = route.site.0 + 1;
                }
                None => summary.observe(vp.region, family, None),
            }
        }
    }
    let route_fp = combine_route_fps(&tables[0], &tables[1]);
    let catchment_fp = fnv(assignments
        .iter()
        .flat_map(|a| a.iter().map(|&v| u64::from(v))));
    EvalPoint {
        summary,
        assignments,
        route_fp,
        catchment_fp,
    }
}
