//! The seeded candidate generator.
//!
//! Candidate `id` draws from its own derived RNG stream
//! (`SimRng::derive_ids(&[id])`), so the move set of candidate 517 is a
//! pure function of (seed, id) — independent of how many candidates are
//! generated, in what order, or on which worker they are later scored.
//! Every emitted plan passes [`CandidatePlan::validate`]; draws that
//! collide (same site twice, an already-linked pair) are retried a
//! bounded number of times and then dropped, with an `AddSite` fallback
//! so no plan comes out empty by accident.

use crate::moves::{CandidatePlan, Move};
use netsim::anycast::{FacilityId, SiteId, SiteScope};
use netsim::{AsId, SimRng};
use rss::RootLetter;
use vantage::World;

/// What to generate.
#[derive(Debug, Clone)]
pub struct MoveSetConfig {
    /// The letter whose deployment is being re-planned.
    pub letter: RootLetter,
    /// How many candidates (including the identity candidate when
    /// `include_identity`).
    pub count: usize,
    pub seed: u64,
    /// Plans compose 1..=`max_steps` moves.
    pub max_steps: usize,
    /// Emit the no-change candidate as id 0 — the sweep's fixed point
    /// (its deltas must score exactly zero).
    pub include_identity: bool,
}

impl Default for MoveSetConfig {
    fn default() -> Self {
        MoveSetConfig {
            // The paper's renumbering letter.
            letter: RootLetter::B,
            count: 1000,
            seed: 0x9_1A27,
            max_steps: 3,
            include_identity: true,
        }
    }
}

/// Generate `cfg.count` validated candidate plans against `world`.
pub fn generate(world: &World, cfg: &MoveSetConfig) -> Vec<CandidatePlan> {
    let root = SimRng::new(cfg.seed).derive("planner");
    let deployment = world.catalog.deployment(cfg.letter);
    let withdrawn = world.withdrawn_sites(cfg.letter);
    let in_service: Vec<SiteId> = deployment
        .sites
        .iter()
        .map(|s| s.id)
        .filter(|id| !withdrawn.contains(id))
        .collect();
    let n_fac = world.catalog.facilities.all().len();
    let n_as = world.topology.len();

    let mut plans = Vec::with_capacity(cfg.count);
    if cfg.include_identity && cfg.count > 0 {
        plans.push(CandidatePlan::identity(0, cfg.letter));
    }
    let mut id = plans.len() as u32;
    while plans.len() < cfg.count {
        let mut rng = root.derive_ids(&[u64::from(id)]);
        let steps = 1 + rng.next_range(cfg.max_steps.max(1));
        let mut moves: Vec<Move> = Vec::with_capacity(steps);
        for _ in 0..steps {
            // Bounded retries per step: a draw that conflicts with moves
            // already in the plan is redrawn, then the step is skipped.
            for _attempt in 0..8 {
                let m = draw_move(&mut rng, world, cfg.letter, &in_service, n_fac, n_as);
                let mut trial = moves.clone();
                trial.push(m);
                let plan = CandidatePlan {
                    id,
                    letter: cfg.letter,
                    moves: trial,
                };
                if plan.validate(world).is_ok() {
                    moves.push(m);
                    break;
                }
            }
        }
        if moves.is_empty() {
            // Always drawable: a fresh site at a random facility.
            moves.push(Move::AddSite {
                facility: FacilityId(rng.next_range(n_fac) as u32),
                scope: SiteScope::Global,
            });
        }
        plans.push(CandidatePlan {
            id,
            letter: cfg.letter,
            moves,
        });
        id += 1;
    }
    plans
}

/// Draw one move. Kind weights favor the placement moves the anycast
/// papers study; link moves bias toward the letter's own origin ASes so
/// they actually perturb its catchment.
fn draw_move(
    rng: &mut SimRng,
    world: &World,
    letter: RootLetter,
    in_service: &[SiteId],
    n_fac: usize,
    n_as: usize,
) -> Move {
    let deployment = world.catalog.deployment(letter);
    let roll = rng.next_f64();
    if roll < 0.25 {
        Move::AddSite {
            facility: FacilityId(rng.next_range(n_fac) as u32),
            scope: if rng.chance(0.3) {
                SiteScope::Local
            } else {
                SiteScope::Global
            },
        }
    } else if roll < 0.45 {
        Move::RemoveSite {
            site: *rng.pick(in_service),
        }
    } else if roll < 0.70 {
        Move::MoveSite {
            site: *rng.pick(in_service),
            to: FacilityId(rng.next_range(n_fac) as u32),
        }
    } else if roll < 0.80 {
        Move::Renumber
    } else if roll < 0.90 {
        // Fail a link of one of the letter's origin ASes (or a random AS
        // half the time) — perturbations near the deployment move its
        // catchment; ones far away mostly don't.
        let a = if rng.chance(0.5) && !deployment.sites.is_empty() {
            deployment.site(*rng.pick(in_service)).origin_as
        } else {
            AsId(rng.next_range(n_as) as u32)
        };
        let links = world.topology.links(a);
        if links.is_empty() {
            Move::Renumber
        } else {
            Move::LinkDown {
                a,
                b: links[rng.next_range(links.len())].to,
            }
        }
    } else {
        Move::LinkUp {
            a: AsId(rng.next_range(n_as) as u32),
            b: AsId(rng.next_range(n_as) as u32),
        }
    }
}
