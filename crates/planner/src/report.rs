//! Deterministic ranking, Pareto frontier, and per-region tables.
//!
//! Everything here is pure arithmetic over [`CandidateScore`]s in
//! candidate-id order with `total_cmp` tie-breaks ending in the id, so
//! the ranking and frontier are as bit-stable as the scores themselves.

use crate::batch::scores_fingerprint;
use crate::eval::CandidateScore;
use netgeo::Region;
use rss::RootLetter;
use std::fmt::Write as _;

/// Whether `a` Pareto-dominates `b` on (RTT delta ↓, locality delta ↑,
/// churn ↓): no worse on every axis, strictly better on at least one.
fn dominates(a: &CandidateScore, b: &CandidateScore) -> bool {
    let (ar, al, ac) = a.axes();
    let (br, bl, bc) = b.axes();
    ar <= br && al >= bl && ac <= bc && (ar < br || al > bl || ac < bc)
}

/// Ids of the non-dominated candidates, in id order.
pub fn pareto_frontier(scores: &[CandidateScore]) -> Vec<u32> {
    scores
        .iter()
        .filter(|s| !scores.iter().any(|o| dominates(o, s)))
        .map(|s| s.id)
        .collect()
}

/// A completed sweep: scores in candidate-id order, the overall ranking,
/// and the Pareto frontier.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub letter: RootLetter,
    /// Scores in candidate-id order (as evaluated).
    pub scores: Vec<CandidateScore>,
    /// Candidate ids ranked best-first by (RTT delta ↑ is worse, locality
    /// delta ↓ is worse, churn, id).
    pub ranking: Vec<u32>,
    /// Non-dominated candidate ids (RTT vs locality vs churn), id order.
    pub frontier: Vec<u32>,
}

impl SweepReport {
    pub fn build(letter: RootLetter, scores: Vec<CandidateScore>) -> SweepReport {
        let mut ranking: Vec<usize> = (0..scores.len()).collect();
        ranking.sort_by(|&i, &j| {
            let (ar, al, ac) = scores[i].axes();
            let (br, bl, bc) = scores[j].axes();
            ar.total_cmp(&br)
                .then(bl.total_cmp(&al))
                .then(ac.total_cmp(&bc))
                .then(scores[i].id.cmp(&scores[j].id))
        });
        let frontier = pareto_frontier(&scores);
        SweepReport {
            letter,
            ranking: ranking.into_iter().map(|i| scores[i].id).collect(),
            frontier,
            scores,
        }
    }

    /// Score by candidate id (ids are dense in generated sweeps, but the
    /// lookup scans so partial sweeps work too).
    pub fn score(&self, id: u32) -> Option<&CandidateScore> {
        if let Some(s) = self.scores.get(id as usize) {
            if s.id == id {
                return Some(s);
            }
        }
        self.scores.iter().find(|s| s.id == id)
    }

    /// Top `k` candidates for one client region, best regional RTT delta
    /// first (candidates without samples in that region rank last),
    /// tie-broken by churn then id.
    pub fn top_k_for_region(&self, region: Region, k: usize) -> Vec<&CandidateScore> {
        let mut idx: Vec<&CandidateScore> = self.scores.iter().collect();
        idx.sort_by(|a, b| {
            let ar = a.delta.rtt_region_combined(region);
            let br = b.delta.rtt_region_combined(region);
            match (ar, br) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
            .then(a.churn.total_cmp(&b.churn))
            .then(a.id.cmp(&b.id))
        });
        idx.truncate(k);
        idx
    }

    /// Digest over scores + ranking + frontier; equal across worker
    /// counts by construction, which the report example asserts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = scores_fingerprint(&self.scores);
        for &id in self.ranking.iter().chain(&self.frontier) {
            h ^= u64::from(id);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Render the frontier table plus per-region top-`k` tables.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "What-if sweep — {} ({} candidates, {} on the Pareto frontier)",
            self.letter.label(),
            self.scores.len(),
            self.frontier.len()
        );
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>9} {:>7} {:>7} {:<40}",
            "id", "ΔRTT ms", "Δlocal", "churn", "shift", "plan"
        );
        for &id in &self.frontier {
            if let Some(s) = self.score(id) {
                let _ = writeln!(
                    out,
                    "{:<6} {:>+9.3} {:>+9.4} {:>7.3} {:>7.3} {:<40}",
                    s.id,
                    s.delta.rtt_combined(),
                    s.delta.locality,
                    s.churn,
                    s.delta.shift,
                    s.label
                );
            }
        }
        for region in Region::ALL {
            let top = self.top_k_for_region(region, k);
            let _ = writeln!(out, "\ntop {k} for {region}:");
            for s in top {
                let rtt = s
                    .delta
                    .rtt_region_combined(region)
                    .map(|d| format!("{d:+.3}"))
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  #{:<5} {:>9} ms  churn {:>5.3}  {}",
                    s.id, rtt, s.churn, s.label
                );
            }
        }
        out
    }
}
