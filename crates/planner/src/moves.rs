//! The typed move set and candidate plans.
//!
//! A [`CandidatePlan`] is a list of [`Move`]s against one letter's
//! deployment, validated against the live catalog the same way
//! `scenario::timeline` validates event windows: unknown targets are
//! rejected, and two moves touching the same scope (same site, same link,
//! the one prefix) cannot ride in one plan — each move must be
//! independently applicable so the whole plan reverts as a stack of exact
//! inverses.

use netsim::anycast::{FacilityId, SiteId, SiteScope};
use netsim::AsId;
use rss::RootLetter;
use std::fmt;
use vantage::World;

/// One typed deployment change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Bring up a new site at an existing facility, originated from the
    /// facility's host AS.
    AddSite {
        facility: FacilityId,
        scope: SiteScope,
    },
    /// Take an in-service site out of the deployment.
    RemoveSite { site: SiteId },
    /// Re-home an in-service site at a different facility.
    MoveSite { site: SiteId, to: FacilityId },
    /// Renumber the service prefix (the paper's b.root event). Routing-
    /// neutral in steady state, but every client re-learns the new
    /// prefix, so it contributes maximal churn.
    Renumber,
    /// Fail an existing peering/transit link (both families).
    LinkDown { a: AsId, b: AsId },
    /// Provision a new (peer, dual-stack) link between two non-adjacent
    /// ASes.
    LinkUp { a: AsId, b: AsId },
}

/// The scope a move occupies for intra-plan overlap validation — the same
/// rule `scenario::event::Scope` applies across timeline windows. Site
/// additions occupy no existing scope (every `AddSite` creates a fresh
/// site), so any number may ride in one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveScope {
    Site(SiteId),
    /// Normalized (min, max) pair.
    Link(AsId, AsId),
    Prefix,
}

impl Move {
    fn scope(&self) -> Option<MoveScope> {
        match *self {
            Move::AddSite { .. } => None,
            Move::RemoveSite { site } | Move::MoveSite { site, .. } => Some(MoveScope::Site(site)),
            Move::Renumber => Some(MoveScope::Prefix),
            Move::LinkDown { a, b } | Move::LinkUp { a, b } => {
                let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
                Some(MoveScope::Link(lo, hi))
            }
        }
    }

    /// Short human label, e.g. `+site@f12` or `link-down(3,77)`.
    pub fn label(&self) -> String {
        match *self {
            Move::AddSite { facility, scope } => {
                let tag = match scope {
                    SiteScope::Global => "g",
                    SiteScope::Local => "l",
                };
                format!("+site{tag}@f{}", facility.0)
            }
            Move::RemoveSite { site } => format!("-site{}", site.0),
            Move::MoveSite { site, to } => format!("site{}>f{}", site.0, to.0),
            Move::Renumber => "renumber".to_string(),
            Move::LinkDown { a, b } => format!("link-down({},{})", a.0, b.0),
            Move::LinkUp { a, b } => format!("link-up({},{})", a.0, b.0),
        }
    }
}

/// Why a plan was rejected against the catalog/topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The site is not in the letter's roster.
    UnknownSite { site: SiteId },
    /// The site exists but is currently withdrawn from service.
    WithdrawnSite { site: SiteId },
    /// No such facility.
    UnknownFacility { facility: FacilityId },
    /// A `MoveSite` that targets the site's current facility.
    SameFacility { site: SiteId },
    /// No such AS.
    UnknownAs { asn: AsId },
    /// A `LinkDown` between ASes that are not adjacent.
    NotAdjacent { a: AsId, b: AsId },
    /// A `LinkUp` between ASes that already share a link (re-provisioning
    /// an existing link would reorder adjacency and break determinism).
    AlreadyAdjacent { a: AsId, b: AsId },
    /// A link move from an AS to itself.
    SelfLink { a: AsId },
    /// Two moves in one plan touch the same scope.
    OverlappingMoves { first: String, second: String },
    /// The plan would leave the deployment with no in-service sites.
    EmptiesDeployment,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownSite { site } => write!(f, "unknown site {}", site.0),
            PlanError::WithdrawnSite { site } => {
                write!(f, "site {} is withdrawn from service", site.0)
            }
            PlanError::UnknownFacility { facility } => {
                write!(f, "unknown facility {}", facility.0)
            }
            PlanError::SameFacility { site } => {
                write!(f, "site {} already lives at the target facility", site.0)
            }
            PlanError::UnknownAs { asn } => write!(f, "unknown AS {}", asn.0),
            PlanError::NotAdjacent { a, b } => {
                write!(f, "AS {} and AS {} share no link to fail", a.0, b.0)
            }
            PlanError::AlreadyAdjacent { a, b } => {
                write!(f, "AS {} and AS {} are already linked", a.0, b.0)
            }
            PlanError::SelfLink { a } => write!(f, "AS {} cannot link to itself", a.0),
            PlanError::OverlappingMoves { first, second } => {
                write!(f, "moves {first} and {second} touch the same scope")
            }
            PlanError::EmptiesDeployment => {
                write!(f, "plan would leave the deployment without sites")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One candidate: an id (its rank key of last resort and RNG stream), the
/// focus letter, and the moves. An empty move list is the *identity
/// candidate* — always valid, and by construction scoring to exactly zero
/// deltas against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePlan {
    pub id: u32,
    pub letter: RootLetter,
    pub moves: Vec<Move>,
}

impl CandidatePlan {
    /// The no-change candidate.
    pub fn identity(id: u32, letter: RootLetter) -> CandidatePlan {
        CandidatePlan {
            id,
            letter,
            moves: Vec::new(),
        }
    }

    /// Whether this is the no-change candidate.
    pub fn is_identity(&self) -> bool {
        self.moves.is_empty()
    }

    /// Whether the plan renumbers the service prefix.
    pub fn renumbers(&self) -> bool {
        self.moves.contains(&Move::Renumber)
    }

    /// Human label: `identity` or the moves joined with `+`.
    pub fn label(&self) -> String {
        if self.is_identity() {
            "identity".to_string()
        } else {
            self.moves
                .iter()
                .map(Move::label)
                .collect::<Vec<_>>()
                .join("+")
        }
    }

    /// Validate the plan against `world`'s catalog and topology: every
    /// move must name a live target, link moves must respect adjacency,
    /// no two moves may share a scope, and the deployment must keep at
    /// least one in-service site.
    pub fn validate(&self, world: &World) -> Result<(), PlanError> {
        for (i, a) in self.moves.iter().enumerate() {
            let sa = match a.scope() {
                Some(s) => s,
                None => continue,
            };
            for b in &self.moves[i + 1..] {
                if b.scope() == Some(sa) {
                    return Err(PlanError::OverlappingMoves {
                        first: a.label(),
                        second: b.label(),
                    });
                }
            }
        }

        let deployment = world.catalog.deployment(self.letter);
        let withdrawn = world.withdrawn_sites(self.letter);
        let n_fac = world.catalog.facilities.all().len() as u32;
        let n_as = world.topology.len() as u32;
        let check_site = |site: SiteId| {
            if !deployment.sites.iter().any(|s| s.id == site) {
                Err(PlanError::UnknownSite { site })
            } else if withdrawn.contains(&site) {
                Err(PlanError::WithdrawnSite { site })
            } else {
                Ok(())
            }
        };
        let check_as = |asn: AsId| {
            if asn.0 >= n_as {
                Err(PlanError::UnknownAs { asn })
            } else {
                Ok(())
            }
        };

        let mut removals = 0usize;
        let mut additions = 0usize;
        for m in &self.moves {
            match *m {
                Move::AddSite { facility, .. } => {
                    if facility.0 >= n_fac {
                        return Err(PlanError::UnknownFacility { facility });
                    }
                    additions += 1;
                }
                Move::RemoveSite { site } => {
                    check_site(site)?;
                    removals += 1;
                }
                Move::MoveSite { site, to } => {
                    check_site(site)?;
                    if to.0 >= n_fac {
                        return Err(PlanError::UnknownFacility { facility: to });
                    }
                    if deployment.site(site).facility == to {
                        return Err(PlanError::SameFacility { site });
                    }
                }
                Move::Renumber => {}
                Move::LinkDown { a, b } => {
                    if a == b {
                        return Err(PlanError::SelfLink { a });
                    }
                    check_as(a)?;
                    check_as(b)?;
                    if world.topology.links(a).iter().all(|l| l.to != b) {
                        return Err(PlanError::NotAdjacent { a, b });
                    }
                }
                Move::LinkUp { a, b } => {
                    if a == b {
                        return Err(PlanError::SelfLink { a });
                    }
                    check_as(a)?;
                    check_as(b)?;
                    if world.topology.links(a).iter().any(|l| l.to == b) {
                        return Err(PlanError::AlreadyAdjacent { a, b });
                    }
                }
            }
        }

        let in_service = deployment.sites.len() - withdrawn.len();
        if in_service + additions <= removals {
            return Err(PlanError::EmptiesDeployment);
        }
        Ok(())
    }
}
