//! Batch anycast what-if deployment planner.
//!
//! The paper measures one observed change to '.' — b.root's renumbering.
//! This crate generalizes that single event into a *search*: generate
//! thousands of seeded candidate deployment changes (typed move sets —
//! add/remove/move sites, prefix renumberings, peering-link changes,
//! composed into multi-step plans), evaluate each one against a
//! snapshotted netsim topology by recomputing anycast catchments and the
//! RTT model, and score per-region RTT / catchment-locality / churn
//! deltas against the Table 1/4 baseline.
//!
//! Module map:
//!
//! * [`moves`] — the typed move set, [`CandidatePlan`], and catalog
//!   validation (same overlap discipline as `scenario::event`);
//! * [`mod@generate`] — the seeded candidate generator;
//! * [`eval`] — [`EvalContext`]: apply a plan to snapshotted state,
//!   propagate, sweep the population, score, revert bit-identically; the
//!   optional simclock-pinned [`TimelineSpec`] mode scores a candidate
//!   *through* a scenario timeline epoch by epoch;
//! * [`batch`] — the worker pool (the `run_parallel` merge discipline:
//!   disjoint index ranges, merge sorted by range start) — scores and
//!   ranking are bit-identical across worker counts;
//! * [`report`] — deterministic ranking, Pareto frontier (RTT vs
//!   locality vs churn), and top-k per-region tables.

pub mod batch;
pub mod eval;
pub mod generate;
pub mod moves;
pub mod report;

pub use batch::{evaluate_batch, scores_fingerprint};
pub use eval::{CandidateScore, EpochDelta, EvalContext, TimelineSpec};
pub use generate::{generate, MoveSetConfig};
pub use moves::{CandidatePlan, Move, PlanError};
pub use report::SweepReport;
