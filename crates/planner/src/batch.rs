//! The batch worker pool.
//!
//! Same discipline as `vantage`'s `run_parallel`: the candidate list is
//! cut into contiguous index ranges, each worker owns its range
//! exclusively with a private [`EvalContext`], finished parts land in a
//! mutex'd vector tagged with their range start, and the merge sorts by
//! that tag — so the output is bit-identical for any worker count, which
//! [`scores_fingerprint`] makes cheap to assert.

use crate::eval::{CandidateScore, EvalContext, TimelineSpec};
use crate::moves::CandidatePlan;
use parking_lot::Mutex;
use rss::RootLetter;
use vantage::World;

/// Evaluate `plans` for `letter` across `workers` threads. Scores come
/// back in plan order regardless of worker count.
pub fn evaluate_batch(
    world: &World,
    letter: RootLetter,
    plans: &[CandidatePlan],
    workers: usize,
    timeline: Option<TimelineSpec>,
) -> Vec<CandidateScore> {
    let workers = workers.clamp(1, plans.len().max(1));
    if workers == 1 {
        let mut ctx = EvalContext::new(world, letter, timeline);
        return plans.iter().map(|p| ctx.evaluate(p)).collect();
    }
    let chunk = plans.len().div_ceil(workers);
    let results: Mutex<Vec<(usize, Vec<CandidateScore>)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(plans.len());
            if lo >= hi {
                continue;
            }
            let results = &results;
            scope.spawn(move |_| {
                let mut ctx = EvalContext::new(world, letter, timeline);
                let part: Vec<CandidateScore> =
                    plans[lo..hi].iter().map(|p| ctx.evaluate(p)).collect();
                results.lock().push((lo, part));
            });
        }
    })
    .expect("worker panicked");
    let mut parts = results.into_inner();
    parts.sort_by_key(|(lo, _)| *lo);
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

/// Order-sensitive digest over every score's ranking-relevant numbers
/// (exact f64 bit patterns, not rounded displays). Equal fingerprints ⇒
/// the sweeps scored and would rank identically.
pub fn scores_fingerprint(scores: &[CandidateScore]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for s in scores {
        mix(u64::from(s.id));
        mix(s.delta.rtt_combined().to_bits());
        mix(s.delta.locality.to_bits());
        mix(s.delta.loss.to_bits());
        mix(s.delta.shift.to_bits());
        mix(s.churn.to_bits());
        match &s.worst_epoch {
            Some(e) => {
                mix(e.epoch as u64 + 1);
                mix(e.delta.rtt_combined().to_bits());
                mix(e.churn.to_bits());
            }
            None => mix(0),
        }
    }
    h
}
