//! Property tests for the planner's revert invariant: any generated
//! candidate — across every move kind and composed multi-step plans —
//! applied then reverted restores the evaluation state bit-identically
//! (routing fingerprint *and* catchment fingerprint), which is what makes
//! one [`EvalContext`] safely reusable across a thousand-candidate sweep.

use planner::{generate, CandidatePlan, EvalContext, Move, MoveSetConfig};
use proptest::prelude::*;
use rss::RootLetter;
use std::sync::{Mutex, OnceLock};
use vantage::{World, WorldBuildConfig};

/// One shared world: building it per proptest case would dominate runtime,
/// and evaluation never mutates it (contexts clone what they perturb).
fn world() -> &'static Mutex<World> {
    static WORLD: OnceLock<Mutex<World>> = OnceLock::new();
    WORLD.get_or_init(|| Mutex::new(World::build(&WorldBuildConfig::tiny())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_candidate_applies_and_reverts_bit_identically(
        seed in any::<u64>(),
        letter_ix in 0usize..13,
        max_steps in 1usize..5,
    ) {
        let world = world().lock().unwrap();
        let letter = RootLetter::ALL[letter_ix];
        let cfg = MoveSetConfig {
            letter,
            count: 4,
            seed,
            max_steps,
            include_identity: false,
        };
        let plans = generate(&world, &cfg);
        let mut ctx = EvalContext::new(&world, letter, None);
        prop_assert!(ctx.baseline_matches_world());
        let base = ctx.baseline_fingerprints();
        for plan in &plans {
            prop_assert!(plan.validate(&world).is_ok(), "{}", plan.label());
            let score = ctx.evaluate(plan);
            prop_assert!(ctx.is_pristine(), "state diverged after {}", plan.label());
            prop_assert_eq!(
                ctx.current_fingerprints(),
                base,
                "fingerprints diverged after {}",
                plan.label()
            );
            prop_assert!(score.churn.is_finite());
        }
    }

    #[test]
    fn single_moves_of_every_kind_revert(
        seed in any::<u64>(),
        kind in 0usize..6,
    ) {
        let world = world().lock().unwrap();
        let letter = RootLetter::B;
        // Draw from the generator until a plan leading with the wanted
        // move kind appears; seeds cycle candidates cheaply.
        let discriminant = |m: &Move| match m {
            Move::AddSite { .. } => 0,
            Move::RemoveSite { .. } => 1,
            Move::MoveSite { .. } => 2,
            Move::Renumber => 3,
            Move::LinkDown { .. } => 4,
            Move::LinkUp { .. } => 5,
        };
        let mut found: Option<CandidatePlan> = None;
        'outer: for bump in 0..64u64 {
            let plans = generate(&world, &MoveSetConfig {
                letter,
                count: 8,
                seed: seed.wrapping_add(bump),
                max_steps: 1,
                include_identity: false,
            });
            for p in plans {
                if p.moves.iter().any(|m| discriminant(m) == kind) {
                    found = Some(p);
                    break 'outer;
                }
            }
        }
        let plan = found.expect("every move kind is drawable on the tiny world");
        let mut ctx = EvalContext::new(&world, letter, None);
        let base = ctx.baseline_fingerprints();
        ctx.evaluate(&plan);
        prop_assert!(ctx.is_pristine(), "after {}", plan.label());
        prop_assert_eq!(ctx.current_fingerprints(), base);
    }
}
