//! Planner integration tests: plan validation against the live catalog,
//! generator determinism, the identity fixed point, bit-identical batch
//! evaluation across worker counts, and timeline-mode epoch baselines
//! cross-checked against a real world driven through `scenario`'s own
//! apply/revert machinery.

use netsim::anycast::{FacilityId, SiteId, SiteScope};
use netsim::AsId;
use planner::{
    evaluate_batch, generate, scores_fingerprint, CandidatePlan, EvalContext, Move, MoveSetConfig,
    PlanError, SweepReport, TimelineSpec,
};
use rss::RootLetter;
use scenario::{EventKind, Scenario, ScenarioEvent};
use vantage::{World, WorldBuildConfig, MEASUREMENT_START};

const LETTER: RootLetter = RootLetter::B;

fn tiny_world() -> World {
    World::build(&WorldBuildConfig::tiny())
}

fn plan(id: u32, moves: Vec<Move>) -> CandidatePlan {
    CandidatePlan {
        id,
        letter: LETTER,
        moves,
    }
}

/// A non-adjacent AS pair, for `LinkUp` moves.
fn non_adjacent_pair(world: &World) -> (AsId, AsId) {
    let nodes = world.topology.nodes();
    for a in nodes {
        for b in nodes {
            if a.id != b.id && world.topology.links(a.id).iter().all(|l| l.to != b.id) {
                return (a.id, b.id);
            }
        }
    }
    panic!("topology is a clique");
}

#[test]
fn validation_rejects_bad_plans() {
    let world = tiny_world();
    let roster = &world.catalog.deployment(LETTER).sites;
    let site = roster[0].id;
    let n_fac = world.catalog.facilities.all().len() as u32;
    let adj_a = world.topology.nodes()[0].id;
    let adj_b = world.topology.links(adj_a)[0].to;
    let (free_a, free_b) = non_adjacent_pair(&world);

    // The identity plan is always valid.
    assert!(CandidatePlan::identity(0, LETTER).validate(&world).is_ok());

    let cases = vec![
        (
            plan(
                1,
                vec![Move::RemoveSite {
                    site: SiteId(9_999),
                }],
            ),
            PlanError::UnknownSite {
                site: SiteId(9_999),
            },
        ),
        (
            plan(
                2,
                vec![
                    Move::RemoveSite { site },
                    Move::MoveSite {
                        site,
                        to: FacilityId(0),
                    },
                ],
            ),
            PlanError::OverlappingMoves {
                first: Move::RemoveSite { site }.label(),
                second: Move::MoveSite {
                    site,
                    to: FacilityId(0),
                }
                .label(),
            },
        ),
        (
            plan(
                3,
                roster
                    .iter()
                    .map(|s| Move::RemoveSite { site: s.id })
                    .collect(),
            ),
            PlanError::EmptiesDeployment,
        ),
        (
            plan(
                4,
                vec![Move::AddSite {
                    facility: FacilityId(n_fac),
                    scope: SiteScope::Global,
                }],
            ),
            PlanError::UnknownFacility {
                facility: FacilityId(n_fac),
            },
        ),
        (
            plan(
                5,
                vec![Move::LinkDown {
                    a: free_a,
                    b: free_b,
                }],
            ),
            PlanError::NotAdjacent {
                a: free_a,
                b: free_b,
            },
        ),
        (
            plan(6, vec![Move::LinkUp { a: adj_a, b: adj_b }]),
            PlanError::AlreadyAdjacent { a: adj_a, b: adj_b },
        ),
        (
            plan(7, vec![Move::LinkDown { a: adj_a, b: adj_a }]),
            PlanError::SelfLink { a: adj_a },
        ),
        (
            plan(
                8,
                vec![Move::MoveSite {
                    site,
                    to: roster[0].facility,
                }],
            ),
            PlanError::SameFacility { site },
        ),
        (
            plan(9, vec![Move::Renumber, Move::Renumber]),
            PlanError::OverlappingMoves {
                first: "renumber".to_string(),
                second: "renumber".to_string(),
            },
        ),
    ];
    for (p, want) in cases {
        assert_eq!(p.validate(&world), Err(want), "plan {}", p.id);
    }

    // Emptying removals offset by an addition pass.
    let mut moves: Vec<Move> = roster
        .iter()
        .map(|s| Move::RemoveSite { site: s.id })
        .collect();
    moves.push(Move::AddSite {
        facility: FacilityId(0),
        scope: SiteScope::Global,
    });
    assert!(plan(10, moves).validate(&world).is_ok());
}

#[test]
fn generator_is_deterministic_and_every_plan_validates() {
    let world = tiny_world();
    let cfg = MoveSetConfig {
        count: 200,
        ..Default::default()
    };
    let a = generate(&world, &cfg);
    let b = generate(&world, &cfg);
    assert_eq!(a, b, "same seed ⇒ same plans");
    assert_eq!(a.len(), 200);
    assert!(a[0].is_identity());
    assert_eq!(a[0].id, 0);
    for (i, p) in a.iter().enumerate() {
        assert_eq!(p.id as usize, i);
        assert!(
            p.validate(&world).is_ok(),
            "plan {} invalid: {}",
            p.id,
            p.label()
        );
        assert!(i == 0 || !p.moves.is_empty());
    }
    // A different seed draws different move sets.
    let other = generate(
        &world,
        &MoveSetConfig {
            seed: cfg.seed + 1,
            count: 200,
            ..Default::default()
        },
    );
    assert_ne!(a, other);
}

#[test]
fn identity_candidate_scores_exactly_zero() {
    let world = tiny_world();
    let mut ctx = EvalContext::new(&world, LETTER, None);
    assert!(ctx.baseline_matches_world());
    let score = ctx.evaluate(&CandidatePlan::identity(0, LETTER));
    assert!(score.delta.is_zero(), "identity delta must be exactly zero");
    assert_eq!(score.churn, 0.0);
    assert_eq!(score.delta.rtt_combined(), 0.0);
    assert_eq!(score.delta.shift, 0.0);
    assert!(score.worst_epoch.is_none());
    assert!(ctx.is_pristine());
}

#[test]
fn every_move_kind_applies_and_reverts_bit_identically() {
    let world = tiny_world();
    let roster = &world.catalog.deployment(LETTER).sites;
    let site = roster[0].id;
    let to = FacilityId((roster[0].facility.0 + 1) % world.catalog.facilities.all().len() as u32);
    let adj_a = world.topology.nodes()[0].id;
    let adj_b = world.topology.links(adj_a)[0].to;
    let (free_a, free_b) = non_adjacent_pair(&world);
    let plans = vec![
        plan(
            0,
            vec![Move::AddSite {
                facility: FacilityId(0),
                scope: SiteScope::Global,
            }],
        ),
        plan(1, vec![Move::RemoveSite { site }]),
        plan(2, vec![Move::MoveSite { site, to }]),
        plan(3, vec![Move::Renumber]),
        plan(4, vec![Move::LinkDown { a: adj_a, b: adj_b }]),
        plan(
            5,
            vec![Move::LinkUp {
                a: free_a,
                b: free_b,
            }],
        ),
        // A composed multi-step plan mixing deployment and topology moves.
        plan(
            6,
            vec![
                Move::AddSite {
                    facility: to,
                    scope: SiteScope::Local,
                },
                Move::RemoveSite { site },
                Move::LinkDown { a: adj_a, b: adj_b },
                Move::Renumber,
            ],
        ),
    ];
    let mut ctx = EvalContext::new(&world, LETTER, None);
    let base = ctx.baseline_fingerprints();
    for p in &plans {
        assert!(p.validate(&world).is_ok(), "{}", p.label());
        let score = ctx.evaluate(p);
        assert!(ctx.is_pristine(), "not pristine after {}", p.label());
        assert_eq!(ctx.current_fingerprints(), base, "after {}", p.label());
        if p.renumbers() {
            assert!(score.churn >= 1.0, "renumbering pays the re-learn penalty");
        }
    }
}

#[test]
fn batch_is_bit_identical_across_worker_counts() {
    let world = tiny_world();
    let plans = generate(
        &world,
        &MoveSetConfig {
            count: 60,
            ..Default::default()
        },
    );
    let reference = evaluate_batch(&world, LETTER, &plans, 1, None);
    let ref_fp = scores_fingerprint(&reference);
    let ref_report = SweepReport::build(LETTER, reference.clone());
    for workers in 2..=4 {
        let scores = evaluate_batch(&world, LETTER, &plans, workers, None);
        assert_eq!(scores, reference, "{workers} workers");
        assert_eq!(scores_fingerprint(&scores), ref_fp);
        let report = SweepReport::build(LETTER, scores);
        assert_eq!(report.ranking, ref_report.ranking);
        assert_eq!(report.frontier, ref_report.frontier);
        assert_eq!(report.fingerprint(), ref_report.fingerprint());
    }
    // Sanity on the report itself: ranking permutes the sweep, the best-
    // ranked candidate is Pareto-optimal, rendering covers the frontier.
    let mut ids: Vec<u32> = ref_report.ranking.clone();
    ids.sort_unstable();
    assert_eq!(ids, (0..plans.len() as u32).collect::<Vec<_>>());
    assert!(!ref_report.frontier.is_empty());
    assert!(ref_report.frontier.contains(&ref_report.ranking[0]));
    let rendered = ref_report.render(3);
    assert!(rendered.contains("Pareto frontier"));
    for &id in &ref_report.frontier {
        assert!(rendered.contains(&ref_report.score(id).unwrap().label));
    }
}

#[test]
fn timeline_epoch_baselines_match_scenario_apply() {
    let world = tiny_world();
    let site = world.catalog.deployment(LETTER).sites[0].id;
    let start = MEASUREMENT_START;
    let outage_from = start + 86_400;
    let outage_until = outage_from + 86_400;
    let end = start + 3 * 86_400;
    let scenario = Scenario::new(
        "planner_outage",
        5,
        vec![ScenarioEvent {
            at: outage_from,
            until: Some(outage_until),
            kind: EventKind::SiteOutage {
                letter: LETTER,
                site,
            },
        }],
    )
    .unwrap();
    let spec = TimelineSpec {
        scenario: &scenario,
        start,
        end,
    };
    let mut ctx = EvalContext::new(&world, LETTER, Some(spec));
    assert_eq!(ctx.epoch_count(), 3, "baseline / outage / after");
    assert!(ctx.epoch_label(1).contains("outage(b/"));
    // Event-free epochs share the steady-state baseline.
    assert_eq!(
        ctx.epoch_baseline_fingerprints(0),
        ctx.baseline_fingerprints()
    );
    assert_eq!(
        ctx.epoch_baseline_fingerprints(2),
        ctx.baseline_fingerprints()
    );

    // Cross-check: the translated outage epoch must route exactly like a
    // real world driven through scenario's own apply path.
    let mut w2 = tiny_world();
    let (snap, recompute) = scenario::apply_event(
        &mut w2,
        EventKind::SiteOutage {
            letter: LETTER,
            site,
        },
    );
    assert!(recompute);
    w2.recompute_letter(LETTER);
    assert_eq!(
        ctx.epoch_baseline_fingerprints(1).0,
        planner::eval::world_route_fingerprint(&w2, LETTER),
        "epoch baseline routing == scenario-applied world routing"
    );
    assert!(scenario::revert_event(&mut w2, snap));
    w2.recompute_letter(LETTER);
    assert_eq!(
        ctx.baseline_fingerprints().0,
        planner::eval::world_route_fingerprint(&w2, LETTER),
        "revert restores the pristine routing"
    );

    // Timeline-mode scores carry a worst epoch, and the identity candidate
    // still scores zero in steady state (its worst epoch is judged against
    // that epoch's own events-only baseline, so it is zero too).
    let id_score = ctx.evaluate(&CandidatePlan::identity(0, LETTER));
    assert!(id_score.delta.is_zero());
    let worst = id_score
        .worst_epoch
        .expect("timeline mode sets worst epoch");
    assert!(worst.delta.is_zero());
    assert_eq!(worst.churn, 0.0);
    assert!(ctx.is_pristine());

    // And a real candidate through the timeline is still bit-identical
    // across worker counts.
    let plans = generate(
        &world,
        &MoveSetConfig {
            count: 12,
            ..Default::default()
        },
    );
    let a = evaluate_batch(&world, LETTER, &plans, 1, Some(spec));
    let b = evaluate_batch(&world, LETTER, &plans, 3, Some(spec));
    assert_eq!(scores_fingerprint(&a), scores_fingerprint(&b));
    assert!(a.iter().all(|s| s.worst_epoch.is_some()));
}
