//! The local root service itself: refresh loop, validation, fallback,
//! query serving.
//!
//! The refresh loop is written as a real network client. It talks to
//! upstreams through the [`Transport`] abstraction only — request bytes
//! out, response bytes in — so the same code path runs against the
//! deterministic in-proc transport, real loopback sockets, or a
//! [`rootd::FaultyTransport`] injecting loss, corruption and blackholes.
//! Robustness features:
//!
//! * per-query retry budget with capped exponential backoff and
//!   deterministic jitter ([`RetryPolicy`]);
//! * response hygiene: ID mismatches, non-responses and unparseable
//!   datagrams are counted as garbage, never trusted;
//! * TCP retry when a UDP response is truncated (TC) or garbage;
//! * per-upstream circuit breaker (dead → probation → healthy) so a
//!   blackholed letter stops consuming the retry budget;
//! * failover across root letters on transport *or* validation failure;
//! * graceful degradation: serve-stale from the last known-good copy,
//!   bounded by the zone's own SOA expire field.
//!
//! Two drivers run the same client loop (an internal `Timeline` enum
//! abstracts the difference): [`LocalRoot::refresh_wire`] is called with
//! a fixed wall
//! `now` (backoffs are accounted but time stands still), while
//! [`LocalRoot::refresh_on_clock`] runs against a shared
//! [`simclock::ClockHandle`] — every retry backoff and timeout *advances*
//! the same virtual clock the fault plans read, so a client really can
//! wait out a blackhole window by backing off.

use crate::metrics::Metrics;
use crate::policy::{ValidationPolicy, ZonemdRequirement};
use crate::refresh::{RetryPolicy, UpstreamHealth};
use dns_wire::{Message, Name, Question, Rcode, RrType};
use dns_zone::validate::validate_zone;
use dns_zone::zonemd::{verify_zonemd, ZonemdError};
use dns_zone::Zone;
use netsim::rng::SimRng;
use rootd::{InprocTransport, Rootd, SiteIdentity, Transport, TransportError, ZoneIndex};
use rss::{RootLetter, RootServer};
use simclock::{ClockHandle, TimeAxis};
use std::collections::HashMap;
use std::sync::Arc;

/// Which notion of time a refresh cycle runs on.
///
/// The whole client loop is written against this: `Fixed` reproduces the
/// wall-clock API (`now` frozen for the cycle, backoff jitter keyed by
/// the cycle counter), `Clock` maps a shared virtual clock onto wall
/// seconds through a [`TimeAxis`] and *sleeps* every backoff on it, with
/// jitter keyed by the instant the wait starts.
enum Timeline {
    Fixed(u32),
    Clock { clock: ClockHandle, axis: TimeAxis },
}

impl Timeline {
    /// Wall-clock seconds "now" (frozen in `Fixed`, live in `Clock`).
    fn now(&self) -> u32 {
        match self {
            Timeline::Fixed(now) => *now,
            Timeline::Clock { clock, axis } => axis.now_wall(clock),
        }
    }

    /// Wait out the backoff before `attempt`, returning the wait. In
    /// `Clock` mode this advances the shared clock — the wait is real,
    /// visible to every fault window on the same timeline — and records
    /// `(start_ms, wait_ms)` in `log` for replay assertions.
    fn wait_backoff(
        &self,
        retry: &RetryPolicy,
        upstream: u64,
        cycle: u64,
        attempt: u32,
        log: &mut Vec<(u64, u64)>,
    ) -> u64 {
        match self {
            Timeline::Fixed(_) => retry.backoff_ms(upstream, cycle, attempt),
            Timeline::Clock { clock, .. } => {
                let start = clock.now_ms();
                let wait = retry.backoff_ms_at(upstream, start, attempt);
                clock.sleep(wait);
                log.push((start, wait));
                wait
            }
        }
    }
}

/// Refresh-cycle context threaded through the poll/transfer helpers:
/// retry knobs, the timeline driving the cycle, and the sinks they
/// report into.
struct RefreshCtx<'a> {
    retry: &'a RetryPolicy,
    timeline: &'a Timeline,
    metrics: &'a mut Metrics,
    backoff_log: &'a mut Vec<(u64, u64)>,
}

impl RefreshCtx<'_> {
    /// Account (and, on a clock, actually take) the backoff before a
    /// retry attempt.
    fn wait_backoff(&mut self, upstream: u64, cycle: u64, attempt: u32) {
        self.metrics.retries += 1;
        self.metrics.backoff_ms_total +=
            self.timeline
                .wait_backoff(self.retry, upstream, cycle, attempt, self.backoff_log);
    }
}

/// The set of upstream root servers a local root can transfer from.
///
/// In production this is the 13 letters; in tests it is whatever mix of
/// healthy, stale and corrupting servers the scenario needs.
pub struct UpstreamSet {
    pub servers: Vec<(RootLetter, RootServer)>,
}

impl UpstreamSet {
    /// Number of upstreams.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

/// Why a refresh failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshError {
    /// Every upstream was tried; none produced an acceptable copy.
    AllUpstreamsFailed { attempts: u32, last_reason: String },
    /// No upstreams configured.
    NoUpstreams,
}

impl std::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshError::AllUpstreamsFailed {
                attempts,
                last_reason,
            } => write!(f, "all {attempts} upstreams failed; last: {last_reason}"),
            RefreshError::NoUpstreams => write!(f, "no upstreams configured"),
        }
    }
}

impl std::error::Error for RefreshError {}

/// Result of one refresh cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The local copy was already current.
    AlreadyCurrent { serial: u32 },
    /// A new copy was transferred, validated and activated.
    Updated {
        serial: u32,
        /// Which upstream finally served it (index into the set).
        from_upstream: usize,
        /// How many upstreams were tried before success.
        attempts: u32,
    },
}

/// What the service can do with a query at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingState {
    /// A validated copy within the policy's max age.
    Fresh,
    /// The copy outlived `max_age` but refreshes keep failing; policy
    /// allows serving it until the zone's own SOA expire bound.
    Stale,
    /// The copy is older than the SOA expire field (or stale serving is
    /// disabled): answering from it would violate RFC 8806 — refuse.
    Expired,
    /// No copy was ever activated.
    Empty,
}

/// A local root instance.
pub struct LocalRoot {
    /// The active, validated zone copy (None until first refresh).
    current: Option<Arc<Zone>>,
    /// When the active copy was activated.
    activated_at: u32,
    pub policy: ValidationPolicy,
    /// Retry/backoff/breaker knobs for the refresh client.
    pub retry: RetryPolicy,
    pub metrics: Metrics,
    /// Rotation cursor so fallback spreads load across letters.
    next_upstream: usize,
    /// Circuit-breaker state per upstream letter.
    health: HashMap<RootLetter, UpstreamHealth>,
    /// Refresh cycles run (keys the deterministic jitter/query-ID streams).
    cycle: u64,
    /// Backoff waits taken on a shared clock, as `(start_ms, wait_ms)` —
    /// empty for wall-clock refreshes. The replay tests assert this
    /// schedule is bit-identical across runs and thread counts.
    pub backoff_log: Vec<(u64, u64)>,
}

impl LocalRoot {
    /// A fresh instance with `policy`.
    pub fn new(policy: ValidationPolicy) -> LocalRoot {
        LocalRoot {
            current: None,
            activated_at: 0,
            policy,
            retry: RetryPolicy::default(),
            metrics: Metrics::default(),
            next_upstream: 0,
            health: HashMap::new(),
            cycle: 0,
            backoff_log: Vec::new(),
        }
    }

    /// Serial of the active copy, if any.
    pub fn current_serial(&self) -> Option<u32> {
        self.current.as_ref().and_then(|z| z.serial().ok())
    }

    /// Pin the upstream tried first on the next refresh (RFC 8806 configs
    /// order their server list; operators often prefer the nearest
    /// instance). Without this, refreshes rotate across upstreams.
    pub fn set_primary(&mut self, index: usize) {
        self.next_upstream = index;
    }

    /// Breaker state for one upstream letter, if it has been scored.
    pub fn upstream_health(&self, letter: RootLetter) -> Option<&UpstreamHealth> {
        self.health.get(&letter)
    }

    /// Whether a *fresh* copy exists at time `now` (validated and not
    /// older than the policy's max age).
    pub fn is_serving(&self, now: u32) -> bool {
        matches!(self.serving_state(now), ServingState::Fresh)
    }

    /// Whether queries get real answers at `now` — fresh or stale.
    pub fn is_usable(&self, now: u32) -> bool {
        matches!(
            self.serving_state(now),
            ServingState::Fresh | ServingState::Stale
        )
    }

    /// Classify the active copy's age against the policy and the zone's
    /// SOA expire bound.
    pub fn serving_state(&self, now: u32) -> ServingState {
        let Some(zone) = self.current.as_ref() else {
            return ServingState::Empty;
        };
        let age = now.saturating_sub(self.activated_at);
        if age <= self.policy.max_age {
            return ServingState::Fresh;
        }
        let expire = zone.soa().map(|s| s.expire).unwrap_or(0);
        if self.policy.serve_stale && age <= expire {
            ServingState::Stale
        } else {
            ServingState::Expired
        }
    }

    /// One refresh cycle at wall-clock `now` against in-proc upstreams:
    /// poll SOA; transfer if stale; validate; fall back across upstreams.
    ///
    /// Convenience wrapper over [`LocalRoot::refresh_wire`] that puts each
    /// server behind the deterministic in-proc transport.
    pub fn refresh(
        &mut self,
        upstreams: &UpstreamSet,
        now: u32,
    ) -> Result<RefreshOutcome, RefreshError> {
        let mut wired: Vec<(RootLetter, InprocTransport)> = upstreams
            .servers
            .iter()
            .map(|(letter, server)| (*letter, upstream_transport(server)))
            .collect();
        self.refresh_wire(&mut wired, now)
    }

    /// One refresh cycle at wall-clock `now`, talking to upstreams only
    /// through their transports — the full client loop: health-gated
    /// rotation, SOA poll with retries and TCP fallback, AXFR with a
    /// retry budget for protocol failures, validation, failover.
    pub fn refresh_wire<T: Transport>(
        &mut self,
        upstreams: &mut [(RootLetter, T)],
        now: u32,
    ) -> Result<RefreshOutcome, RefreshError> {
        self.refresh_inner(upstreams, &Timeline::Fixed(now))
    }

    /// One refresh cycle driven by a shared virtual clock: `axis` maps
    /// the clock's virtual milliseconds onto wall seconds, every retry
    /// backoff and timeout advances the clock, and breaker cooldowns are
    /// measured against it. Wrap the upstream transports with
    /// [`rootd::FaultyTransport::with_clock`] on the *same* handle and
    /// fault windows become windows in the client's own time — waiting
    /// (backing off) is then a real strategy against a bounded blackhole.
    pub fn refresh_on_clock<T: Transport>(
        &mut self,
        upstreams: &mut [(RootLetter, T)],
        clock: &ClockHandle,
        axis: TimeAxis,
    ) -> Result<RefreshOutcome, RefreshError> {
        self.refresh_inner(
            upstreams,
            &Timeline::Clock {
                clock: clock.clone(),
                axis,
            },
        )
    }

    fn refresh_inner<T: Transport>(
        &mut self,
        upstreams: &mut [(RootLetter, T)],
        timeline: &Timeline,
    ) -> Result<RefreshOutcome, RefreshError> {
        if upstreams.is_empty() {
            return Err(RefreshError::NoUpstreams);
        }
        self.cycle += 1;
        let cycle = self.cycle;
        let n = upstreams.len();
        let order: Vec<usize> = (0..n).map(|k| (self.next_upstream + k) % n).collect();

        // SOA poll against the first reachable upstream in rotation. A
        // poll that fails everywhere yields u32::MAX, forcing a transfer
        // attempt — the transfer loop then reports the real failure.
        self.metrics.soa_polls += 1;
        let mut upstream_serial = u32::MAX;
        for &idx in &order {
            let letter = upstreams[idx].0;
            if !self
                .health
                .entry(letter)
                .or_default()
                .available(timeline.now())
            {
                continue;
            }
            if let Some(serial) = poll_serial_wire(
                &mut upstreams[idx].1,
                idx as u64,
                cycle,
                &mut RefreshCtx {
                    retry: &self.retry,
                    timeline,
                    metrics: &mut self.metrics,
                    backoff_log: &mut self.backoff_log,
                },
            ) {
                upstream_serial = serial;
                break;
            }
        }
        if let Some(cur) = self.current_serial() {
            if cur >= upstream_serial && self.is_serving(timeline.now()) {
                return Ok(RefreshOutcome::AlreadyCurrent { serial: cur });
            }
        }

        // Transfer with fallback: walk the rotation, skipping upstreams
        // whose breaker is open. Each live upstream gets one logical
        // transfer attempt (with protocol-level retries inside).
        let mut last_reason = String::from("every upstream's circuit breaker is open");
        let mut tried = 0u32;
        for (k, &idx) in order.iter().enumerate() {
            let letter = upstreams[idx].0;
            if !self
                .health
                .entry(letter)
                .or_default()
                .available(timeline.now())
            {
                self.metrics.upstreams_skipped_dead += 1;
                continue;
            }
            tried += 1;
            self.metrics.transfers_attempted += 1;
            match transfer_wire(
                &mut upstreams[idx].1,
                idx as u64,
                cycle,
                &self.policy,
                &mut RefreshCtx {
                    retry: &self.retry,
                    timeline,
                    metrics: &mut self.metrics,
                    backoff_log: &mut self.backoff_log,
                },
            ) {
                Ok(zone) => {
                    let serial = zone.serial().unwrap_or(0);
                    self.metrics.transfers_accepted += 1;
                    self.health.entry(letter).or_default().on_success();
                    self.current = Some(Arc::new(zone));
                    self.activated_at = timeline.now();
                    // Advance rotation past the successful upstream.
                    self.next_upstream = (idx + 1) % n;
                    return Ok(RefreshOutcome::Updated {
                        serial,
                        from_upstream: idx,
                        attempts: tried,
                    });
                }
                Err(reason) => {
                    if reason.protocol_level {
                        self.metrics.transfers_failed += 1;
                    } else {
                        self.metrics.transfers_rejected += 1;
                    }
                    if self
                        .health
                        .entry(letter)
                        .or_default()
                        .on_failure(timeline.now(), &self.retry)
                    {
                        self.metrics.breaker_opened += 1;
                    }
                    if k + 1 < n {
                        self.metrics.fallbacks += 1;
                    }
                    last_reason = reason.message;
                }
            }
        }
        self.next_upstream = (self.next_upstream + 1) % n;
        Err(RefreshError::AllUpstreamsFailed {
            attempts: tried,
            last_reason,
        })
    }

    /// Answer a query from the active copy. Serves fresh, degrades to
    /// stale within the SOA expire bound (when policy allows), and
    /// refuses (fail-closed, RFC 8806) beyond it.
    pub fn answer(&mut self, query: &Message, now: u32) -> Message {
        let zone = match self.serving_state(now) {
            ServingState::Fresh => {
                self.metrics.served_fresh += 1;
                self.current.clone().unwrap()
            }
            ServingState::Stale => {
                self.metrics.served_stale += 1;
                self.current.clone().unwrap()
            }
            ServingState::Expired => {
                self.metrics.queries_refused += 1;
                self.metrics.refused_expired += 1;
                return Message::response_to(query, Rcode::ServFail, Vec::new());
            }
            ServingState::Empty => {
                self.metrics.queries_refused += 1;
                return Message::response_to(query, Rcode::ServFail, Vec::new());
            }
        };
        self.metrics.queries_served += 1;
        let Some(q) = query.questions.first() else {
            return Message::response_to(query, Rcode::FormErr, Vec::new());
        };
        let records: Vec<dns_wire::Record> = zone
            .rrset(&q.name, q.rr_type)
            .into_iter()
            .cloned()
            .collect();
        if records.is_empty() {
            let exists = zone.records().iter().any(|r| r.name == q.name);
            let rcode = if exists {
                Rcode::NoError
            } else {
                Rcode::NxDomain
            };
            return Message::response_to(query, rcode, Vec::new());
        }
        Message::response_to(query, Rcode::NoError, records)
    }

    /// Convenience: look up the NS set of a TLD from the active copy.
    pub fn delegation(&mut self, tld: &str, now: u32) -> Option<Vec<Name>> {
        let name = Name::parse(&format!("{tld}.")).ok()?;
        let query = Message::query(0, Question::new(name, RrType::Ns));
        let resp = self.answer(&query, now);
        if resp.header.rcode != Rcode::NoError || resp.answers.is_empty() {
            return None;
        }
        Some(
            resp.answers
                .iter()
                .filter_map(|r| match &r.rdata {
                    dns_wire::Rdata::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect(),
        )
    }
}

/// A wire-level serving endpoint for one upstream: the server's currently
/// served zone (stale copy and all) behind a `rootd` engine, reached over
/// the deterministic in-proc transport. The refresh loop talks bytes, not
/// structs — the same parse→serve→encode path a network client exercises.
pub fn upstream_transport(server: &RootServer) -> InprocTransport {
    let index = Arc::new(ZoneIndex::build(Arc::clone(server.served_zone())));
    let identity = SiteIdentity {
        hostname: server.identity.clone(),
        version: format!("rootd 0.1 ({}.root)", server.letter.ch()),
    };
    InprocTransport::new(Arc::new(Rootd::new(index, identity)))
}

/// What a UDP response datagram turned out to be.
enum ParsedUdp {
    /// A well-formed response to *our* query.
    Ok(Message),
    /// Well-formed but TC set: retry over TCP.
    Truncated,
    /// Unparseable, wrong ID, or not a response — never trust it.
    Garbage,
}

/// Parse and sanity-check a UDP response against the query ID we sent.
fn parse_checked(raw: &[u8], expected_id: u16) -> ParsedUdp {
    if raw.len() < 12 {
        return ParsedUdp::Garbage;
    }
    let Ok(resp) = Message::from_wire(raw) else {
        return ParsedUdp::Garbage;
    };
    if resp.header.id != expected_id || !resp.header.flags.response {
        return ParsedUdp::Garbage;
    }
    if resp.header.flags.truncated {
        return ParsedUdp::Truncated;
    }
    ParsedUdp::Ok(resp)
}

/// Retry one query over TCP (RFC 7766 fallback after TC or a garbage
/// datagram). Returns the first well-formed response frame.
fn query_over_tcp<T: Transport>(
    transport: &mut T,
    wire: &[u8],
    expected_id: u16,
    metrics: &mut Metrics,
) -> Option<Message> {
    match transport.exchange_tcp(wire) {
        Ok(frames) => frames
            .first()
            .and_then(|f| match parse_checked(f, expected_id) {
                // TC over TCP is nonsense; treat it as garbage too.
                ParsedUdp::Ok(resp) => Some(resp),
                _ => {
                    metrics.garbage_responses += 1;
                    None
                }
            }),
        Err(TransportError::Timeout) => {
            metrics.timeouts += 1;
            None
        }
        Err(_) => None,
    }
}

/// Extract the root SOA serial from a response.
fn soa_serial_of(resp: &Message) -> Option<u32> {
    resp.answers.iter().find_map(|r| match &r.rdata {
        dns_wire::Rdata::Soa(soa) => Some(soa.serial),
        _ => None,
    })
}

/// Poll one upstream's SOA serial with the full client discipline:
/// randomized query IDs, retry budget with deterministic backoff, and a
/// TCP retry on TC or garbage UDP.
fn poll_serial_wire<T: Transport>(
    transport: &mut T,
    upstream: u64,
    cycle: u64,
    ctx: &mut RefreshCtx<'_>,
) -> Option<u32> {
    for attempt in 0..ctx.retry.attempts {
        if attempt > 0 {
            ctx.wait_backoff(upstream, cycle, attempt);
        }
        let mut rng =
            SimRng::new(ctx.retry.seed).derive_ids(&[0x50a0, upstream, cycle, attempt as u64]);
        let id = rng.next_u64() as u16;
        let wire = Message::query(id, Question::new(Name::root(), RrType::Soa)).to_wire();
        let resp = match transport.exchange_udp(&wire) {
            Ok(Some(raw)) => match parse_checked(&raw, id) {
                ParsedUdp::Ok(resp) => Some(resp),
                ParsedUdp::Truncated => {
                    ctx.metrics.tcp_fallbacks += 1;
                    query_over_tcp(transport, &wire, id, ctx.metrics)
                }
                ParsedUdp::Garbage => {
                    // Corruption may live on the UDP path only (a faulty
                    // middlebox): retry over TCP before burning the
                    // attempt.
                    ctx.metrics.garbage_responses += 1;
                    ctx.metrics.tcp_fallbacks += 1;
                    query_over_tcp(transport, &wire, id, ctx.metrics)
                }
            },
            Ok(None) | Err(TransportError::Timeout) => {
                ctx.metrics.timeouts += 1;
                None
            }
            Err(_) => None,
        };
        if let Some(resp) = resp {
            if let Some(serial) = soa_serial_of(&resp) {
                return Some(serial);
            }
        }
    }
    None
}

/// Rejection detail.
struct TransferRejected {
    message: String,
    /// True when the failure was protocol-level (transfer itself), false
    /// when validation rejected the content.
    protocol_level: bool,
}

/// Transfer from one upstream (with a protocol-level retry budget) and
/// validate per policy.
///
/// Protocol failures — timeouts, unparseable frames, a stream truncated
/// mid-AXFR — are retried with backoff: the next attempt may succeed.
/// Validation rejections are *not* retried against the same upstream: the
/// copy it serves will not get better; the caller fails over instead.
fn transfer_wire<T: Transport>(
    transport: &mut T,
    upstream: u64,
    cycle: u64,
    policy: &ValidationPolicy,
    ctx: &mut RefreshCtx<'_>,
) -> Result<Zone, TransferRejected> {
    let mut last = TransferRejected {
        message: String::from("no attempt made"),
        protocol_level: true,
    };
    for attempt in 0..ctx.retry.attempts {
        if attempt > 0 {
            ctx.wait_backoff(upstream, cycle, attempt);
        }
        let mut rng =
            SimRng::new(ctx.retry.seed).derive_ids(&[0xafa5, upstream, cycle, attempt as u64]);
        let id = rng.next_u64() as u16;
        let q = Message::query(id, Question::new(Name::root(), RrType::Axfr));
        let frames = match transport.exchange_tcp(&q.to_wire()) {
            Ok(frames) => frames,
            Err(e) => {
                if matches!(e, TransportError::Timeout) {
                    ctx.metrics.timeouts += 1;
                }
                last = TransferRejected {
                    message: format!("transfer failed: {e}"),
                    protocol_level: true,
                };
                continue;
            }
        };
        let messages: Vec<Message> = match frames
            .iter()
            .map(|f| Message::from_wire(f))
            .collect::<Result<_, _>>()
        {
            Ok(messages) => messages,
            Err(e) => {
                ctx.metrics.garbage_responses += 1;
                last = TransferRejected {
                    message: format!("transfer frame unparseable: {e:?}"),
                    protocol_level: true,
                };
                continue;
            }
        };
        let zone = match dns_zone::axfr::assemble_axfr(&messages, &Name::root()) {
            Ok(zone) => zone,
            Err(e) => {
                last = TransferRejected {
                    message: format!("reassembly failed: {e}"),
                    protocol_level: true,
                };
                continue;
            }
        };
        return validate_copy(&zone, ctx.timeline.now(), policy).map(|()| zone);
    }
    Err(last)
}

/// Validate a transferred copy per policy: ZONEMD, then RRSIGs.
fn validate_copy(zone: &Zone, now: u32, policy: &ValidationPolicy) -> Result<(), TransferRejected> {
    match verify_zonemd(zone) {
        Ok(()) => {}
        Err(ZonemdError::NoZonemd) | Err(ZonemdError::UnsupportedAlgorithm)
            if policy.zonemd == ZonemdRequirement::Opportunistic => {}
        Err(e) => {
            return Err(TransferRejected {
                message: format!("ZONEMD: {e}"),
                protocol_level: false,
            })
        }
    }
    // RRSIGs per policy (catches stale zones and bitflips in signed data).
    if policy.require_rrsigs {
        let report = validate_zone(zone, now);
        if !report.is_valid() {
            return Err(TransferRejected {
                message: format!("DNSSEC: {:?}", report.issues.first()),
                protocol_level: false,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::HealthState;
    use dns_zone::corrupt::flip_rrsig_bit;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use rootd::{FaultPlan, FaultSpec, FaultyTransport};

    const T0: u32 = 1_701_820_800; // 2023-12-06

    fn fresh_zone(serial: u32) -> Zone {
        build_root_zone(
            &RootZoneConfig {
                serial,
                tld_count: 8,
                inception: T0,
                expiration: T0 + 14 * 86400,
                rollout: RolloutPhase::Validating,
            },
            &ZoneKeys::from_seed(1),
        )
    }

    fn server(letter: RootLetter, zone: Zone) -> (RootLetter, RootServer) {
        (
            letter,
            RootServer {
                letter,
                identity: Some(format!("{}1-test", letter.ch())),
                zone: Arc::new(zone),
                behavior: Default::default(),
            },
        )
    }

    fn healthy_set() -> UpstreamSet {
        UpstreamSet {
            servers: vec![
                server(RootLetter::A, fresh_zone(2023120600)),
                server(RootLetter::B, fresh_zone(2023120600)),
                server(RootLetter::C, fresh_zone(2023120600)),
            ],
        }
    }

    /// Wrap each upstream of a set in a FaultyTransport driven by `plan`.
    fn faulty_upstreams(
        ups: &UpstreamSet,
        plan: &Arc<FaultPlan>,
    ) -> Vec<(RootLetter, FaultyTransport<InprocTransport>)> {
        ups.servers
            .iter()
            .enumerate()
            .map(|(i, (letter, server))| {
                (
                    *letter,
                    FaultyTransport::new(upstream_transport(server), Arc::clone(plan), i as u64),
                )
            })
            .collect()
    }

    #[test]
    fn first_refresh_populates_copy() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&healthy_set(), T0 + 60).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                serial: 2023120600,
                ..
            }
        ));
        assert!(lr.is_serving(T0 + 60));
        assert_eq!(lr.metrics.transfers_accepted, 1);
    }

    #[test]
    fn second_refresh_is_noop_when_current() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let ups = healthy_set();
        lr.refresh(&ups, T0 + 60).unwrap();
        let out = lr.refresh(&ups, T0 + 120).unwrap();
        assert!(matches!(out, RefreshOutcome::AlreadyCurrent { .. }));
        assert_eq!(lr.metrics.transfers_attempted, 1);
    }

    #[test]
    fn corrupted_upstream_triggers_fallback() {
        // First upstream serves a bit-flipped zone; the service must
        // reject it and succeed against the second (the §7 fallback).
        let mut bad = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad, 9).unwrap();
        let ups = UpstreamSet {
            servers: vec![
                server(RootLetter::A, bad),
                server(RootLetter::B, fresh_zone(2023120600)),
            ],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&ups, T0 + 60).unwrap();
        match out {
            RefreshOutcome::Updated {
                from_upstream,
                attempts,
                ..
            } => {
                assert_eq!(from_upstream, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(lr.metrics.transfers_rejected, 1);
        assert_eq!(lr.metrics.fallbacks, 1);
        // A validation rejection is never retried against the same
        // upstream — one attempt each, no protocol retries.
        assert_eq!(lr.metrics.transfers_attempted, 2);
        assert_eq!(lr.metrics.retries, 0);
    }

    #[test]
    fn stale_upstream_rejected() {
        // A server whose zone's signatures expired (the Tokyo/Leeds case).
        let old = build_root_zone(
            &RootZoneConfig {
                serial: 2023110100,
                tld_count: 8,
                inception: T0 - 40 * 86400,
                expiration: T0 - 26 * 86400,
                rollout: RolloutPhase::Validating,
            },
            &ZoneKeys::from_seed(1),
        );
        let ups = UpstreamSet {
            servers: vec![
                server(RootLetter::D, old),
                server(RootLetter::E, fresh_zone(2023120600)),
            ],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&ups, T0 + 60).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                from_upstream: 1,
                ..
            }
        ));
    }

    #[test]
    fn all_bad_upstreams_error_and_fail_closed() {
        let mut bad1 = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad1, 1).unwrap();
        let mut bad2 = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad2, 2).unwrap();
        let ups = UpstreamSet {
            servers: vec![server(RootLetter::A, bad1), server(RootLetter::B, bad2)],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let err = lr.refresh(&ups, T0 + 60).unwrap_err();
        assert!(matches!(
            err,
            RefreshError::AllUpstreamsFailed { attempts: 2, .. }
        ));
        // Queries are refused: fail closed.
        let q = Message::query(1, Question::new(Name::root(), RrType::Soa));
        let resp = lr.answer(&q, T0 + 60);
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(lr.metrics.queries_refused, 1);
    }

    #[test]
    fn strict_policy_rejects_unverifiable_zonemd() {
        // Pre-roll-out zone (no ZONEMD): opportunistic accepts, strict
        // rejects.
        let no_zonemd = build_root_zone(
            &RootZoneConfig {
                serial: 2023080100,
                tld_count: 8,
                inception: T0,
                expiration: T0 + 14 * 86400,
                rollout: RolloutPhase::NoRecord,
            },
            &ZoneKeys::from_seed(1),
        );
        let ups = UpstreamSet {
            servers: vec![server(RootLetter::A, no_zonemd)],
        };
        let mut opportunistic = LocalRoot::new(ValidationPolicy::default());
        assert!(opportunistic.refresh(&ups, T0 + 60).is_ok());
        let mut strict = LocalRoot::new(ValidationPolicy::strict());
        assert!(strict.refresh(&ups, T0 + 60).is_err());
    }

    #[test]
    fn serves_delegations_from_copy() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.refresh(&healthy_set(), T0 + 60).unwrap();
        let ns = lr.delegation("com", T0 + 120).expect("com is delegated");
        assert!(!ns.is_empty());
        assert!(lr.delegation("nonexistent-tld", T0 + 120).is_none());
        assert!(lr.metrics.queries_served >= 2);
    }

    #[test]
    fn copy_expires_after_max_age() {
        let mut lr = LocalRoot::new(ValidationPolicy {
            max_age: 3600,
            serve_stale: false,
            ..Default::default()
        });
        lr.refresh(&healthy_set(), T0).unwrap();
        assert!(lr.is_serving(T0 + 3599));
        assert!(!lr.is_serving(T0 + 3601));
        // And queries refuse once expired (stale serving disabled).
        let q = Message::query(1, Question::new(Name::root(), RrType::Soa));
        assert_eq!(lr.answer(&q, T0 + 4000).header.rcode, Rcode::ServFail);
        assert_eq!(lr.metrics.refused_expired, 1);
    }

    #[test]
    fn serve_stale_bridges_refresh_outages_up_to_soa_expire() {
        // Default policy allows stale serving; the zone's SOA expire is
        // 7 days. With max_age shrunk to an hour, the window between
        // max_age and expire serves stale answers.
        let mut lr = LocalRoot::new(ValidationPolicy {
            max_age: 3600,
            ..Default::default()
        });
        lr.refresh(&healthy_set(), T0).unwrap();
        let expire = 604_800; // the built zone's SOA expire field
        let q = Message::query(1, Question::new(Name::root(), RrType::Soa));

        assert_eq!(lr.serving_state(T0 + 3599), ServingState::Fresh);
        assert_eq!(lr.serving_state(T0 + 3601), ServingState::Stale);
        assert!(lr.is_usable(T0 + 3601) && !lr.is_serving(T0 + 3601));
        assert_eq!(lr.answer(&q, T0 + 3601).header.rcode, Rcode::NoError);
        assert_eq!(lr.metrics.served_stale, 1);

        // Staleness is bounded by the zone's own expire field.
        assert_eq!(lr.serving_state(T0 + expire), ServingState::Stale);
        assert_eq!(lr.serving_state(T0 + expire + 1), ServingState::Expired);
        assert_eq!(lr.answer(&q, T0 + expire + 1).header.rcode, Rcode::ServFail);
        assert_eq!(lr.metrics.refused_expired, 1);
        assert_eq!(lr.metrics.served_fresh, 0);
    }

    #[test]
    fn newer_upstream_serial_triggers_update() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let old_set = healthy_set();
        lr.refresh(&old_set, T0).unwrap();
        let new_set = UpstreamSet {
            servers: vec![server(RootLetter::A, fresh_zone(2023120700))],
        };
        let out = lr.refresh(&new_set, T0 + 600).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                serial: 2023120700,
                ..
            }
        ));
    }

    #[test]
    fn no_upstreams_is_an_error() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        assert_eq!(
            lr.refresh(&UpstreamSet { servers: vec![] }, T0),
            Err(RefreshError::NoUpstreams)
        );
    }

    #[test]
    fn refresh_survives_heavy_loss_with_retries() {
        // 40% datagram loss on every upstream: the retry budget and TCP
        // transfer path must still land a validated copy.
        let ups = healthy_set();
        let plan = Arc::new(FaultPlan::clean(0xdead).with_default(FaultSpec::loss(0.4)));
        let mut wired = faulty_upstreams(&ups, &plan);
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh_wire(&mut wired, T0 + 60).unwrap();
        assert!(matches!(out, RefreshOutcome::Updated { .. }));
        assert_eq!(lr.current_serial(), Some(2023120600));
    }

    #[test]
    fn blackholed_primary_opens_breaker_and_next_cycle_skips_it() {
        let ups = healthy_set();
        let mut plan = FaultPlan::clean(7);
        plan.set_both(0, FaultSpec::blackhole()); // upstream A: dead air
        let plan = Arc::new(plan);
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.retry.failure_threshold = 1; // open the breaker on first failure
        let mut wired = faulty_upstreams(&ups, &plan);
        let out = lr.refresh_wire(&mut wired, T0 + 60).unwrap();
        // A fails (blackhole ⇒ timeouts), B serves the copy.
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                from_upstream: 1,
                ..
            }
        ));
        assert!(lr.metrics.timeouts > 0);
        assert_eq!(lr.metrics.breaker_opened, 1);
        assert!(matches!(
            lr.upstream_health(RootLetter::A).unwrap().state,
            HealthState::Dead { .. }
        ));

        // Next cycle (within the cooldown) skips A without spending its
        // retry budget on dead air.
        lr.set_primary(0);
        let mut wired = faulty_upstreams(&ups, &plan);
        let timeouts_before = lr.metrics.timeouts;
        lr.refresh_wire(&mut wired, T0 + 120).unwrap();
        assert_eq!(lr.metrics.timeouts, timeouts_before);
    }

    /// Wrap each upstream in a FaultyTransport sharing `clock`.
    fn clock_upstreams(
        ups: &UpstreamSet,
        plan: &Arc<FaultPlan>,
        clock: &simclock::ClockHandle,
    ) -> Vec<(RootLetter, FaultyTransport<InprocTransport>)> {
        ups.servers
            .iter()
            .enumerate()
            .map(|(i, (letter, server))| {
                (
                    *letter,
                    FaultyTransport::new(upstream_transport(server), Arc::clone(plan), i as u64)
                        .with_clock(clock.clone()),
                )
            })
            .collect()
    }

    /// The PR's headline regression: a blackhole bounded in *time* is
    /// escaped by backing off on the shared clock. Under the old
    /// private-clock transport (1 ms per exchange, waits invisible) a
    /// client could never wait out a millisecond window.
    #[test]
    fn backoff_alone_escapes_a_bounded_blackhole() {
        let ups = healthy_set();
        let plan = Arc::new(
            FaultPlan::clean(11)
                .with_timeout_ms(200)
                .with_default(FaultSpec {
                    blackholes: vec![(0, 5_000)],
                    ..FaultSpec::clean()
                }),
        );
        let clock = simclock::ClockHandle::new();
        let axis = simclock::TimeAxis::anchored_at(T0);
        let mut wired = clock_upstreams(&ups, &plan, &clock);
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.retry.attempts = 6;
        // Timeout waits alone cannot cross the window: the escape below
        // is purely the exponential backoff advancing the shared clock.
        assert!((lr.retry.attempts as u64) * plan.client_timeout_ms < 5_000);
        let out = lr.refresh_on_clock(&mut wired, &clock, axis).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                serial: 2023120600,
                from_upstream: 0,
                ..
            }
        ));
        assert!(clock.now_ms() >= 5_000, "clock = {}", clock.now_ms());
        assert!(lr.metrics.timeouts > 0, "the window cost timeouts first");
        assert!(!lr.backoff_log.is_empty());
        // The copy was activated at the post-escape wall time, not T0.
        assert!(lr.is_serving(axis.now_wall(&clock)));
    }

    /// Satellite: backoff jitter keyed on clock time (not per-client
    /// cycle counters) makes the whole schedule a pure function of the
    /// timeline — bit-identical across runs and across however many
    /// threads run other clients concurrently.
    #[test]
    fn clock_backoff_schedule_replays_bit_identically_across_threads() {
        let run = || {
            let ups = healthy_set();
            let plan = Arc::new(FaultPlan::clean(11).with_timeout_ms(200).with_default(
                FaultSpec {
                    blackholes: vec![(0, 5_000)],
                    ..FaultSpec::clean()
                },
            ));
            let clock = simclock::ClockHandle::new();
            let mut wired = clock_upstreams(&ups, &plan, &clock);
            let mut lr = LocalRoot::new(ValidationPolicy::default());
            lr.retry.attempts = 6;
            let out = lr
                .refresh_on_clock(&mut wired, &clock, simclock::TimeAxis::anchored_at(T0))
                .unwrap();
            (out, lr.backoff_log, lr.metrics, clock.now_ms())
        };
        let baseline = run();
        assert!(!baseline.1.is_empty());
        // Re-run on this thread and on several others at once: every
        // client owns its clock, so nothing ambient can skew the waits.
        assert_eq!(baseline, run());
        let concurrent: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(run))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for got in concurrent {
            assert_eq!(baseline, got);
        }
    }

    #[test]
    fn faulty_refresh_is_deterministic_across_runs() {
        // Same seed, same fault plan ⇒ identical metrics and outcome.
        let run = || {
            let ups = healthy_set();
            let plan = Arc::new(FaultPlan::clean(42).with_default(FaultSpec::loss(0.3)));
            let mut wired = faulty_upstreams(&ups, &plan);
            let mut lr = LocalRoot::new(ValidationPolicy::default());
            let out = lr.refresh_wire(&mut wired, T0 + 60);
            let counters: Vec<_> = wired.iter().map(|(_, t)| t.counters()).collect();
            (out, lr.metrics, counters)
        };
        let (out1, m1, c1) = run();
        let (out2, m2, c2) = run();
        assert_eq!(out1, out2);
        assert_eq!(m1, m2);
        assert_eq!(c1, c2);
    }
}
