//! The local root service itself: refresh loop, validation, fallback,
//! query serving.

use crate::metrics::Metrics;
use crate::policy::{ValidationPolicy, ZonemdRequirement};
use dns_wire::{Message, Name, Question, Rcode, RrType};
use dns_zone::validate::validate_zone;
use dns_zone::zonemd::{verify_zonemd, ZonemdError};
use dns_zone::Zone;
use rootd::{InprocTransport, Rootd, SiteIdentity, Transport, ZoneIndex};
use rss::{RootLetter, RootServer};
use std::sync::Arc;

/// The set of upstream root servers a local root can transfer from.
///
/// In production this is the 13 letters; in tests it is whatever mix of
/// healthy, stale and corrupting servers the scenario needs.
pub struct UpstreamSet {
    pub servers: Vec<(RootLetter, RootServer)>,
}

impl UpstreamSet {
    /// Number of upstreams.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

/// Why a refresh failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshError {
    /// Every upstream was tried; none produced an acceptable copy.
    AllUpstreamsFailed { attempts: u32, last_reason: String },
    /// No upstreams configured.
    NoUpstreams,
}

impl std::fmt::Display for RefreshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshError::AllUpstreamsFailed {
                attempts,
                last_reason,
            } => write!(f, "all {attempts} upstreams failed; last: {last_reason}"),
            RefreshError::NoUpstreams => write!(f, "no upstreams configured"),
        }
    }
}

impl std::error::Error for RefreshError {}

/// Result of one refresh cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// The local copy was already current.
    AlreadyCurrent { serial: u32 },
    /// A new copy was transferred, validated and activated.
    Updated {
        serial: u32,
        /// Which upstream finally served it (index into the set).
        from_upstream: usize,
        /// How many upstreams were tried before success.
        attempts: u32,
    },
}

/// A local root instance.
pub struct LocalRoot {
    /// The active, validated zone copy (None until first refresh).
    current: Option<Arc<Zone>>,
    /// When the active copy was activated.
    activated_at: u32,
    pub policy: ValidationPolicy,
    pub metrics: Metrics,
    /// Rotation cursor so fallback spreads load across letters.
    next_upstream: usize,
}

impl LocalRoot {
    /// A fresh instance with `policy`.
    pub fn new(policy: ValidationPolicy) -> LocalRoot {
        LocalRoot {
            current: None,
            activated_at: 0,
            policy,
            metrics: Metrics::default(),
            next_upstream: 0,
        }
    }

    /// Serial of the active copy, if any.
    pub fn current_serial(&self) -> Option<u32> {
        self.current.as_ref().and_then(|z| z.serial().ok())
    }

    /// Pin the upstream tried first on the next refresh (RFC 8806 configs
    /// order their server list; operators often prefer the nearest
    /// instance). Without this, refreshes rotate across upstreams.
    pub fn set_primary(&mut self, index: usize) {
        self.next_upstream = index;
    }

    /// Whether a usable copy exists at time `now` (validated and not
    /// older than the policy's max age).
    pub fn is_serving(&self, now: u32) -> bool {
        self.current.is_some() && now.saturating_sub(self.activated_at) <= self.policy.max_age
    }

    /// One refresh cycle at wall-clock `now`:
    /// poll SOA; transfer if stale; validate; fall back across upstreams.
    pub fn refresh(
        &mut self,
        upstreams: &UpstreamSet,
        now: u32,
    ) -> Result<RefreshOutcome, RefreshError> {
        if upstreams.is_empty() {
            return Err(RefreshError::NoUpstreams);
        }
        // SOA poll against the first upstream in rotation.
        self.metrics.soa_polls += 1;
        let poll_idx = self.next_upstream % upstreams.len();
        let upstream_serial = poll_serial(&upstreams.servers[poll_idx].1).unwrap_or(u32::MAX);
        if let Some(cur) = self.current_serial() {
            if cur >= upstream_serial && self.is_serving(now) {
                return Ok(RefreshOutcome::AlreadyCurrent { serial: cur });
            }
        }
        // Transfer with fallback: try each upstream once, starting at the
        // rotation cursor.
        let mut last_reason = String::from("no attempt made");
        let n = upstreams.len();
        for attempt in 0..n {
            let idx = (self.next_upstream + attempt) % n;
            let server = &upstreams.servers[idx].1;
            self.metrics.transfers_attempted += 1;
            match attempt_transfer(server, now, &self.policy) {
                Ok(zone) => {
                    let serial = zone.serial().unwrap_or(0);
                    self.metrics.transfers_accepted += 1;
                    self.current = Some(Arc::new(zone));
                    self.activated_at = now;
                    // Advance rotation past the successful upstream.
                    self.next_upstream = (idx + 1) % n;
                    return Ok(RefreshOutcome::Updated {
                        serial,
                        from_upstream: idx,
                        attempts: attempt as u32 + 1,
                    });
                }
                Err(reason) => {
                    if reason.protocol_level {
                        self.metrics.transfers_failed += 1;
                    } else {
                        self.metrics.transfers_rejected += 1;
                    }
                    if attempt + 1 < n {
                        self.metrics.fallbacks += 1;
                    }
                    last_reason = reason.message;
                }
            }
        }
        self.next_upstream = (self.next_upstream + 1) % n;
        Err(RefreshError::AllUpstreamsFailed {
            attempts: n as u32,
            last_reason,
        })
    }

    /// Answer a query from the active copy. Refuses (and counts) when no
    /// valid copy is in service — RFC 8806's fail-closed behaviour.
    pub fn answer(&mut self, query: &Message, now: u32) -> Message {
        let Some(zone) = self.current.clone().filter(|_| self.is_serving(now)) else {
            self.metrics.queries_refused += 1;
            return Message::response_to(query, Rcode::ServFail, Vec::new());
        };
        self.metrics.queries_served += 1;
        let Some(q) = query.questions.first() else {
            return Message::response_to(query, Rcode::FormErr, Vec::new());
        };
        let records: Vec<dns_wire::Record> = zone
            .rrset(&q.name, q.rr_type)
            .into_iter()
            .cloned()
            .collect();
        if records.is_empty() {
            let exists = zone.records().iter().any(|r| r.name == q.name);
            let rcode = if exists {
                Rcode::NoError
            } else {
                Rcode::NxDomain
            };
            return Message::response_to(query, rcode, Vec::new());
        }
        Message::response_to(query, Rcode::NoError, records)
    }

    /// Convenience: look up the NS set of a TLD from the active copy.
    pub fn delegation(&mut self, tld: &str, now: u32) -> Option<Vec<Name>> {
        let name = Name::parse(&format!("{tld}.")).ok()?;
        let query = Message::query(0, Question::new(name, RrType::Ns));
        let resp = self.answer(&query, now);
        if resp.header.rcode != Rcode::NoError || resp.answers.is_empty() {
            return None;
        }
        Some(
            resp.answers
                .iter()
                .filter_map(|r| match &r.rdata {
                    dns_wire::Rdata::Ns(n) => Some(n.clone()),
                    _ => None,
                })
                .collect(),
        )
    }
}

/// A wire-level serving endpoint for one upstream: the server's currently
/// served zone (stale copy and all) behind a `rootd` engine, reached over
/// the deterministic in-proc transport. The refresh loop talks bytes, not
/// structs — the same parse→serve→encode path a network client exercises.
fn upstream_transport(server: &RootServer) -> InprocTransport {
    let index = Arc::new(ZoneIndex::build(Arc::clone(server.served_zone())));
    let identity = SiteIdentity {
        hostname: server.identity.clone(),
        version: format!("rootd 0.1 ({}.root)", server.letter.ch()),
    };
    InprocTransport::new(Arc::new(Rootd::new(index, identity)))
}

/// Poll the upstream's SOA serial (one query, like `dig SOA .`), over the
/// wire codec.
fn poll_serial(server: &RootServer) -> Option<u32> {
    let q = Message::query(0, Question::new(Name::root(), RrType::Soa));
    let raw = upstream_transport(server)
        .exchange_udp(&q.to_wire())
        .ok()??;
    let resp = Message::from_wire(&raw).ok()?;
    resp.answers.iter().find_map(|r| match &r.rdata {
        dns_wire::Rdata::Soa(soa) => Some(soa.serial),
        _ => None,
    })
}

/// Rejection detail.
struct TransferRejected {
    message: String,
    /// True when the failure was protocol-level (transfer itself), false
    /// when validation rejected the content.
    protocol_level: bool,
}

/// Transfer from one upstream and validate per policy.
fn attempt_transfer(
    server: &RootServer,
    now: u32,
    policy: &ValidationPolicy,
) -> Result<Zone, TransferRejected> {
    // AXFR over the wire path: a TCP-semantics exchange of framed message
    // bytes, each frame re-parsed with the real codec before reassembly.
    let q = Message::query(0x4242, Question::new(Name::root(), RrType::Axfr));
    let frames = upstream_transport(server)
        .exchange_tcp(&q.to_wire())
        .map_err(|e| TransferRejected {
            message: format!("transfer failed: {e}"),
            protocol_level: true,
        })?;
    let messages: Vec<Message> = frames
        .iter()
        .map(|f| Message::from_wire(f))
        .collect::<Result<_, _>>()
        .map_err(|e| TransferRejected {
            message: format!("transfer frame unparseable: {e:?}"),
            protocol_level: true,
        })?;
    let zone =
        dns_zone::axfr::assemble_axfr(&messages, &Name::root()).map_err(|e| TransferRejected {
            message: format!("reassembly failed: {e}"),
            protocol_level: true,
        })?;
    // ZONEMD per policy.
    match verify_zonemd(&zone) {
        Ok(()) => {}
        Err(ZonemdError::NoZonemd) | Err(ZonemdError::UnsupportedAlgorithm)
            if policy.zonemd == ZonemdRequirement::Opportunistic => {}
        Err(e) => {
            return Err(TransferRejected {
                message: format!("ZONEMD: {e}"),
                protocol_level: false,
            })
        }
    }
    // RRSIGs per policy (catches stale zones and bitflips in signed data).
    if policy.require_rrsigs {
        let report = validate_zone(&zone, now);
        if !report.is_valid() {
            return Err(TransferRejected {
                message: format!("DNSSEC: {:?}", report.issues.first()),
                protocol_level: false,
            });
        }
    }
    Ok(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::corrupt::flip_rrsig_bit;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;

    const T0: u32 = 1_701_820_800; // 2023-12-06

    fn fresh_zone(serial: u32) -> Zone {
        build_root_zone(
            &RootZoneConfig {
                serial,
                tld_count: 8,
                inception: T0,
                expiration: T0 + 14 * 86400,
                rollout: RolloutPhase::Validating,
            },
            &ZoneKeys::from_seed(1),
        )
    }

    fn server(letter: RootLetter, zone: Zone) -> (RootLetter, RootServer) {
        (
            letter,
            RootServer {
                letter,
                identity: Some(format!("{}1-test", letter.ch())),
                zone: Arc::new(zone),
                behavior: Default::default(),
            },
        )
    }

    fn healthy_set() -> UpstreamSet {
        UpstreamSet {
            servers: vec![
                server(RootLetter::A, fresh_zone(2023120600)),
                server(RootLetter::B, fresh_zone(2023120600)),
                server(RootLetter::C, fresh_zone(2023120600)),
            ],
        }
    }

    #[test]
    fn first_refresh_populates_copy() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&healthy_set(), T0 + 60).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                serial: 2023120600,
                ..
            }
        ));
        assert!(lr.is_serving(T0 + 60));
        assert_eq!(lr.metrics.transfers_accepted, 1);
    }

    #[test]
    fn second_refresh_is_noop_when_current() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let ups = healthy_set();
        lr.refresh(&ups, T0 + 60).unwrap();
        let out = lr.refresh(&ups, T0 + 120).unwrap();
        assert!(matches!(out, RefreshOutcome::AlreadyCurrent { .. }));
        assert_eq!(lr.metrics.transfers_attempted, 1);
    }

    #[test]
    fn corrupted_upstream_triggers_fallback() {
        // First upstream serves a bit-flipped zone; the service must
        // reject it and succeed against the second (the §7 fallback).
        let mut bad = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad, 9).unwrap();
        let ups = UpstreamSet {
            servers: vec![
                server(RootLetter::A, bad),
                server(RootLetter::B, fresh_zone(2023120600)),
            ],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&ups, T0 + 60).unwrap();
        match out {
            RefreshOutcome::Updated {
                from_upstream,
                attempts,
                ..
            } => {
                assert_eq!(from_upstream, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(lr.metrics.transfers_rejected, 1);
        assert_eq!(lr.metrics.fallbacks, 1);
    }

    #[test]
    fn stale_upstream_rejected() {
        // A server whose zone's signatures expired (the Tokyo/Leeds case).
        let old = build_root_zone(
            &RootZoneConfig {
                serial: 2023110100,
                tld_count: 8,
                inception: T0 - 40 * 86400,
                expiration: T0 - 26 * 86400,
                rollout: RolloutPhase::Validating,
            },
            &ZoneKeys::from_seed(1),
        );
        let ups = UpstreamSet {
            servers: vec![
                server(RootLetter::D, old),
                server(RootLetter::E, fresh_zone(2023120600)),
            ],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let out = lr.refresh(&ups, T0 + 60).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                from_upstream: 1,
                ..
            }
        ));
    }

    #[test]
    fn all_bad_upstreams_error_and_fail_closed() {
        let mut bad1 = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad1, 1).unwrap();
        let mut bad2 = fresh_zone(2023120600);
        flip_rrsig_bit(&mut bad2, 2).unwrap();
        let ups = UpstreamSet {
            servers: vec![server(RootLetter::A, bad1), server(RootLetter::B, bad2)],
        };
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let err = lr.refresh(&ups, T0 + 60).unwrap_err();
        assert!(matches!(
            err,
            RefreshError::AllUpstreamsFailed { attempts: 2, .. }
        ));
        // Queries are refused: fail closed.
        let q = Message::query(1, Question::new(Name::root(), RrType::Soa));
        let resp = lr.answer(&q, T0 + 60);
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(lr.metrics.queries_refused, 1);
    }

    #[test]
    fn strict_policy_rejects_unverifiable_zonemd() {
        // Pre-roll-out zone (no ZONEMD): opportunistic accepts, strict
        // rejects.
        let no_zonemd = build_root_zone(
            &RootZoneConfig {
                serial: 2023080100,
                tld_count: 8,
                inception: T0,
                expiration: T0 + 14 * 86400,
                rollout: RolloutPhase::NoRecord,
            },
            &ZoneKeys::from_seed(1),
        );
        let ups = UpstreamSet {
            servers: vec![server(RootLetter::A, no_zonemd)],
        };
        let mut opportunistic = LocalRoot::new(ValidationPolicy::default());
        assert!(opportunistic.refresh(&ups, T0 + 60).is_ok());
        let mut strict = LocalRoot::new(ValidationPolicy::strict());
        assert!(strict.refresh(&ups, T0 + 60).is_err());
    }

    #[test]
    fn serves_delegations_from_copy() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.refresh(&healthy_set(), T0 + 60).unwrap();
        let ns = lr.delegation("com", T0 + 120).expect("com is delegated");
        assert!(!ns.is_empty());
        assert!(lr.delegation("nonexistent-tld", T0 + 120).is_none());
        assert!(lr.metrics.queries_served >= 2);
    }

    #[test]
    fn copy_expires_after_max_age() {
        let mut lr = LocalRoot::new(ValidationPolicy {
            max_age: 3600,
            ..Default::default()
        });
        lr.refresh(&healthy_set(), T0).unwrap();
        assert!(lr.is_serving(T0 + 3599));
        assert!(!lr.is_serving(T0 + 3601));
        // And queries refuse once expired.
        let q = Message::query(1, Question::new(Name::root(), RrType::Soa));
        assert_eq!(lr.answer(&q, T0 + 4000).header.rcode, Rcode::ServFail);
    }

    #[test]
    fn newer_upstream_serial_triggers_update() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        let old_set = healthy_set();
        lr.refresh(&old_set, T0).unwrap();
        let new_set = UpstreamSet {
            servers: vec![server(RootLetter::A, fresh_zone(2023120700))],
        };
        let out = lr.refresh(&new_set, T0 + 600).unwrap();
        assert!(matches!(
            out,
            RefreshOutcome::Updated {
                serial: 2023120700,
                ..
            }
        ));
    }

    #[test]
    fn no_upstreams_is_an_error() {
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        assert_eq!(
            lr.refresh(&UpstreamSet { servers: vec![] }, T0),
            Err(RefreshError::NoUpstreams)
        );
    }
}
