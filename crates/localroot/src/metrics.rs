//! Operational counters for a local root instance.

/// What happened since start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// SOA polls issued.
    pub soa_polls: u64,
    /// AXFR attempts.
    pub transfers_attempted: u64,
    /// Transfers that completed and validated.
    pub transfers_accepted: u64,
    /// Transfers rejected by validation (ZONEMD/RRSIG).
    pub transfers_rejected: u64,
    /// Transfers that failed at the protocol level.
    pub transfers_failed: u64,
    /// Fallbacks to a different upstream after a rejection/failure.
    pub fallbacks: u64,
    /// Queries answered from the local copy.
    pub queries_served: u64,
    /// Queries refused because no valid copy was available.
    pub queries_refused: u64,
    /// Queries answered from a copy within the policy's max age.
    pub served_fresh: u64,
    /// Queries answered from a copy past max age but inside the zone's
    /// SOA expire bound (graceful degradation).
    pub served_stale: u64,
    /// Queries refused because the copy outlived the SOA expire bound
    /// (subset of `queries_refused`).
    pub refused_expired: u64,
    /// Query/transfer retries issued by the refresh client.
    pub retries: u64,
    /// Client-visible timeouts (dropped datagrams, dead TCP exchanges).
    pub timeouts: u64,
    /// Responses discarded as garbage (unparseable, wrong ID, not a
    /// response).
    pub garbage_responses: u64,
    /// Retries escalated from UDP to TCP (TC bit or garbage datagram).
    pub tcp_fallbacks: u64,
    /// Total backoff the client would have slept, in milliseconds
    /// (deterministic; simulated time).
    pub backoff_ms_total: u64,
    /// Times an upstream's circuit breaker opened (healthy/probation →
    /// dead).
    pub breaker_opened: u64,
    /// Transfer slots skipped because an upstream's breaker was open.
    pub upstreams_skipped_dead: u64,
}

impl Metrics {
    /// Acceptance ratio over attempted transfers (1.0 when none attempted).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.transfers_attempted == 0 {
            1.0
        } else {
            self.transfers_accepted as f64 / self.transfers_attempted as f64
        }
    }

    /// Render a one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "soa_polls={} transfers: attempted={} accepted={} rejected={} failed={} \
             fallbacks={} | client: retries={} timeouts={} garbage={} tcp_fallbacks={} \
             backoff_ms={} breaker_opened={} skipped_dead={} | queries: served={} \
             (fresh={} stale={}) refused={} (expired={})",
            self.soa_polls,
            self.transfers_attempted,
            self.transfers_accepted,
            self.transfers_rejected,
            self.transfers_failed,
            self.fallbacks,
            self.retries,
            self.timeouts,
            self.garbage_responses,
            self.tcp_fallbacks,
            self.backoff_ms_total,
            self.breaker_opened,
            self.upstreams_skipped_dead,
            self.queries_served,
            self.served_fresh,
            self.served_stale,
            self.queries_refused,
            self.refused_expired,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratio_edge_cases() {
        let m = Metrics::default();
        assert_eq!(m.acceptance_ratio(), 1.0);
        let m = Metrics {
            transfers_attempted: 4,
            transfers_accepted: 3,
            ..Default::default()
        };
        assert_eq!(m.acceptance_ratio(), 0.75);
    }

    #[test]
    fn render_contains_counters() {
        let m = Metrics {
            fallbacks: 2,
            ..Default::default()
        };
        assert!(m.render().contains("fallbacks=2"));
    }
}
