//! Operational counters for a local root instance.

/// What happened since start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// SOA polls issued.
    pub soa_polls: u64,
    /// AXFR attempts.
    pub transfers_attempted: u64,
    /// Transfers that completed and validated.
    pub transfers_accepted: u64,
    /// Transfers rejected by validation (ZONEMD/RRSIG).
    pub transfers_rejected: u64,
    /// Transfers that failed at the protocol level.
    pub transfers_failed: u64,
    /// Fallbacks to a different upstream after a rejection/failure.
    pub fallbacks: u64,
    /// Queries answered from the local copy.
    pub queries_served: u64,
    /// Queries refused because no valid copy was available.
    pub queries_refused: u64,
}

impl Metrics {
    /// Acceptance ratio over attempted transfers (1.0 when none attempted).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.transfers_attempted == 0 {
            1.0
        } else {
            self.transfers_accepted as f64 / self.transfers_attempted as f64
        }
    }

    /// Render a one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "soa_polls={} transfers: attempted={} accepted={} rejected={} failed={} \
             fallbacks={} | queries: served={} refused={}",
            self.soa_polls,
            self.transfers_attempted,
            self.transfers_accepted,
            self.transfers_rejected,
            self.transfers_failed,
            self.fallbacks,
            self.queries_served,
            self.queries_refused,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratio_edge_cases() {
        let m = Metrics::default();
        assert_eq!(m.acceptance_ratio(), 1.0);
        let m = Metrics {
            transfers_attempted: 4,
            transfers_accepted: 3,
            ..Default::default()
        };
        assert_eq!(m.acceptance_ratio(), 0.75);
    }

    #[test]
    fn render_contains_counters() {
        let m = Metrics {
            fallbacks: 2,
            ..Default::default()
        };
        assert!(m.render().contains("fallbacks=2"));
    }
}
