//! Validation policy for ingested zone copies.

/// How strictly ZONEMD is enforced.
///
/// The root operators announced a monitor-first roll-out (§7: "the
/// situation will be monitored ... for at least one year, before further
/// action is taken, e.g., rejecting non-verifying zones") — so both modes
/// exist in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZonemdRequirement {
    /// Reject any copy without a *validating* ZONEMD record. The post
    /// roll-out target state.
    Required,
    /// Validate when a verifiable record is present; accept copies from
    /// the earlier roll-out phases (no record / private algorithm). A
    /// digest *mismatch* is always fatal.
    Opportunistic,
}

/// Full validation policy.
#[derive(Debug, Clone)]
pub struct ValidationPolicy {
    pub zonemd: ZonemdRequirement,
    /// Whether every RRSIG must verify (DNSSEC validation of the copy).
    pub require_rrsigs: bool,
    /// Maximum age (seconds) of a copy before it is considered stale even
    /// if upstream polls fail — RFC 8806 says a failing local root must
    /// fall back to normal resolution rather than serve stale data.
    pub max_age: u32,
    /// Whether a copy older than `max_age` may still answer queries, up
    /// to the zone's own SOA expire bound. Graceful degradation for
    /// refresh outages; the strict policy disables it (fail closed the
    /// moment freshness lapses).
    pub serve_stale: bool,
}

impl Default for ValidationPolicy {
    fn default() -> Self {
        ValidationPolicy {
            zonemd: ZonemdRequirement::Opportunistic,
            require_rrsigs: true,
            max_age: 7 * 86_400,
            serve_stale: true,
        }
    }
}

impl ValidationPolicy {
    /// The strict post-roll-out policy.
    pub fn strict() -> Self {
        ValidationPolicy {
            zonemd: ZonemdRequirement::Required,
            require_rrsigs: true,
            max_age: 2 * 86_400,
            serve_stale: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_opportunistic() {
        let p = ValidationPolicy::default();
        assert_eq!(p.zonemd, ZonemdRequirement::Opportunistic);
        assert!(p.require_rrsigs);
    }

    #[test]
    fn strict_requires_zonemd() {
        assert_eq!(
            ValidationPolicy::strict().zonemd,
            ZonemdRequirement::Required
        );
    }
}
