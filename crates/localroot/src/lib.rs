//! A local root zone service (RFC 7706 / RFC 8806).
//!
//! The paper's RQ3 analysis (§7) motivates exactly this component: a
//! resolver that keeps a local copy of the root zone must be able to
//! *verify* that copy — "Parties ingesting ZONEMD signed zone files will
//! be able to implement appropriate fallback mechanisms such as
//! rescheduling a zone transfer from a different root server, and avoid
//! rare, yet hard-to-debug problems, such as bitflips or stale versions."
//!
//! [`LocalRoot`] implements that loop:
//!
//! 1. poll the SOA serial of its current copy against upstream;
//! 2. refresh via AXFR when stale;
//! 3. validate every received copy — ZONEMD plus all RRSIGs — before
//!    activating it;
//! 4. on validation failure, quarantine the copy and retry against a
//!    *different* root server (the fallback the paper recommends);
//! 5. serve queries from the last known-good copy throughout — degrading
//!    to serve-stale (bounded by the SOA expire field) when refreshes
//!    keep failing, then failing closed.
//!
//! The refresh loop is a hardened network client: it talks to upstreams
//! only through the `rootd` [`Transport`](rootd::Transport) abstraction
//! (so chaos tests can wrap upstreams in `rootd::FaultyTransport`), with
//! a per-query retry budget, capped exponential backoff with
//! deterministic jitter, TCP retry on truncated or garbage UDP, and a
//! per-upstream circuit breaker — see [`refresh`].
//!
//! The [`policy`] module captures the validation policy knobs (ZONEMD
//! required vs opportunistic — mirroring the operators' announced
//! monitor-first roll-out), and [`metrics`] counts what happened, which the
//! example binary reports.
//!
//! ```
//! use localroot::{LocalRoot, UpstreamSet, ValidationPolicy};
//! use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
//! use dns_zone::rollout::RolloutPhase;
//! use dns_zone::signer::ZoneKeys;
//! use rss::{RootLetter, RootServer, ServerBehavior};
//! use std::sync::Arc;
//!
//! let now = 1_701_820_800; // 2023-12-06, ZONEMD validates
//! let zone = build_root_zone(&RootZoneConfig {
//!     serial: 2023120600,
//!     tld_count: 5,
//!     inception: now,
//!     expiration: now + 14 * 86_400,
//!     rollout: RolloutPhase::Validating,
//! }, &ZoneKeys::from_seed(1));
//! let upstreams = UpstreamSet {
//!     servers: vec![(RootLetter::K, RootServer {
//!         letter: RootLetter::K,
//!         identity: Some("ns1.fra.k".into()),
//!         zone: Arc::new(zone),
//!         behavior: ServerBehavior::default(),
//!     })],
//! };
//!
//! let mut local = LocalRoot::new(ValidationPolicy::strict());
//! local.refresh(&upstreams, now + 60).expect("zone validates");
//! assert!(local.is_serving(now + 60));
//! assert!(local.delegation("com", now + 60).is_some());
//! ```

pub mod metrics;
pub mod policy;
pub mod refresh;
pub mod service;

pub use metrics::Metrics;
pub use policy::{ValidationPolicy, ZonemdRequirement};
pub use refresh::{HealthState, RetryPolicy, UpstreamHealth};
pub use service::{
    upstream_transport, LocalRoot, RefreshError, RefreshOutcome, ServingState, UpstreamSet,
};
