//! Retry, backoff and upstream-health machinery for the refresh client.
//!
//! The refresh loop in [`crate::service`] is a *client* on an unreliable
//! network: queries time out, responses arrive corrupted or late, whole
//! upstreams disappear for a while. This module holds the pieces that
//! make it survive that — a [`RetryPolicy`] with capped exponential
//! backoff and deterministic jitter, and a per-upstream circuit breaker
//! ([`UpstreamHealth`]) that walks dead → probation → healthy so a
//! blackholed root letter stops eating the retry budget of every cycle.
//!
//! Everything is seeded: the jitter for `(upstream, cycle, attempt)` is a
//! pure function of the policy seed, so a chaos run replays bit-for-bit.
//! Clock-driven refreshes ([`crate::LocalRoot::refresh_on_clock`]) key
//! the jitter on the virtual instant the wait starts instead
//! ([`RetryPolicy::backoff_ms_at`]), making the whole backoff schedule a
//! pure function of the shared timeline.

use netsim::rng::SimRng;

/// How the client retries one upstream and when it gives up on it.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Tries per upstream per refresh cycle (first attempt included).
    pub attempts: u32,
    /// Backoff before retry `k` (1-based) starts at this and doubles.
    pub base_backoff_ms: u64,
    /// Cap on the exponential backoff.
    pub max_backoff_ms: u64,
    /// Jitter fraction: the backoff is stretched by up to this fraction,
    /// drawn deterministically from `seed`.
    pub jitter_frac: f64,
    /// Seed for jitter and query-ID derivation.
    pub seed: u64,
    /// Consecutive failures before a healthy upstream's breaker opens.
    pub failure_threshold: u32,
    /// Seconds a dead upstream sits out before a probation probe.
    pub cooldown_s: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff_ms: 200,
            max_backoff_ms: 5_000,
            jitter_frac: 0.25,
            seed: 0x7e57_0001,
            failure_threshold: 3,
            cooldown_s: 300,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt` (0 = first try, no wait)
    /// against `upstream` in refresh cycle `cycle`: capped exponential
    /// plus deterministic jitter. Same `(seed, upstream, cycle, attempt)`
    /// ⇒ same milliseconds, every run.
    pub fn backoff_ms(&self, upstream: u64, cycle: u64, attempt: u32) -> u64 {
        self.jittered(upstream, cycle, attempt)
    }

    /// Clock-keyed variant of [`backoff_ms`](RetryPolicy::backoff_ms):
    /// jitter derives from the virtual instant (`now_ms`) the wait
    /// starts, not from a per-client cycle counter — so the backoff
    /// schedule is a pure function of the shared timeline and replays
    /// bit-identically no matter which thread or client walks it.
    pub fn backoff_ms_at(&self, upstream: u64, now_ms: u64, attempt: u32) -> u64 {
        self.jittered(upstream, now_ms, attempt)
    }

    fn jittered(&self, upstream: u64, context: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.max_backoff_ms);
        let mut rng =
            SimRng::new(self.seed).derive_ids(&[0xb0ff, upstream, context, attempt as u64]);
        exp + (exp as f64 * self.jitter_frac * rng.next_f64()) as u64
    }
}

/// Circuit-breaker state for one upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering normally.
    Healthy,
    /// Back from the dead on a trial basis: one failure re-opens the
    /// breaker, one success closes it.
    Probation,
    /// Breaker open: skipped until `until`.
    Dead { until: u32 },
}

/// Health scoring for one upstream, driven by the refresh loop's
/// success/failure reports.
#[derive(Debug, Clone, Copy)]
pub struct UpstreamHealth {
    pub state: HealthState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
}

impl Default for UpstreamHealth {
    fn default() -> Self {
        UpstreamHealth {
            state: HealthState::Healthy,
            consecutive_failures: 0,
        }
    }
}

impl UpstreamHealth {
    /// Whether this upstream may be tried at `now`. A dead upstream whose
    /// cooldown elapsed transitions to probation (and is tried).
    pub fn available(&mut self, now: u32) -> bool {
        match self.state {
            HealthState::Dead { until } if now < until => false,
            HealthState::Dead { .. } => {
                self.state = HealthState::Probation;
                true
            }
            _ => true,
        }
    }

    /// Record a successful transfer: the breaker closes.
    pub fn on_success(&mut self) {
        self.state = HealthState::Healthy;
        self.consecutive_failures = 0;
    }

    /// Record a failure (transport or validation). Returns `true` when
    /// this report opened the breaker.
    pub fn on_failure(&mut self, now: u32, policy: &RetryPolicy) -> bool {
        self.consecutive_failures += 1;
        match self.state {
            HealthState::Probation => {
                self.state = HealthState::Dead {
                    until: now.saturating_add(policy.cooldown_s),
                };
                true
            }
            HealthState::Healthy if self.consecutive_failures >= policy.failure_threshold => {
                self.state = HealthState::Dead {
                    until: now.saturating_add(policy.cooldown_s),
                };
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_with_jitter() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0, 0, 0), 0);
        let b1 = p.backoff_ms(0, 0, 1);
        let b2 = p.backoff_ms(0, 0, 2);
        let b9 = p.backoff_ms(0, 0, 9);
        assert!((200..=250).contains(&b1), "b1 = {b1}");
        assert!((400..=500).contains(&b2), "b2 = {b2}");
        // Attempt 9 would be 200 * 2^8 = 51200 without the cap.
        assert!(b9 <= (p.max_backoff_ms as f64 * (1.0 + p.jitter_frac)) as u64);
    }

    #[test]
    fn backoff_jitter_is_deterministic_but_varies_by_context() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1, 2, 3), p.backoff_ms(1, 2, 3));
        // Different upstream or cycle draws different jitter (almost
        // surely, and deterministically for this seed).
        assert_ne!(p.backoff_ms(1, 2, 3), p.backoff_ms(2, 2, 3));
    }

    #[test]
    fn clock_keyed_backoff_is_a_pure_function_of_the_instant() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms_at(1, 1_234, 2), p.backoff_ms_at(1, 1_234, 2));
        // A different instant draws different jitter (deterministically,
        // for this seed) — the schedule belongs to the timeline.
        assert_ne!(p.backoff_ms_at(1, 1_234, 2), p.backoff_ms_at(1, 1_235, 2));
        let b = p.backoff_ms_at(0, 999, 1);
        assert!((200..=250).contains(&b), "b = {b}");
        assert_eq!(p.backoff_ms_at(0, 999, 0), 0);
    }

    #[test]
    fn breaker_walks_dead_probation_healthy() {
        let p = RetryPolicy {
            failure_threshold: 2,
            cooldown_s: 100,
            ..Default::default()
        };
        let mut h = UpstreamHealth::default();
        assert!(h.available(0));
        assert!(!h.on_failure(10, &p));
        assert!(h.on_failure(20, &p), "threshold reached: breaker opens");
        assert_eq!(h.state, HealthState::Dead { until: 120 });
        assert!(!h.available(60), "still cooling down");
        assert!(h.available(120), "cooldown over: probation probe allowed");
        assert_eq!(h.state, HealthState::Probation);
        // A probation failure re-opens immediately.
        assert!(h.on_failure(130, &p));
        assert!(h.available(230));
        h.on_success();
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.consecutive_failures, 0);
    }
}
