//! Root zone distribution channels (§7): besides AXFR from the root
//! servers, the paper validated zone copies from **ICANN CZDS** (daily
//! files) and the **IANA website** (downloaded every 15 minutes).
//!
//! The channels differ in cadence and in what the paper observed:
//!
//! * CZDS files carried a ZONEMD record from 2023-09-21 but *did not
//!   validate until 2023-12-07* (one day after the AXFR-visible switch —
//!   the daily file lags);
//! * IANA downloads showed the first ZONEMD at 2023-09-21T13:30 UTC and
//!   validated from 2023-12-06T20:30 UTC;
//! * neither channel ever delivered a corrupted file — the transport
//!   (HTTPS) protects integrity end-to-end, unlike AXFR from a stale or
//!   bit-flipped path.

use crate::rollout::{RolloutPhase, ZONEMD_VALIDATES_DATE};
use crate::rootzone::{build_root_zone, RootZoneConfig};
use crate::signer::ZoneKeys;
use crate::zone::Zone;
use dns_crypto::validity::timestamp_from_ymd;

/// A zone distribution channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// ICANN Centralized Zone Data Service: one file per day.
    Czds,
    /// IANA website: a fresh snapshot every 15 minutes.
    IanaWebsite,
    /// AXFR from a root server (the live path; modelled elsewhere).
    Axfr,
}

impl Channel {
    /// Snapshot cadence in seconds.
    pub fn cadence(self) -> u32 {
        match self {
            Channel::Czds => 86_400,
            Channel::IanaWebsite => 900,
            Channel::Axfr => 0, // on demand
        }
    }

    /// When the channel first exposed a ZONEMD record.
    ///
    /// Both file channels lagged the in-zone introduction (2023-09-13) by
    /// about a week — the paper observed 2023-09-21 on both.
    pub fn zonemd_first_visible(self) -> u32 {
        match self {
            Channel::Czds | Channel::IanaWebsite => timestamp_from_ymd("20230921000000").unwrap(),
            Channel::Axfr => crate::rollout::ZONEMD_PRIVATE_DATE,
        }
    }

    /// When copies from this channel start validating.
    pub fn validates_from(self) -> u32 {
        match self {
            // CZDS is a daily file: the first validating one is dated a day
            // after the in-zone switch.
            Channel::Czds => timestamp_from_ymd("20231207000000").unwrap(),
            Channel::IanaWebsite => timestamp_from_ymd("20231206203000").unwrap(),
            Channel::Axfr => ZONEMD_VALIDATES_DATE,
        }
    }

    /// The roll-out phase a snapshot taken at `time` exposes on this
    /// channel (file channels lag the zone itself).
    pub fn phase_at(self, time: u32) -> RolloutPhase {
        if time < self.zonemd_first_visible() {
            RolloutPhase::NoRecord
        } else if time < self.validates_from() {
            RolloutPhase::PrivateAlgorithm
        } else {
            RolloutPhase::Validating
        }
    }
}

/// A dated snapshot from a channel.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub channel: Channel,
    /// Snapshot timestamp (channel cadence grid).
    pub time: u32,
    pub zone: Zone,
}

/// Produce all snapshots of `channel` in `[from, until)`, built with the
/// channel-appropriate roll-out phase and daily serials.
pub fn snapshots(
    channel: Channel,
    from: u32,
    until: u32,
    keys: &ZoneKeys,
    tld_count: usize,
) -> Vec<Snapshot> {
    let cadence = channel.cadence().max(900);
    let mut out = Vec::new();
    let mut t = from - from % cadence;
    if t < from {
        t += cadence;
    }
    while t < until {
        let day = t - t % 86400;
        let ymd: String = dns_crypto::validity::timestamp_to_ymd(day)
            .chars()
            .take(8)
            .collect();
        let serial: u32 = ymd.parse::<u32>().expect("8 digits") * 100;
        let zone = build_root_zone(
            &RootZoneConfig {
                serial,
                tld_count,
                inception: day,
                expiration: day + 14 * 86400,
                rollout: channel.phase_at(t),
            },
            keys,
        );
        out.push(Snapshot {
            channel,
            time: t,
            zone,
        });
        t += cadence;
    }
    out
}

/// Validation summary over a snapshot series — the §7 CZDS/IANA result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelReport {
    pub total: u32,
    /// Snapshots with no ZONEMD record.
    pub no_record: u32,
    /// Snapshots with an unverifiable (private-algorithm) record.
    pub unverifiable: u32,
    /// Snapshots that validate.
    pub validating: u32,
    /// Snapshots with an *invalid* digest (the paper saw zero on both file
    /// channels; anything non-zero here is a transport-integrity incident).
    pub invalid: u32,
}

/// Validate every snapshot.
pub fn validate_channel(snaps: &[Snapshot]) -> ChannelReport {
    use crate::zonemd::{verify_zonemd, ZonemdError};
    let mut report = ChannelReport::default();
    for s in snaps {
        report.total += 1;
        match verify_zonemd(&s.zone) {
            Ok(()) => report.validating += 1,
            Err(ZonemdError::NoZonemd) => report.no_record += 1,
            Err(ZonemdError::UnsupportedAlgorithm) => report.unverifiable += 1,
            Err(_) => report.invalid += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::validity::timestamp_from_ymd as ts;

    fn keys() -> ZoneKeys {
        ZoneKeys::from_seed(7)
    }

    #[test]
    fn cadences_match_paper() {
        assert_eq!(Channel::Czds.cadence(), 86_400);
        assert_eq!(Channel::IanaWebsite.cadence(), 900);
    }

    #[test]
    fn phase_transitions_lag_axfr() {
        // On 2023-10-01, AXFR already shows the (private) record; so do the
        // file channels — but on 2023-09-15 only AXFR does.
        let t_sep15 = ts("20230915000000").unwrap();
        assert_eq!(
            Channel::Axfr.phase_at(t_sep15),
            RolloutPhase::PrivateAlgorithm
        );
        assert_eq!(Channel::Czds.phase_at(t_sep15), RolloutPhase::NoRecord);
        assert_eq!(
            Channel::IanaWebsite.phase_at(t_sep15),
            RolloutPhase::NoRecord
        );
        // 2023-12-06 21:00: IANA validates, CZDS not yet (daily lag).
        let t_dec6 = ts("20231206210000").unwrap();
        assert_eq!(
            Channel::IanaWebsite.phase_at(t_dec6),
            RolloutPhase::Validating
        );
        assert_eq!(
            Channel::Czds.phase_at(t_dec6),
            RolloutPhase::PrivateAlgorithm
        );
    }

    #[test]
    fn iana_snapshot_count_matches_cadence() {
        // One day of IANA downloads = 96 snapshots (every 15 minutes).
        let from = ts("20231001000000").unwrap();
        let snaps = snapshots(Channel::IanaWebsite, from, from + 86_400, &keys(), 4);
        assert_eq!(snaps.len(), 96);
    }

    #[test]
    fn czds_daily_files() {
        let from = ts("20231001000000").unwrap();
        let snaps = snapshots(Channel::Czds, from, from + 7 * 86_400, &keys(), 4);
        assert_eq!(snaps.len(), 7);
    }

    #[test]
    fn channel_validation_timeline() {
        // A window straddling the validation switch: before it everything
        // is unverifiable, after it everything validates, nothing invalid.
        let from = ts("20231205000000").unwrap();
        let until = ts("20231208000000").unwrap();
        let snaps = snapshots(Channel::IanaWebsite, from, until, &keys(), 4);
        let report = validate_channel(&snaps);
        assert_eq!(report.invalid, 0);
        assert!(report.unverifiable > 0);
        assert!(report.validating > 0);
        assert_eq!(
            report.total,
            report.no_record + report.unverifiable + report.validating
        );
    }

    #[test]
    fn pre_rollout_snapshots_have_no_record() {
        let from = ts("20230801000000").unwrap();
        let snaps = snapshots(Channel::Czds, from, from + 3 * 86_400, &keys(), 4);
        let report = validate_channel(&snaps);
        assert_eq!(report.no_record, report.total);
    }

    #[test]
    fn file_channels_never_invalid() {
        // The §7 finding: HTTPS-delivered files showed no integrity issues.
        let from = ts("20231120000000").unwrap();
        let until = ts("20231215000000").unwrap();
        for channel in [Channel::Czds, Channel::IanaWebsite] {
            let snaps = snapshots(channel, from, until, &keys(), 3);
            assert_eq!(validate_channel(&snaps).invalid, 0, "{channel:?}");
        }
    }
}
