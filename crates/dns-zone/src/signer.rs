//! DNSSEC signing: key management, NSEC chain construction, and per-RRset
//! `RRSIG` generation using the `SIMSIG` stand-in scheme (see `dns-crypto`).

use crate::zone::Zone;
use dns_crypto::simsig::{SimKeyPair, SIMSIG_ALGORITHM};
use dns_wire::rdata::{Dnskey, Nsec, Rdata, Rrsig};
use dns_wire::{Name, Record, RrType};
use std::collections::BTreeMap;

/// Key material for a zone: one KSK (signs the DNSKEY RRset) and one ZSK
/// (signs everything else), mirroring the root zone's split.
#[derive(Debug, Clone)]
pub struct ZoneKeys {
    /// Key-signing key (flags 257: ZONE|SEP).
    pub ksk: SimKeyPair,
    /// Zone-signing key (flags 256: ZONE).
    pub zsk: SimKeyPair,
}

impl ZoneKeys {
    /// Deterministic keys from a seed.
    pub fn from_seed(seed: u64) -> Self {
        ZoneKeys {
            ksk: SimKeyPair::from_seed(seed.wrapping_mul(2).wrapping_add(1)),
            zsk: SimKeyPair::from_seed(seed.wrapping_mul(2).wrapping_add(2)),
        }
    }

    /// DNSKEY record for the KSK.
    pub fn ksk_record(&self, origin: &Name, ttl: u32) -> Record {
        Record::new(
            origin.clone(),
            ttl,
            Rdata::Dnskey(Dnskey {
                flags: 257,
                protocol: 3,
                algorithm: SIMSIG_ALGORITHM,
                public_key: self.ksk.public.to_vec(),
            }),
        )
    }

    /// DNSKEY record for the ZSK.
    pub fn zsk_record(&self, origin: &Name, ttl: u32) -> Record {
        Record::new(
            origin.clone(),
            ttl,
            Rdata::Dnskey(Dnskey {
                flags: 256,
                protocol: 3,
                algorithm: SIMSIG_ALGORITHM,
                public_key: self.zsk.public.to_vec(),
            }),
        )
    }
}

/// Signing parameters.
#[derive(Debug, Clone)]
pub struct SigningConfig {
    /// Signature inception (seconds since epoch, 32-bit wire semantics).
    pub inception: u32,
    /// Signature expiration.
    pub expiration: u32,
    /// TTL for DNSKEY records.
    pub dnskey_ttl: u32,
    /// TTL for NSEC records (the SOA minimum by convention).
    pub nsec_ttl: u32,
}

/// Sign `zone` in place:
///
/// 1. remove any previous DNSKEY/NSEC/RRSIG records,
/// 2. add the DNSKEY RRset,
/// 3. build the NSEC chain over all owner names,
/// 4. emit one RRSIG per RRset — DNSKEY signed by the KSK, everything else
///    by the ZSK (RFC 4034 §3.1.8.1 signed-data construction).
pub fn sign_zone(zone: &mut Zone, keys: &ZoneKeys, cfg: &SigningConfig) {
    let origin = zone.origin().clone();
    zone.records_mut()
        .retain(|r| !matches!(r.rr_type, RrType::Dnskey | RrType::Nsec | RrType::Rrsig));

    let ksk_rec = keys.ksk_record(&origin, cfg.dnskey_ttl);
    let zsk_rec = keys.zsk_record(&origin, cfg.dnskey_ttl);
    zone.push(ksk_rec).expect("apex is in-zone");
    zone.push(zsk_rec).expect("apex is in-zone");

    add_nsec_chain(zone, cfg.nsec_ttl);

    // Group into RRsets and sign each.
    let mut rrsets: BTreeMap<(Name, u16), Vec<Record>> = BTreeMap::new();
    for rec in zone.records() {
        rrsets
            .entry((rec.name.clone(), rec.rr_type.to_u16()))
            .or_default()
            .push(rec.clone());
    }
    let ksk_tag = dnskey_tag(keys, true);
    let zsk_tag = dnskey_tag(keys, false);
    let mut signatures = Vec::new();
    for ((owner, type_num), records) in &rrsets {
        let rr_type = RrType::from_u16(*type_num);
        // Glue (non-apex A/AAAA below delegations) is not signed in the real
        // root zone; we approximate by signing only apex RRsets and
        // delegation-point NSEC/DS sets, which matches what validators check.
        let signable = owner == &origin || matches!(rr_type, RrType::Nsec | RrType::Ds);
        if !signable {
            continue;
        }
        let (key, tag) = if rr_type == RrType::Dnskey {
            (&keys.ksk, ksk_tag)
        } else {
            (&keys.zsk, zsk_tag)
        };
        let sig = sign_rrset(owner, rr_type, records, key, tag, &origin, cfg);
        signatures.push(sig);
    }
    for sig in signatures {
        zone.push(sig).expect("signature owner is in-zone");
    }
}

/// Sign one RRset that was added after the main signing pass (used for the
/// apex ZONEMD record, which is computed over the already-signed zone).
pub fn sign_single_rrset(
    zone: &Zone,
    records: &[Record],
    keys: &ZoneKeys,
    inception: u32,
    expiration: u32,
) -> Record {
    let owner = records[0].name.clone();
    let rr_type = records[0].rr_type;
    let cfg = SigningConfig {
        inception,
        expiration,
        dnskey_ttl: 0,
        nsec_ttl: 0,
    };
    sign_rrset(
        &owner,
        rr_type,
        records,
        &keys.zsk,
        dnskey_tag(keys, false),
        zone.origin(),
        &cfg,
    )
}

/// Key tag of the KSK or ZSK DNSKEY RDATA.
pub fn dnskey_tag(keys: &ZoneKeys, ksk: bool) -> u16 {
    let key = Dnskey {
        flags: if ksk { 257 } else { 256 },
        protocol: 3,
        algorithm: SIMSIG_ALGORITHM,
        public_key: if ksk {
            keys.ksk.public.to_vec()
        } else {
            keys.zsk.public.to_vec()
        },
    };
    key.key_tag()
}

/// Construct the RFC 4034 §3.1.8.1 signed data and produce the RRSIG record.
fn sign_rrset(
    owner: &Name,
    rr_type: RrType,
    records: &[Record],
    key: &SimKeyPair,
    key_tag: u16,
    signer: &Name,
    cfg: &SigningConfig,
) -> Record {
    let original_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
    let mut rrsig = Rrsig {
        type_covered: rr_type,
        algorithm: SIMSIG_ALGORITHM,
        labels: owner.label_count() as u8,
        original_ttl,
        expiration: cfg.expiration,
        inception: cfg.inception,
        key_tag,
        signer_name: signer.clone(),
        signature: Vec::new(),
    };
    rrsig.signature = compute_signature(&rrsig, records, key);
    Record::new(owner.clone(), original_ttl, Rdata::Rrsig(rrsig))
}

/// signed_data = RRSIG_RDATA (minus signature) | canonical RRset.
pub fn compute_signature(rrsig: &Rrsig, records: &[Record], key: &SimKeyPair) -> Vec<u8> {
    key.sign(&signed_data(rrsig, records)).to_vec()
}

/// Verify an RRSIG over its RRset with `key` (validity window NOT checked
/// here — that is the validator's job, since it depends on the clock).
pub fn verify_signature(rrsig: &Rrsig, records: &[Record], key: &SimKeyPair) -> bool {
    key.verify(&signed_data(rrsig, records), &rrsig.signature)
}

fn signed_data(rrsig: &Rrsig, records: &[Record]) -> Vec<u8> {
    let mut data = rrsig.signed_prefix_wire();
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by(|a, b| a.canonical_cmp(b));
    sorted.dedup_by(|a, b| a.canonical_cmp(b) == std::cmp::Ordering::Equal);
    for rec in sorted {
        data.extend_from_slice(&rec.canonical_wire(Some(rrsig.original_ttl)));
    }
    data
}

/// Build the NSEC chain: for each owner (canonical order), an NSEC pointing
/// at the next owner (wrapping to the apex), listing the types present plus
/// `RRSIG` and `NSEC` themselves.
fn add_nsec_chain(zone: &mut Zone, ttl: u32) {
    let owners = zone.owner_names();
    if owners.is_empty() {
        return;
    }
    let mut nsecs = Vec::new();
    for (i, owner) in owners.iter().enumerate() {
        let next = owners[(i + 1) % owners.len()].clone();
        let mut types: Vec<RrType> = zone
            .records()
            .iter()
            .filter(|r| &r.name == owner)
            .map(|r| r.rr_type)
            .collect();
        types.push(RrType::Nsec);
        types.push(RrType::Rrsig);
        types.sort_by_key(|t| t.to_u16());
        types.dedup();
        nsecs.push(Record::new(
            owner.clone(),
            ttl,
            Rdata::Nsec(Nsec {
                next_domain: next,
                types,
            }),
        ));
    }
    for rec in nsecs {
        zone.push(rec).expect("NSEC owner is in-zone");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::rdata::Soa;

    fn fixture() -> Zone {
        let mut z = Zone::new(Name::root());
        z.push(Record::new(
            Name::root(),
            86400,
            Rdata::Soa(Soa {
                mname: Name::parse("a.root-servers.net.").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com.").unwrap(),
                serial: 2023120600,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            }),
        ))
        .unwrap();
        z.push(Record::new(
            Name::root(),
            518400,
            Rdata::Ns(Name::parse("a.root-servers.net.").unwrap()),
        ))
        .unwrap();
        for tld in ["com", "net", "org"] {
            z.push(Record::new(
                Name::parse(&format!("{tld}.")).unwrap(),
                172800,
                Rdata::Ns(Name::parse(&format!("a.{tld}-servers.example.")).unwrap()),
            ))
            .unwrap();
        }
        z
    }

    fn cfg() -> SigningConfig {
        SigningConfig {
            inception: 1_700_000_000,
            expiration: 1_701_000_000,
            dnskey_ttl: 172800,
            nsec_ttl: 86400,
        }
    }

    #[test]
    fn signing_adds_dnskey_nsec_rrsig() {
        let mut z = fixture();
        sign_zone(&mut z, &ZoneKeys::from_seed(1), &cfg());
        assert_eq!(z.rrset(&Name::root(), RrType::Dnskey).len(), 2);
        // One NSEC per owner (apex + 3 TLDs).
        let nsec_count = z
            .records()
            .iter()
            .filter(|r| r.rr_type == RrType::Nsec)
            .count();
        assert_eq!(nsec_count, 4);
        assert!(z.records().iter().any(|r| r.rr_type == RrType::Rrsig));
    }

    #[test]
    fn nsec_chain_wraps_to_apex() {
        let mut z = fixture();
        sign_zone(&mut z, &ZoneKeys::from_seed(1), &cfg());
        let owners = z.owner_names();
        let last = owners.last().unwrap().clone();
        let nsec = z.rrset(&last, RrType::Nsec);
        match &nsec[0].rdata {
            Rdata::Nsec(n) => assert_eq!(n.next_domain, Name::root()),
            _ => panic!("not NSEC"),
        }
    }

    #[test]
    fn signatures_verify_with_right_key() {
        let keys = ZoneKeys::from_seed(7);
        let mut z = fixture();
        sign_zone(&mut z, &keys, &cfg());
        // Check the apex NS RRSIG.
        let ns_records: Vec<Record> = z
            .rrset(&Name::root(), RrType::Ns)
            .into_iter()
            .cloned()
            .collect();
        let sig = z
            .records()
            .iter()
            .find_map(|r| match &r.rdata {
                Rdata::Rrsig(s) if s.type_covered == RrType::Ns && r.name.is_root() => {
                    Some(s.clone())
                }
                _ => None,
            })
            .expect("NS RRSIG present");
        assert!(verify_signature(&sig, &ns_records, &keys.zsk));
        assert!(!verify_signature(&sig, &ns_records, &keys.ksk));
    }

    #[test]
    fn dnskey_rrset_signed_by_ksk() {
        let keys = ZoneKeys::from_seed(7);
        let mut z = fixture();
        sign_zone(&mut z, &keys, &cfg());
        let dnskeys: Vec<Record> = z
            .rrset(&Name::root(), RrType::Dnskey)
            .into_iter()
            .cloned()
            .collect();
        let sig = z
            .records()
            .iter()
            .find_map(|r| match &r.rdata {
                Rdata::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
                _ => None,
            })
            .expect("DNSKEY RRSIG present");
        assert_eq!(sig.key_tag, dnskey_tag(&keys, true));
        assert!(verify_signature(&sig, &dnskeys, &keys.ksk));
    }

    #[test]
    fn tampering_breaks_signature() {
        let keys = ZoneKeys::from_seed(7);
        let mut z = fixture();
        sign_zone(&mut z, &keys, &cfg());
        let mut ns_records: Vec<Record> = z
            .rrset(&Name::root(), RrType::Ns)
            .into_iter()
            .cloned()
            .collect();
        let sig = z
            .records()
            .iter()
            .find_map(|r| match &r.rdata {
                Rdata::Rrsig(s) if s.type_covered == RrType::Ns && r.name.is_root() => {
                    Some(s.clone())
                }
                _ => None,
            })
            .unwrap();
        ns_records[0].rdata = Rdata::Ns(Name::parse("evil.example.").unwrap());
        assert!(!verify_signature(&sig, &ns_records, &keys.zsk));
    }

    #[test]
    fn resigning_is_idempotent_in_count() {
        let keys = ZoneKeys::from_seed(7);
        let mut z = fixture();
        sign_zone(&mut z, &keys, &cfg());
        let count = z.len();
        sign_zone(&mut z, &keys, &cfg());
        assert_eq!(z.len(), count);
    }

    #[test]
    fn signature_order_independent_of_insertion() {
        // RRset canonical ordering means insertion order must not matter.
        let keys = ZoneKeys::from_seed(3);
        let recs: Vec<Record> = ["2.2.2.2", "1.1.1.1"]
            .iter()
            .map(|a| Record::new(Name::root(), 60, Rdata::A(a.parse().unwrap())))
            .collect();
        let rrsig = Rrsig {
            type_covered: RrType::A,
            algorithm: SIMSIG_ALGORITHM,
            labels: 0,
            original_ttl: 60,
            expiration: 2,
            inception: 1,
            key_tag: 0,
            signer_name: Name::root(),
            signature: Vec::new(),
        };
        let fwd = compute_signature(&rrsig, &recs, &keys.zsk);
        let rev: Vec<Record> = recs.iter().rev().cloned().collect();
        let bwd = compute_signature(&rrsig, &rev, &keys.zsk);
        assert_eq!(fwd, bwd);
    }
}
