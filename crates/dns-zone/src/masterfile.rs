//! RFC 1035 master-file parsing and serialization.
//!
//! Supports the constructs the IANA root zone file and AXFR dumps use:
//! `$ORIGIN`, `$TTL`, comments, relative owners, blank-owner continuation
//! (repeat previous owner), and parenthesized multi-line records.

use crate::zone::{Zone, ZoneError};
use dns_wire::presentation::{record_from_line, record_to_line, ParseError};
use dns_wire::Name;

/// Errors while reading a master file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterFileError {
    /// A record line failed to parse.
    Record { line_no: usize, err: ParseError },
    /// A directive was malformed.
    BadDirective { line_no: usize, directive: String },
    /// A relative owner appeared before any `$ORIGIN`.
    NoOrigin { line_no: usize },
    /// The assembled zone was inconsistent.
    Zone(ZoneError),
    /// Unbalanced parentheses at end of input.
    UnbalancedParens,
}

impl std::fmt::Display for MasterFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterFileError::Record { line_no, err } => {
                write!(f, "line {line_no}: {err}")
            }
            MasterFileError::BadDirective { line_no, directive } => {
                write!(f, "line {line_no}: bad directive {directive}")
            }
            MasterFileError::NoOrigin { line_no } => {
                write!(f, "line {line_no}: relative owner without $ORIGIN")
            }
            MasterFileError::Zone(e) => write!(f, "zone error: {e}"),
            MasterFileError::UnbalancedParens => write!(f, "unbalanced parentheses"),
        }
    }
}

impl std::error::Error for MasterFileError {}

/// Parse a master file into a zone rooted at `default_origin` (overridable
/// by a leading `$ORIGIN`).
pub fn parse_master_file(text: &str, default_origin: &Name) -> Result<Zone, MasterFileError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: Option<u32> = None;
    let mut last_owner: Option<String> = None;
    let mut zone = Zone::new(default_origin.clone());
    let mut pending = String::new();
    let mut pending_leading_ws = false;
    let mut paren_depth = 0usize;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if pending.is_empty() {
            // Leading whitespace on the *first* physical line of a logical
            // record means "repeat previous owner".
            pending_leading_ws = raw_line.starts_with(char::is_whitespace);
        }
        // Strip comments (outside quotes).
        let stripped = strip_comment(raw_line);
        // Handle parentheses for continuations.
        for c in stripped.chars() {
            match c {
                '(' => paren_depth += 1,
                ')' => paren_depth = paren_depth.saturating_sub(1),
                _ => {}
            }
        }
        let cleaned: String = stripped.chars().filter(|&c| c != '(' && c != ')').collect();
        if !pending.is_empty() {
            pending.push(' ');
        }
        pending.push_str(cleaned.trim_end());
        if paren_depth > 0 {
            continue;
        }
        let line = std::mem::take(&mut pending);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            origin = Name::parse(rest.trim()).map_err(|_| MasterFileError::BadDirective {
                line_no,
                directive: line.to_string(),
            })?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("$TTL") {
            default_ttl = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| MasterFileError::BadDirective {
                        line_no,
                        directive: line.to_string(),
                    })?,
            );
            continue;
        }
        if line.starts_with('$') {
            return Err(MasterFileError::BadDirective {
                line_no,
                directive: line.to_string(),
            });
        }
        // Normalize the line into "owner ttl [class] type rdata" so the
        // single-line parser can handle it.
        let normalized = normalize_line(
            line,
            pending_leading_ws,
            &origin,
            default_ttl,
            &mut last_owner,
        )
        .ok_or(MasterFileError::NoOrigin { line_no })?;
        let rec = record_from_line(&normalized)
            .map_err(|err| MasterFileError::Record { line_no, err })?;
        zone.push(rec).map_err(MasterFileError::Zone)?;
    }
    if paren_depth > 0 {
        return Err(MasterFileError::UnbalancedParens);
    }
    Ok(zone)
}

/// Serialize a zone to master-file text (canonical record order, absolute
/// names, explicit TTLs — the style IANA's root zone file uses).
pub fn to_master_file(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}\n", zone.origin()));
    for rec in zone.canonical_records() {
        out.push_str(&record_to_line(rec));
        out.push('\n');
    }
    out
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                out.push(c);
            }
            '\\' if in_quotes => {
                out.push(c);
                if let Some(n) = chars.next() {
                    out.push(n);
                }
            }
            ';' if !in_quotes => break,
            c => out.push(c),
        }
    }
    out
}

/// Resolve owner (relative, `@`, or blank-continuation) and default TTL.
fn normalize_line(
    line: &str,
    leading_ws: bool,
    origin: &Name,
    default_ttl: Option<u32>,
    last_owner: &mut Option<String>,
) -> Option<String> {
    let mut tokens: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
    // Owner resolution.
    let owner = if leading_ws {
        last_owner.clone()?
    } else {
        let raw = tokens.remove(0);
        let abs = if raw == "@" {
            origin.to_string()
        } else if raw.ends_with('.') {
            raw
        } else {
            // Relative to origin.
            if origin.is_root() {
                format!("{raw}.")
            } else {
                format!("{raw}.{origin}")
            }
        };
        *last_owner = Some(abs.clone());
        abs
    };
    // TTL may be omitted when $TTL is set.
    let has_ttl = tokens
        .first()
        .map(|t| t.chars().all(|c| c.is_ascii_digit()))
        .unwrap_or(false);
    let ttl = if has_ttl {
        tokens.remove(0)
    } else {
        default_ttl?.to_string()
    };
    Some(format!("{owner} {ttl} {}", tokens.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::rdata::Rdata;
    use dns_wire::RrType;

    #[test]
    fn minimal_zone_parses() {
        let text = "\
$ORIGIN .
$TTL 86400
@ IN SOA a.root-servers.net. nstld.verisign-grs.com. 2023122400 1800 900 604800 86400
. 518400 IN NS a.root-servers.net.
com. 172800 IN NS a.gtld-servers.net.
";
        let z = parse_master_file(text, &Name::root()).unwrap();
        assert_eq!(z.len(), 3);
        assert_eq!(z.serial().unwrap(), 2023122400);
    }

    #[test]
    fn relative_owners_resolve() {
        let text = "\
$ORIGIN example.com.
$TTL 300
www IN A 1.2.3.4
";
        let z = parse_master_file(text, &Name::parse("example.com.").unwrap()).unwrap();
        assert_eq!(
            z.records()[0].name,
            Name::parse("www.example.com.").unwrap()
        );
        assert_eq!(z.records()[0].ttl, 300);
    }

    #[test]
    fn blank_owner_continues_previous() {
        let text = "\
$ORIGIN example.com.
$TTL 300
www IN A 1.2.3.4
    IN A 5.6.7.8
";
        let z = parse_master_file(text, &Name::parse("example.com.").unwrap()).unwrap();
        assert_eq!(z.len(), 2);
        assert_eq!(
            z.records()[1].name,
            Name::parse("www.example.com.").unwrap()
        );
    }

    #[test]
    fn parenthesized_soa_parses() {
        let text = "\
$ORIGIN .
@ 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. (
    2023122400 ; serial
    1800       ; refresh
    900        ; retry
    604800     ; expire
    86400 )    ; minimum
";
        let z = parse_master_file(text, &Name::root()).unwrap();
        assert_eq!(z.serial().unwrap(), 2023122400);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
; leading comment
$ORIGIN .

. 86400 IN SOA a. b. 1 2 3 4 5 ; trailing comment
";
        let z = parse_master_file(text, &Name::root()).unwrap();
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn round_trip_through_serialization() {
        let cfg = crate::rootzone::RootZoneConfig {
            tld_count: 6,
            rollout: crate::rollout::RolloutPhase::Validating,
            ..Default::default()
        };
        let zone = crate::rootzone::build_root_zone(&cfg, &crate::signer::ZoneKeys::from_seed(1));
        let text = to_master_file(&zone);
        let parsed = parse_master_file(&text, &Name::root()).unwrap();
        // Same canonical record multiset.
        let a: Vec<String> = zone
            .canonical_records()
            .iter()
            .map(|r| dns_wire::presentation::record_to_line(r))
            .collect();
        let b: Vec<String> = parsed
            .canonical_records()
            .iter()
            .map(|r| dns_wire::presentation::record_to_line(r))
            .collect();
        assert_eq!(a, b);
        // And the round-tripped zone still validates.
        assert_eq!(crate::zonemd::verify_zonemd(&parsed), Ok(()));
    }

    #[test]
    fn bad_directive_rejected() {
        assert!(matches!(
            parse_master_file("$BOGUS x\n", &Name::root()),
            Err(MasterFileError::BadDirective { .. })
        ));
        assert!(matches!(
            parse_master_file("$TTL abc\n", &Name::root()),
            Err(MasterFileError::BadDirective { .. })
        ));
    }

    #[test]
    fn missing_ttl_without_default_rejected() {
        let text = "www.example.com. IN A 1.2.3.4\n";
        assert!(matches!(
            parse_master_file(text, &Name::parse("example.com.").unwrap()),
            Err(MasterFileError::NoOrigin { .. })
        ));
    }

    #[test]
    fn unbalanced_parens_rejected() {
        let text = ". 86400 IN SOA a. b. ( 1 2 3 4 5\n";
        assert_eq!(
            parse_master_file(text, &Name::root()),
            Err(MasterFileError::UnbalancedParens)
        );
    }

    #[test]
    fn bad_record_line_reports_line_number() {
        let text = "$ORIGIN .\n. 60 IN A not-an-ip\n";
        match parse_master_file(text, &Name::root()) {
            Err(MasterFileError::Record { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn txt_with_semicolon_in_quotes_survives() {
        let text = "$ORIGIN .\nx. 60 IN TXT \"semi;colon\"\n";
        let z = parse_master_file(text, &Name::root()).unwrap();
        match &z.records()[0].rdata {
            Rdata::Txt(s) => assert_eq!(s[0], b"semi;colon"),
            _ => panic!("not TXT"),
        }
        assert_eq!(z.records()[0].rr_type, RrType::Txt);
    }
}
