//! Synthetic root zone generation.
//!
//! Builds a realistic (shape-wise) root zone: apex SOA/NS, the 13
//! `X.root-servers.net` glue addresses, a set of TLD delegations with NS
//! records, glue, and DS records, then the DNSSEC chain (DNSKEY, NSEC,
//! RRSIG) and — depending on the roll-out phase — a ZONEMD record.
//!
//! The real root zone has ~1,500 TLDs; the generator defaults to a smaller
//! but structurally identical zone so full-measurement simulations (which
//! transfer the zone tens of millions of times) stay fast. The `tld_count`
//! knob scales it up for benches.

use crate::rollout::RolloutPhase;
use crate::signer::{sign_zone, SigningConfig, ZoneKeys};
use crate::zone::Zone;
use crate::zonemd::make_zonemd_record;
use dns_wire::rdata::{Rdata, Soa};
use dns_wire::{Name, Record};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The 13 root server letters.
pub const ROOT_LETTERS: [char; 13] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm',
];

/// Published root server addresses (post-renumbering B, the paper's
/// subject). These become the glue A/AAAA records under
/// `X.root-servers.net` exactly as the real zone file carries them.
pub const ROOT_SERVER_ADDRS: [(char, &str, &str); 13] = [
    ('a', "198.41.0.4", "2001:503:ba3e::2:30"),
    ('b', "170.247.170.2", "2801:1b8:10::b"),
    ('c', "192.33.4.12", "2001:500:2::c"),
    ('d', "199.7.91.13", "2001:500:2d::d"),
    ('e', "192.203.230.10", "2001:500:a8::e"),
    ('f', "192.5.5.241", "2001:500:2f::f"),
    ('g', "192.112.36.4", "2001:500:12::d0d"),
    ('h', "198.97.190.53", "2001:500:1::53"),
    ('i', "192.36.148.17", "2001:7fe::53"),
    ('j', "192.58.128.30", "2001:503:c27::2:30"),
    ('k', "193.0.14.129", "2001:7fd::1"),
    ('l', "199.7.83.42", "2001:500:9f::42"),
    ('m', "202.12.27.33", "2001:dc3::35"),
];

/// Well-known real TLD labels used for the first delegations, so the zone
/// looks right in examples; beyond these the generator synthesizes labels.
const COMMON_TLDS: &[&str] = &[
    "com", "net", "org", "de", "uk", "nl", "jp", "br", "au", "za", "io", "info", "edu", "gov",
    "fr", "it", "es", "se", "ch", "at", "pl", "cz", "ru", "cn", "in", "kr", "mx", "ar", "cl", "nz",
    "sg", "hk", "id", "th", "世界", "ruhr", "world", "arpa", "biz", "name",
];

/// Parameters for zone generation.
#[derive(Debug, Clone)]
pub struct RootZoneConfig {
    /// Zone serial (root convention: YYYYMMDDNN).
    pub serial: u32,
    /// Number of TLD delegations to include.
    pub tld_count: usize,
    /// Signature inception.
    pub inception: u32,
    /// Signature expiration.
    pub expiration: u32,
    /// ZONEMD roll-out phase to emit.
    pub rollout: RolloutPhase,
}

impl Default for RootZoneConfig {
    fn default() -> Self {
        RootZoneConfig {
            serial: 2023070300,
            tld_count: 40,
            inception: 1_688_342_400,               // 2023-07-03
            expiration: 1_688_342_400 + 14 * 86400, // two weeks, like real RRSIGs
            rollout: RolloutPhase::NoRecord,
        }
    }
}

/// Build and sign a root zone.
pub fn build_root_zone(cfg: &RootZoneConfig, keys: &ZoneKeys) -> Zone {
    let mut zone = Zone::new(Name::root());
    // Apex SOA.
    zone.push(Record::new(
        Name::root(),
        86400,
        Rdata::Soa(Soa {
            mname: Name::parse("a.root-servers.net.").unwrap(),
            rname: Name::parse("nstld.verisign-grs.com.").unwrap(),
            serial: cfg.serial,
            refresh: 1800,
            retry: 900,
            expire: 604800,
            minimum: 86400,
        }),
    ))
    .unwrap();
    // Apex NS set: the 13 letters, with their published glue addresses —
    // the real root zone ships these so priming responses (RFC 8109) can
    // carry the full server set with addresses.
    for (letter, v4, v6) in ROOT_SERVER_ADDRS {
        let ns_name = Name::parse(&format!("{letter}.root-servers.net.")).unwrap();
        zone.push(Record::new(
            Name::root(),
            518400,
            Rdata::Ns(ns_name.clone()),
        ))
        .unwrap();
        zone.push(Record::new(
            ns_name.clone(),
            518400,
            Rdata::A(v4.parse().expect("valid literal")),
        ))
        .unwrap();
        zone.push(Record::new(
            ns_name,
            518400,
            Rdata::Aaaa(v6.parse().expect("valid literal")),
        ))
        .unwrap();
    }
    // TLD delegations: NS + glue + DS.
    for i in 0..cfg.tld_count {
        let label = tld_label(i);
        let tld = Name::parse(&format!("{label}.")).expect("valid TLD label");
        for ns_idx in 0..2 {
            let ns_name = Name::parse(&format!("ns{ns_idx}.{label}.")).unwrap();
            zone.push(Record::new(tld.clone(), 172800, Rdata::Ns(ns_name.clone())))
                .unwrap();
            // In-bailiwick glue.
            zone.push(Record::new(
                ns_name.clone(),
                172800,
                Rdata::A(synth_v4(i as u32, ns_idx as u32)),
            ))
            .unwrap();
            zone.push(Record::new(
                ns_name,
                172800,
                Rdata::Aaaa(synth_v6(i as u32, ns_idx as u32)),
            ))
            .unwrap();
        }
        // DS record (digest synthesized deterministically from the label).
        let digest = dns_crypto::Sha256::digest(label.as_bytes()).to_vec();
        zone.push(Record::new(
            tld,
            86400,
            Rdata::Ds(dns_wire::rdata::Ds {
                key_tag: (i as u16).wrapping_mul(257).wrapping_add(1),
                algorithm: dns_crypto::SIMSIG_ALGORITHM,
                digest_type: 2,
                digest,
            }),
        ))
        .unwrap();
    }
    // Sign (adds DNSKEY, NSEC chain, RRSIGs).
    sign_zone(
        &mut zone,
        keys,
        &SigningConfig {
            inception: cfg.inception,
            expiration: cfg.expiration,
            dnskey_ttl: 172800,
            nsec_ttl: 86400,
        },
    );
    // ZONEMD per roll-out phase, then re-sign the apex ZONEMD RRset only —
    // the real pipeline computes the digest over the signed zone (with
    // ZONEMD and its RRSIG excluded) and then signs the ZONEMD record.
    if let Some(alg) = cfg.rollout.digest_alg() {
        let zmd = make_zonemd_record(&zone, alg, 86400).expect("zone is well formed");
        zone.push(zmd.clone()).unwrap();
        let rrsig =
            crate::signer::sign_single_rrset(&zone, &[zmd], keys, cfg.inception, cfg.expiration);
        zone.push(rrsig).unwrap();
    }
    zone
}

/// The i-th TLD label: a real label for small `i`, synthetic beyond.
pub fn tld_label(i: usize) -> String {
    if i < COMMON_TLDS.len() {
        // Skip the IDN entry for machine-generated zones, keeping labels
        // ASCII; use its punycode form instead.
        let l = COMMON_TLDS[i];
        if l.is_ascii() {
            l.to_string()
        } else {
            "xn--rhqv96g".to_string() // punycode of the IDN sample
        }
    } else {
        format!("tld{i:04}")
    }
}

fn synth_v4(tld: u32, ns: u32) -> Ipv4Addr {
    // 192.0.x.y documentation-adjacent space, deterministic.
    Ipv4Addr::new(
        203,
        ((tld / 250) % 250) as u8,
        (tld % 250) as u8,
        (10 + ns) as u8,
    )
}

fn synth_v6(tld: u32, ns: u32) -> Ipv6Addr {
    Ipv6Addr::new(0x2001, 0xdb8, tld as u16, ns as u16, 0, 0, 0, 0x53)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_zone, ValidationIssue};
    use crate::zonemd::verify_zonemd;
    use dns_wire::RrType;

    fn keys() -> ZoneKeys {
        ZoneKeys::from_seed(2023)
    }

    #[test]
    fn zone_has_13_root_ns() {
        let z = build_root_zone(&RootZoneConfig::default(), &keys());
        assert_eq!(z.rrset(&Name::root(), RrType::Ns).len(), 13);
    }

    #[test]
    fn tld_delegations_present_with_glue_and_ds() {
        let cfg = RootZoneConfig {
            tld_count: 5,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        let com = Name::parse("com.").unwrap();
        assert_eq!(z.rrset(&com, RrType::Ns).len(), 2);
        assert_eq!(z.rrset(&com, RrType::Ds).len(), 1);
        let glue = Name::parse("ns0.com.").unwrap();
        assert_eq!(z.rrset(&glue, RrType::A).len(), 1);
        assert_eq!(z.rrset(&glue, RrType::Aaaa).len(), 1);
    }

    #[test]
    fn validating_phase_zone_passes_zonemd() {
        let cfg = RootZoneConfig {
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        assert_eq!(verify_zonemd(&z), Ok(()));
    }

    #[test]
    fn private_phase_zone_is_unverifiable() {
        let cfg = RootZoneConfig {
            rollout: RolloutPhase::PrivateAlgorithm,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        assert!(matches!(
            verify_zonemd(&z),
            Err(crate::zonemd::ZonemdError::UnsupportedAlgorithm)
        ));
    }

    #[test]
    fn no_record_phase_has_no_zonemd() {
        let z = build_root_zone(&RootZoneConfig::default(), &keys());
        assert!(z.rrset(&Name::root(), RrType::Zonemd).is_empty());
    }

    #[test]
    fn full_validation_passes_inside_window() {
        let cfg = RootZoneConfig {
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        let report = validate_zone(&z, cfg.inception + 86400);
        assert!(report.is_valid(), "issues: {:?}", report.issues);
    }

    #[test]
    fn full_validation_detects_expiry() {
        let cfg = RootZoneConfig {
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        let report = validate_zone(&z, cfg.expiration + 1);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SignatureExpired { .. })));
    }

    #[test]
    fn serial_flows_through() {
        let cfg = RootZoneConfig {
            serial: 2023122400,
            ..Default::default()
        };
        let z = build_root_zone(&cfg, &keys());
        assert_eq!(z.serial().unwrap(), 2023122400);
    }

    #[test]
    fn tld_labels_unique_and_ascii() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let l = tld_label(i);
            assert!(l.is_ascii(), "{l}");
            assert!(seen.insert(l));
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = RootZoneConfig::default();
        let a = build_root_zone(&cfg, &keys());
        let b = build_root_zone(&cfg, &keys());
        assert_eq!(a, b);
    }
}
