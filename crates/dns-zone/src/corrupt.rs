//! Fault injection for zone copies — the failure modes the paper found in
//! the wild (Table 2, Figure 10):
//!
//! * **bitflips** from faulty VP memory (or, unexcludably, in transit / on
//!   the server) — a single flipped bit in an RRSIG or even a TLD label
//!   (`.ruhr` → garbage is the paper's example);
//! * **stale zones** — a site serving a zone whose signatures expired
//!   (Tokyo and Leeds d.root sites in the paper);
//! * **clock skew** on the VP — not a zone fault, but modelled here as part
//!   of the observation context because it produces "not incepted" errors.

use crate::zone::Zone;
use dns_wire::rdata::Rdata;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where a bitflip landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitflipLocation {
    /// Index into `zone.records()`.
    pub record_index: usize,
    /// Byte offset within the flipped field.
    pub byte: usize,
    /// Bit (0 = LSB) within the byte.
    pub bit: u8,
    /// Human-readable description of the field hit.
    pub field: &'static str,
}

/// Flip one random bit in a random RRSIG signature — the most common
/// observable flavour (Figure 10 shows exactly this shape).
///
/// Returns where the flip landed, or `None` if the zone has no RRSIGs.
pub fn flip_rrsig_bit(zone: &mut Zone, seed: u64) -> Option<BitflipLocation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sig_indices: Vec<usize> = zone
        .records()
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r.rdata, Rdata::Rrsig(_)).then_some(i))
        .collect();
    if sig_indices.is_empty() {
        return None;
    }
    let record_index = sig_indices[rng.gen_range(0..sig_indices.len())];
    let rec = &mut zone.records_mut()[record_index];
    let Rdata::Rrsig(sig) = &mut rec.rdata else {
        unreachable!("filtered to RRSIGs");
    };
    if sig.signature.is_empty() {
        return None;
    }
    let byte = rng.gen_range(0..sig.signature.len());
    let bit = rng.gen_range(0..8u8);
    sig.signature[byte] ^= 1 << bit;
    Some(BitflipLocation {
        record_index,
        byte,
        bit,
        field: "RRSIG signature",
    })
}

/// Flip one bit in a delegation owner label — the paper's `.ruhr` example,
/// where a flipped bit turned a TLD into a different (potentially
/// homograph-attackable) name. Targets the first non-apex NS owner.
pub fn flip_owner_label_bit(zone: &mut Zone, seed: u64) -> Option<BitflipLocation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let origin = zone.origin().clone();
    let idx = zone
        .records()
        .iter()
        .position(|r| r.rr_type == dns_wire::RrType::Ns && r.name != origin)?;
    let rec = &mut zone.records_mut()[idx];
    let labels: Vec<Vec<u8>> = rec.name.labels().map(|l| l.to_vec()).collect();
    let mut first = labels[0].clone();
    let byte = rng.gen_range(0..first.len());
    // Flip a low bit so the result stays a plausible (if wrong) letter.
    let bit = rng.gen_range(0..3u8);
    first[byte] ^= 1 << bit;
    // Keep the label DNS-legal: never produce a dot or NUL.
    if first[byte] == b'.' || first[byte] == 0 {
        first[byte] ^= 1 << bit; // undo
        first[byte] ^= 1 << ((bit + 1) % 3);
    }
    let mut new_labels = vec![first];
    new_labels.extend(labels[1..].iter().cloned());
    rec.name = dns_wire::Name::from_labels(new_labels).ok()?;
    Some(BitflipLocation {
        record_index: idx,
        byte,
        bit,
        field: "owner label",
    })
}

/// A "stale" server: keeps serving `old` while the world moved on. The
/// returned zone is byte-identical to the old one — staleness manifests when
/// the validator's clock passes the old RRSIG expirations.
pub fn stale_copy(old: &Zone) -> Zone {
    old.clone()
}

/// VP clock-skew model: the observation timestamp a skewed vantage point
/// writes into its logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSkew {
    /// Seconds the VP clock is off (positive = fast).
    pub offset_secs: i64,
}

impl ClockSkew {
    /// Apply the skew to a true timestamp.
    pub fn apply(&self, true_time: u32) -> u32 {
        (true_time as i64 + self.offset_secs).clamp(0, u32::MAX as i64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::RolloutPhase;
    use crate::rootzone::{build_root_zone, RootZoneConfig};
    use crate::signer::ZoneKeys;
    use crate::validate::{bitflip_diff, validate_zone, ValidationIssue};

    fn zone() -> (Zone, RootZoneConfig) {
        let cfg = RootZoneConfig {
            tld_count: 10,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        (build_root_zone(&cfg, &ZoneKeys::from_seed(99)), cfg)
    }

    #[test]
    fn rrsig_bitflip_causes_bogus_signature() {
        let (mut z, cfg) = zone();
        let loc = flip_rrsig_bit(&mut z, 1).expect("zone has RRSIGs");
        assert_eq!(loc.field, "RRSIG signature");
        let report = validate_zone(&z, cfg.inception + 3600);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::BogusSignature { .. })));
    }

    #[test]
    fn rrsig_bitflip_also_breaks_zonemd() {
        let (mut z, _) = zone();
        flip_rrsig_bit(&mut z, 2).unwrap();
        assert!(crate::zonemd::verify_zonemd(&z).is_err());
    }

    #[test]
    fn bitflip_is_single_record_diff() {
        let (reference, _) = zone();
        let mut observed = reference.clone();
        flip_rrsig_bit(&mut observed, 3).unwrap();
        let diff = bitflip_diff(&reference, &observed).expect("exactly one pair");
        assert!(diff.reference_line.contains("RRSIG"));
        assert_ne!(diff.reference_line, diff.observed_line);
    }

    #[test]
    fn owner_label_flip_changes_tld() {
        let (reference, _) = zone();
        let mut observed = reference.clone();
        let loc = flip_owner_label_bit(&mut observed, 4).expect("has delegations");
        assert_eq!(loc.field, "owner label");
        // The zones now differ.
        assert_ne!(
            reference.records()[loc.record_index].name,
            observed.records()[loc.record_index].name
        );
    }

    #[test]
    fn owner_flip_breaks_zonemd() {
        let (_, _) = zone();
        let (mut observed, _) = zone();
        flip_owner_label_bit(&mut observed, 5).unwrap();
        assert!(crate::zonemd::verify_zonemd(&observed).is_err());
    }

    #[test]
    fn stale_zone_expires() {
        let (z, cfg) = zone();
        let stale = stale_copy(&z);
        // Valid while fresh.
        assert!(validate_zone(&stale, cfg.inception + 3600).is_valid());
        // Expired once the clock passes the window.
        let report = validate_zone(&stale, cfg.expiration + 3600);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SignatureExpired { .. })));
    }

    #[test]
    fn clock_skew_applies_both_directions() {
        let fast = ClockSkew { offset_secs: 600 };
        let slow = ClockSkew { offset_secs: -600 };
        assert_eq!(fast.apply(1000), 1600);
        assert_eq!(slow.apply(1000), 400);
        // Clamped at zero.
        assert_eq!(slow.apply(100), 0);
    }

    #[test]
    fn skewed_clock_produces_not_incepted() {
        let (z, cfg) = zone();
        // VP whose clock is 1h behind validates a freshly signed zone.
        let skew = ClockSkew { offset_secs: -3600 };
        let vp_now = skew.apply(cfg.inception + 60);
        let report = validate_zone(&z, vp_now);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SignatureNotIncepted { .. })));
    }

    #[test]
    fn deterministic_under_seed() {
        let (mut a, _) = zone();
        let (mut b, _) = zone();
        assert_eq!(flip_rrsig_bit(&mut a, 7), flip_rrsig_bit(&mut b, 7));
        assert_eq!(a, b);
    }
}
