//! The ZONEMD roll-out timeline the paper observed (§7, Figure 2).
//!
//! * Before 2023-09-13: the root zone carries no `ZONEMD` record.
//! * 2023-09-13 to 2023-12-06: a non-validating record using a private hash
//!   algorithm is published (detectable, not verifiable).
//! * From 2023-12-06 (20:30 UTC per the paper's IANA observations): the
//!   record uses SHA-384 and validates.

#[cfg(test)]
use dns_crypto::validity;
use dns_crypto::DigestAlg;

/// Unix timestamp of the private-algorithm ZONEMD introduction
/// (2023-09-13T00:00:00Z).
pub const ZONEMD_PRIVATE_DATE: u32 = 1_694_563_200;

/// Unix timestamp from which ZONEMD validates (2023-12-06T20:30:00Z, the
/// first validating IANA download the paper reports).
pub const ZONEMD_VALIDATES_DATE: u32 = 1_701_894_600;

/// Which phase of the roll-out a point in time falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// No ZONEMD record in the zone.
    NoRecord,
    /// Record present, private hash algorithm — cannot validate.
    PrivateAlgorithm,
    /// Record present with SHA-384 — validates.
    Validating,
}

impl RolloutPhase {
    /// Phase at `now` (seconds since Unix epoch).
    pub fn at(now: u32) -> Self {
        if now < ZONEMD_PRIVATE_DATE {
            RolloutPhase::NoRecord
        } else if now < ZONEMD_VALIDATES_DATE {
            RolloutPhase::PrivateAlgorithm
        } else {
            RolloutPhase::Validating
        }
    }

    /// The digest algorithm the zone publisher uses in this phase, if any.
    pub fn digest_alg(self) -> Option<DigestAlg> {
        match self {
            RolloutPhase::NoRecord => None,
            RolloutPhase::PrivateAlgorithm => Some(DigestAlg::Private(240)),
            RolloutPhase::Validating => Some(DigestAlg::Sha384),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_boundaries() {
        assert_eq!(
            RolloutPhase::at(ZONEMD_PRIVATE_DATE - 1),
            RolloutPhase::NoRecord
        );
        assert_eq!(
            RolloutPhase::at(ZONEMD_PRIVATE_DATE),
            RolloutPhase::PrivateAlgorithm
        );
        assert_eq!(
            RolloutPhase::at(ZONEMD_VALIDATES_DATE - 1),
            RolloutPhase::PrivateAlgorithm
        );
        assert_eq!(
            RolloutPhase::at(ZONEMD_VALIDATES_DATE),
            RolloutPhase::Validating
        );
    }

    #[test]
    fn constants_match_paper_dates() {
        assert_eq!(
            validity::timestamp_from_ymd("20230913000000"),
            Some(ZONEMD_PRIVATE_DATE)
        );
        assert_eq!(
            validity::timestamp_from_ymd("20231206203000"),
            Some(ZONEMD_VALIDATES_DATE)
        );
    }

    #[test]
    fn algorithms_per_phase() {
        assert_eq!(RolloutPhase::NoRecord.digest_alg(), None);
        assert_eq!(
            RolloutPhase::PrivateAlgorithm.digest_alg(),
            Some(DigestAlg::Private(240))
        );
        assert_eq!(
            RolloutPhase::Validating.digest_alg(),
            Some(DigestAlg::Sha384)
        );
    }
}
