//! Full zone validation — the `ldnsutils` equivalent the paper ran over
//! every transferred zone (§7): verify the ZONEMD digest and *all* `RRSIG`
//! records against the zone's DNSKEYs at a given validation time.
//!
//! The error taxonomy mirrors the paper's Table 2:
//!
//! * `SignatureNotIncepted` — "Sig. not incepted" (VP clock ahead/behind);
//! * `BogusSignature` — "Bogus Signature" (bitflips in transit/at rest);
//! * `SignatureExpired` — "Signature expired" (stale zone files);
//! * ZONEMD-specific failures from [`crate::zonemd`].

use crate::signer::verify_signature;
use crate::zone::Zone;
use crate::zonemd::{verify_zonemd, ZonemdError};
use dns_crypto::simsig::SimKeyPair;
use dns_crypto::validity::{check_window, SignatureValidity};
use dns_wire::rdata::Rdata;
use dns_wire::{Name, Record, RrType};

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// The zone fails structural checks entirely.
    BadZone(String),
    /// No DNSKEY RRset at the apex.
    NoDnskeys,
    /// An RRSIG's inception is in the future at validation time.
    SignatureNotIncepted { owner: String, covered: RrType },
    /// An RRSIG expired before validation time.
    SignatureExpired { owner: String, covered: RrType },
    /// An RRSIG fails cryptographic verification.
    BogusSignature { owner: String, covered: RrType },
    /// An RRSIG references a key tag not present in the DNSKEY RRset.
    UnknownKeyTag { owner: String, key_tag: u16 },
    /// ZONEMD verification failed.
    Zonemd(ZonemdError),
}

impl ValidationIssue {
    /// The paper's Table 2 "Reason" label for this issue, if it maps to one.
    pub fn table2_reason(&self) -> Option<&'static str> {
        match self {
            ValidationIssue::SignatureNotIncepted { .. } => Some("Sig. not incepted"),
            ValidationIssue::BogusSignature { .. } => Some("Bogus Signature"),
            ValidationIssue::SignatureExpired { .. } => Some("Signature expired"),
            _ => None,
        }
    }
}

/// Result of validating one zone copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Validation time used (seconds since epoch).
    pub validated_at: u32,
    /// The zone serial, if readable.
    pub serial: Option<u32>,
    /// All findings; empty means fully valid.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// True when no issues were found.
    pub fn is_valid(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Validate `zone` at time `now`: ZONEMD (when a verifiable record should be
/// checked) and every RRSIG.
///
/// ZONEMD absence is only an issue if the zone *should* have one — the
/// caller decides by consulting [`crate::rollout::RolloutPhase`]; here a
/// missing or private-algorithm ZONEMD is reported as informational absence
/// via `Zonemd(...)` only for digest mismatches, mirroring how the paper's
/// pipeline treated the roll-out phases.
pub fn validate_zone(zone: &Zone, now: u32) -> ValidationReport {
    let mut issues = Vec::new();
    let serial = zone.serial().ok();
    if let Err(e) = zone.check() {
        issues.push(ValidationIssue::BadZone(e.to_string()));
        return ValidationReport {
            validated_at: now,
            serial,
            issues,
        };
    }

    // Collect apex DNSKEYs.
    let dnskeys: Vec<(u16, SimKeyPair)> = zone
        .rrset(zone.origin(), RrType::Dnskey)
        .into_iter()
        .filter_map(|r| match &r.rdata {
            Rdata::Dnskey(k) => Some((k.key_tag(), SimKeyPair::from_public(&k.public_key))),
            _ => None,
        })
        .collect();
    if dnskeys.is_empty() {
        issues.push(ValidationIssue::NoDnskeys);
    }

    // Verify every RRSIG.
    for rec in zone.records() {
        let Rdata::Rrsig(sig) = &rec.rdata else {
            continue;
        };
        let owner = rec.name.to_string();
        match check_window(sig.inception, sig.expiration, now) {
            Ok(SignatureValidity::Valid) => {}
            Ok(SignatureValidity::NotYetIncepted) => {
                issues.push(ValidationIssue::SignatureNotIncepted {
                    owner: owner.clone(),
                    covered: sig.type_covered,
                });
                continue;
            }
            Ok(SignatureValidity::Expired) => {
                issues.push(ValidationIssue::SignatureExpired {
                    owner: owner.clone(),
                    covered: sig.type_covered,
                });
                continue;
            }
            Err(_) => {
                issues.push(ValidationIssue::BogusSignature {
                    owner: owner.clone(),
                    covered: sig.type_covered,
                });
                continue;
            }
        }
        let Some((_, key)) = dnskeys.iter().find(|(tag, _)| *tag == sig.key_tag) else {
            if !dnskeys.is_empty() {
                issues.push(ValidationIssue::UnknownKeyTag {
                    owner: owner.clone(),
                    key_tag: sig.key_tag,
                });
            }
            continue;
        };
        let covered: Vec<Record> = zone
            .rrset(&rec.name, sig.type_covered)
            .into_iter()
            .cloned()
            .collect();
        if covered.is_empty() || !verify_signature(sig, &covered, key) {
            issues.push(ValidationIssue::BogusSignature {
                owner,
                covered: sig.type_covered,
            });
        }
    }

    // ZONEMD: only a *mismatch* of a verifiable record is an integrity
    // issue; absence / private algorithm are roll-out states.
    match verify_zonemd(zone) {
        Ok(()) | Err(ZonemdError::NoZonemd) | Err(ZonemdError::UnsupportedAlgorithm) => {}
        Err(e) => issues.push(ValidationIssue::Zonemd(e)),
    }

    ValidationReport {
        validated_at: now,
        serial,
        issues,
    }
}

/// Validate at both a first and last observation timestamp, as the paper did
/// to distinguish clock-skew artefacts: a zone can be "not incepted" at the
/// first observation but valid at the last (§7).
pub fn validate_at_both(
    zone: &Zone,
    first_obs: u32,
    last_obs: u32,
) -> (ValidationReport, ValidationReport) {
    (
        validate_zone(zone, first_obs),
        validate_zone(zone, last_obs),
    )
}

/// Find the single-bit difference between two zones' presentation dumps, if
/// the zones differ in exactly one record pair — the Figure 10 rendering.
pub fn bitflip_diff(reference: &Zone, observed: &Zone) -> Option<BitflipReport> {
    let ref_lines: Vec<String> = reference
        .canonical_records()
        .iter()
        .map(|r| dns_wire::presentation::record_to_line(r))
        .collect();
    let obs_lines: Vec<String> = observed
        .canonical_records()
        .iter()
        .map(|r| dns_wire::presentation::record_to_line(r))
        .collect();
    let ref_set: std::collections::HashSet<&String> = ref_lines.iter().collect();
    let obs_set: std::collections::HashSet<&String> = obs_lines.iter().collect();
    let missing: Vec<&String> = ref_lines.iter().filter(|l| !obs_set.contains(l)).collect();
    let added: Vec<&String> = obs_lines.iter().filter(|l| !ref_set.contains(l)).collect();
    if missing.len() == 1 && added.len() == 1 {
        Some(BitflipReport {
            reference_line: missing[0].clone(),
            observed_line: added[0].clone(),
        })
    } else {
        None
    }
}

/// The two differing presentation lines (Figure 10 shows exactly this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitflipReport {
    /// The record as served by the reference copy (e.g. ICANN download).
    pub reference_line: String,
    /// The record as received via AXFR.
    pub observed_line: String,
}

/// Name re-export used by the analysis crate when rendering reports.
pub type ZoneName = Name;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::RolloutPhase;
    use crate::rootzone::{build_root_zone, RootZoneConfig};
    use crate::signer::ZoneKeys;

    fn signed_zone() -> (Zone, RootZoneConfig) {
        let cfg = RootZoneConfig {
            rollout: RolloutPhase::Validating,
            tld_count: 8,
            ..Default::default()
        };
        (build_root_zone(&cfg, &ZoneKeys::from_seed(5)), cfg)
    }

    #[test]
    fn valid_zone_validates() {
        let (z, cfg) = signed_zone();
        assert!(validate_zone(&z, cfg.inception + 1000).is_valid());
    }

    #[test]
    fn not_incepted_before_window() {
        let (z, cfg) = signed_zone();
        let report = validate_zone(&z, cfg.inception - 100);
        assert!(report
            .issues
            .iter()
            .all(|i| matches!(i, ValidationIssue::SignatureNotIncepted { .. })));
        assert!(!report.is_valid());
        assert_eq!(report.issues[0].table2_reason(), Some("Sig. not incepted"));
    }

    #[test]
    fn expired_after_window() {
        let (z, cfg) = signed_zone();
        let report = validate_zone(&z, cfg.expiration + 100);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SignatureExpired { .. })));
    }

    #[test]
    fn validate_at_both_distinguishes_clock_skew() {
        // First observation before inception (skewed clock), last inside.
        let (z, cfg) = signed_zone();
        let (first, last) = validate_at_both(&z, cfg.inception - 10, cfg.inception + 10);
        assert!(!first.is_valid());
        assert!(last.is_valid());
    }

    #[test]
    fn bitflip_detected_as_bogus() {
        let (mut z, cfg) = signed_zone();
        // Flip a bit inside some RRSIG signature.
        for rec in z.records_mut() {
            if let Rdata::Rrsig(sig) = &mut rec.rdata {
                sig.signature[10] ^= 0x10;
                break;
            }
        }
        let report = validate_zone(&z, cfg.inception + 1000);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::BogusSignature { .. })));
    }

    #[test]
    fn no_dnskeys_reported() {
        let (mut z, cfg) = signed_zone();
        z.remove_rrset(&Name::root(), RrType::Dnskey);
        let report = validate_zone(&z, cfg.inception + 1000);
        assert!(report.issues.contains(&ValidationIssue::NoDnskeys));
    }

    #[test]
    fn bitflip_diff_finds_single_pair() {
        let (reference, _) = signed_zone();
        let mut observed = reference.clone();
        for rec in observed.records_mut() {
            if let Rdata::Rrsig(sig) = &mut rec.rdata {
                sig.signature[0] ^= 0x01;
                break;
            }
        }
        let report = bitflip_diff(&reference, &observed).expect("one pair");
        assert_ne!(report.reference_line, report.observed_line);
        assert!(report.reference_line.contains("RRSIG"));
    }

    #[test]
    fn bitflip_diff_none_when_identical() {
        let (z, _) = signed_zone();
        assert!(bitflip_diff(&z, &z.clone()).is_none());
    }
}
