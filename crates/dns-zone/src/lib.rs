//! DNS zones for the `roots-go-deep` reproduction.
//!
//! * [`zone`] — the zone model: a named collection of records with RRset
//!   grouping and RFC 4034 canonical ordering;
//! * [`masterfile`] — RFC 1035 master-file parsing and serialization
//!   (`$ORIGIN`, `$TTL`, comments, parenthesized continuations);
//! * [`zonemd`] — RFC 8976 zone digest computation and verification;
//! * [`signer`] — DNSSEC signing: key management, NSEC chain construction,
//!   per-RRset `RRSIG` generation using the `SIMSIG` stand-in scheme;
//! * [`rootzone`] — synthesis of a realistic root zone (TLD delegations,
//!   glue, DNSSEC chain) with serial management;
//! * [`rollout`] — the ZONEMD roll-out timeline the paper observed
//!   (no record → private-algorithm record → verifiable SHA-384 record);
//! * [`axfr`] — zone-transfer framing as a message sequence;
//! * [`corrupt`] — fault injection: bitflips, stale zones, truncations — the
//!   error classes in the paper's Table 2;
//! * [`validate`] — the `ldnsutils`-equivalent validation pipeline: ZONEMD
//!   check plus verification of every `RRSIG` against the zone's DNSKEYs.

pub mod axfr;
pub mod channels;
pub mod corrupt;
pub mod masterfile;
pub mod rollout;
pub mod rootzone;
pub mod signer;
pub mod validate;
pub mod zone;
pub mod zonemd;

pub use rollout::{RolloutPhase, ZONEMD_PRIVATE_DATE, ZONEMD_VALIDATES_DATE};
pub use signer::{SigningConfig, ZoneKeys};
pub use validate::{validate_zone, ValidationIssue, ValidationReport};
pub use zone::{Zone, ZoneError};
pub use zonemd::{compute_zonemd, verify_zonemd, ZonemdError};
