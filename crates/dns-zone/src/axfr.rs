//! AXFR zone-transfer framing (RFC 5936).
//!
//! A zone transfer is a sequence of DNS messages: the first answer record is
//! the SOA, the last is the SOA again, and everything in between is the rest
//! of the zone. Servers batch records to keep each message under a size
//! budget; resolvers reassemble and check the SOA envelope.

use crate::zone::{Zone, ZoneError};
use dns_wire::{Message, Name, Question, Rcode, Record, RrType};

/// Maximum answer records per AXFR message (typical server behaviour packs
/// many; the exact number only affects framing granularity).
pub const DEFAULT_BATCH: usize = 100;

/// Errors reassembling an AXFR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxfrError {
    /// The stream was empty.
    Empty,
    /// The first record was not the zone's SOA.
    MissingLeadingSoa,
    /// The stream did not end with the SOA.
    MissingTrailingSoa,
    /// A message in the stream signalled an error rcode.
    ErrorRcode(u16),
    /// The transfer produced an inconsistent zone.
    Zone(ZoneError),
}

impl std::fmt::Display for AxfrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxfrError::Empty => write!(f, "empty AXFR stream"),
            AxfrError::MissingLeadingSoa => write!(f, "AXFR does not start with SOA"),
            AxfrError::MissingTrailingSoa => write!(f, "AXFR does not end with SOA"),
            AxfrError::ErrorRcode(rc) => write!(f, "AXFR message rcode {rc}"),
            AxfrError::Zone(e) => write!(f, "AXFR produced bad zone: {e}"),
        }
    }
}

impl std::error::Error for AxfrError {}

/// Serve `zone` as an AXFR message stream answering `query_id`.
pub fn serve_axfr(zone: &Zone, query_id: u16, batch: usize) -> Result<Vec<Message>, AxfrError> {
    let soa_recs = zone.rrset(zone.origin(), RrType::Soa);
    let soa = soa_recs
        .first()
        .copied()
        .ok_or(AxfrError::MissingLeadingSoa)?
        .clone();
    let mut sequence: Vec<Record> = Vec::with_capacity(zone.len() + 1);
    sequence.push(soa.clone());
    for rec in zone.records() {
        if rec.rr_type == RrType::Soa && rec.name == *zone.origin() {
            continue;
        }
        sequence.push(rec.clone());
    }
    sequence.push(soa);

    let query = Message::query(query_id, Question::new(zone.origin().clone(), RrType::Axfr));
    let batch = batch.max(1);
    let mut messages = Vec::new();
    for chunk in sequence.chunks(batch) {
        messages.push(Message::response_to(&query, Rcode::NoError, chunk.to_vec()));
    }
    Ok(messages)
}

/// Reassemble an AXFR stream into a zone rooted at `origin`.
pub fn assemble_axfr(messages: &[Message], origin: &Name) -> Result<Zone, AxfrError> {
    if messages.is_empty() {
        return Err(AxfrError::Empty);
    }
    let mut records: Vec<Record> = Vec::new();
    for msg in messages {
        if msg.header.rcode != Rcode::NoError {
            return Err(AxfrError::ErrorRcode(match msg.header.rcode {
                Rcode::NoError => 0,
                Rcode::FormErr => 1,
                Rcode::ServFail => 2,
                Rcode::NxDomain => 3,
                Rcode::NotImp => 4,
                Rcode::Refused => 5,
                Rcode::Other(v) => v as u16,
            }));
        }
        records.extend(msg.answers.iter().cloned());
    }
    if records.is_empty() {
        return Err(AxfrError::Empty);
    }
    let leading_is_soa = records[0].rr_type == RrType::Soa && records[0].name == *origin;
    if !leading_is_soa {
        return Err(AxfrError::MissingLeadingSoa);
    }
    let trailing = records.last().unwrap();
    if trailing.rr_type != RrType::Soa || trailing.name != *origin {
        return Err(AxfrError::MissingTrailingSoa);
    }
    let mut zone = Zone::new(origin.clone());
    // Leading SOA kept, trailing SOA dropped.
    let end = records.len() - 1;
    for rec in records.into_iter().take(end) {
        zone.push(rec).map_err(AxfrError::Zone)?;
    }
    Ok(zone)
}

/// Round-trip helper: serve and immediately reassemble (what a measurement
/// VP effectively does per probe).
pub fn transfer(zone: &Zone, query_id: u16) -> Result<Zone, AxfrError> {
    let messages = serve_axfr(zone, query_id, DEFAULT_BATCH)?;
    assemble_axfr(&messages, zone.origin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::RolloutPhase;
    use crate::rootzone::{build_root_zone, RootZoneConfig};
    use crate::signer::ZoneKeys;
    use crate::zonemd::verify_zonemd;

    fn zone() -> Zone {
        build_root_zone(
            &RootZoneConfig {
                tld_count: 10,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(11),
        )
    }

    #[test]
    fn round_trip_preserves_zone() {
        let z = zone();
        let back = transfer(&z, 42).unwrap();
        let a: Vec<_> = z
            .canonical_records()
            .iter()
            .map(|r| r.canonical_wire(None))
            .collect();
        let b: Vec<_> = back
            .canonical_records()
            .iter()
            .map(|r| r.canonical_wire(None))
            .collect();
        assert_eq!(a, b);
        // Transferred zone still passes ZONEMD.
        assert_eq!(verify_zonemd(&back), Ok(()));
    }

    #[test]
    fn soa_envelope_present() {
        let z = zone();
        let msgs = serve_axfr(&z, 1, DEFAULT_BATCH).unwrap();
        let first = &msgs[0].answers[0];
        assert_eq!(first.rr_type, RrType::Soa);
        let last = msgs.last().unwrap().answers.last().unwrap();
        assert_eq!(last.rr_type, RrType::Soa);
    }

    #[test]
    fn batching_splits_messages() {
        let z = zone();
        let msgs = serve_axfr(&z, 1, 10).unwrap();
        assert!(msgs.len() > 1);
        assert!(msgs.iter().all(|m| m.answers.len() <= 10));
        let back = assemble_axfr(&msgs, z.origin()).unwrap();
        assert_eq!(back.len(), z.len());
    }

    #[test]
    fn empty_stream_rejected() {
        assert_eq!(assemble_axfr(&[], &Name::root()), Err(AxfrError::Empty));
    }

    #[test]
    fn missing_trailing_soa_rejected() {
        let z = zone();
        let mut msgs = serve_axfr(&z, 1, DEFAULT_BATCH).unwrap();
        // Drop the trailing SOA.
        let last = msgs.last_mut().unwrap();
        last.answers.pop();
        assert_eq!(
            assemble_axfr(&msgs, z.origin()),
            Err(AxfrError::MissingTrailingSoa)
        );
    }

    #[test]
    fn missing_leading_soa_rejected() {
        let z = zone();
        let mut msgs = serve_axfr(&z, 1, DEFAULT_BATCH).unwrap();
        msgs[0].answers.remove(0);
        assert_eq!(
            assemble_axfr(&msgs, z.origin()),
            Err(AxfrError::MissingLeadingSoa)
        );
    }

    #[test]
    fn error_rcode_rejected() {
        let z = zone();
        let mut msgs = serve_axfr(&z, 1, DEFAULT_BATCH).unwrap();
        msgs[0].header.rcode = Rcode::Refused;
        assert_eq!(
            assemble_axfr(&msgs, z.origin()),
            Err(AxfrError::ErrorRcode(5))
        );
    }

    #[test]
    fn wire_round_trip_of_stream() {
        // Full encode/decode of every message in the stream.
        let z = zone();
        let msgs = serve_axfr(&z, 7, 50).unwrap();
        let decoded: Vec<Message> = msgs
            .iter()
            .map(|m| Message::from_wire(&m.to_wire()).unwrap())
            .collect();
        let back = assemble_axfr(&decoded, z.origin()).unwrap();
        assert_eq!(verify_zonemd(&back), Ok(()));
    }
}
