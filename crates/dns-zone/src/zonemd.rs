//! ZONEMD — message digest for DNS zones (RFC 8976).
//!
//! The digest input is every record of the zone in RFC 4034 canonical form
//! and canonical order, *excluding*:
//!
//! * the apex `ZONEMD` RRset itself, and
//! * `RRSIG` records covering the apex `ZONEMD` RRset
//!
//! (both are written after digest computation, so they cannot be part of it),
//! plus duplicate records and occluded/out-of-zone data, which the
//! [`crate::zone::Zone`] model already excludes structurally.

use crate::zone::Zone;
use dns_crypto::DigestAlg;
use dns_wire::rdata::{Rdata, Zonemd};
use dns_wire::{Record, RrType};

/// The SIMPLE scheme (RFC 8976 §2.2.2) — the only one defined so far.
pub const SCHEME_SIMPLE: u8 = 1;

/// Errors from ZONEMD verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZonemdError {
    /// The zone has no apex ZONEMD record.
    NoZonemd,
    /// A ZONEMD record exists but its serial does not match the SOA serial.
    SerialMismatch { soa: u32, zonemd: u32 },
    /// No ZONEMD record uses a scheme/algorithm this validator supports.
    UnsupportedAlgorithm,
    /// The recomputed digest differs from the published one.
    DigestMismatch,
    /// The zone is structurally broken (e.g. missing SOA).
    BadZone(String),
}

impl std::fmt::Display for ZonemdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZonemdError::NoZonemd => write!(f, "no apex ZONEMD record"),
            ZonemdError::SerialMismatch { soa, zonemd } => {
                write!(f, "ZONEMD serial {zonemd} != SOA serial {soa}")
            }
            ZonemdError::UnsupportedAlgorithm => write!(f, "no supported ZONEMD digest algorithm"),
            ZonemdError::DigestMismatch => write!(f, "ZONEMD digest mismatch"),
            ZonemdError::BadZone(e) => write!(f, "bad zone: {e}"),
        }
    }
}

impl std::error::Error for ZonemdError {}

/// True if `rec` must be excluded from the digest input: the apex ZONEMD
/// RRset and RRSIGs covering it.
fn excluded_from_digest(rec: &Record, zone: &Zone) -> bool {
    if rec.name != *zone.origin() {
        return false;
    }
    match (&rec.rr_type, &rec.rdata) {
        (RrType::Zonemd, _) => true,
        (RrType::Rrsig, Rdata::Rrsig(sig)) => sig.type_covered == RrType::Zonemd,
        _ => false,
    }
}

/// Compute the zone digest with `alg` over the SIMPLE scheme.
pub fn compute_zonemd(zone: &Zone, alg: DigestAlg) -> Result<Vec<u8>, ZonemdError> {
    zone.check()
        .map_err(|e| ZonemdError::BadZone(e.to_string()))?;
    let mut input = Vec::new();
    for rec in zone.canonical_records() {
        if excluded_from_digest(rec, zone) {
            continue;
        }
        input.extend_from_slice(&rec.canonical_wire(None));
    }
    Ok(alg.digest(&input))
}

/// Build the apex ZONEMD record for the current zone content.
pub fn make_zonemd_record(zone: &Zone, alg: DigestAlg, ttl: u32) -> Result<Record, ZonemdError> {
    let serial = zone
        .serial()
        .map_err(|e| ZonemdError::BadZone(e.to_string()))?;
    let digest = compute_zonemd(zone, alg)?;
    Ok(Record::new(
        zone.origin().clone(),
        ttl,
        Rdata::Zonemd(Zonemd {
            serial,
            scheme: SCHEME_SIMPLE,
            hash_algorithm: alg.zonemd_number(),
            digest,
        }),
    ))
}

/// Verify the apex ZONEMD record(s) of `zone`.
///
/// Follows RFC 8976 §4: pick apex ZONEMD records whose serial matches the
/// SOA and whose scheme/algorithm is supported; success if any matches the
/// recomputed digest. A present-but-unverifiable record (the roll-out's
/// private-algorithm phase) yields [`ZonemdError::UnsupportedAlgorithm`].
pub fn verify_zonemd(zone: &Zone) -> Result<(), ZonemdError> {
    let soa_serial = zone
        .serial()
        .map_err(|e| ZonemdError::BadZone(e.to_string()))?;
    let zonemds = zone.rrset(zone.origin(), RrType::Zonemd);
    if zonemds.is_empty() {
        return Err(ZonemdError::NoZonemd);
    }
    let mut serial_mismatch = None;
    let mut any_supported = false;
    let mut mismatch = false;
    for rec in zonemds {
        let Rdata::Zonemd(z) = &rec.rdata else {
            continue;
        };
        if z.serial != soa_serial {
            serial_mismatch = Some(z.serial);
            continue;
        }
        if z.scheme != SCHEME_SIMPLE {
            continue;
        }
        let alg = DigestAlg::from_zonemd_number(z.hash_algorithm);
        if !alg.is_verifiable() {
            continue;
        }
        any_supported = true;
        let computed = compute_zonemd(zone, alg)?;
        if computed == z.digest {
            return Ok(());
        }
        mismatch = true;
    }
    if mismatch {
        Err(ZonemdError::DigestMismatch)
    } else if any_supported {
        // unreachable: any_supported implies either Ok or mismatch.
        Err(ZonemdError::DigestMismatch)
    } else if let Some(zserial) = serial_mismatch {
        Err(ZonemdError::SerialMismatch {
            soa: soa_serial,
            zonemd: zserial,
        })
    } else {
        Err(ZonemdError::UnsupportedAlgorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::rdata::Soa;
    use dns_wire::Name;

    fn small_zone() -> Zone {
        let mut z = Zone::new(Name::root());
        z.push(Record::new(
            Name::root(),
            86400,
            Rdata::Soa(Soa {
                mname: Name::parse("a.root-servers.net.").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com.").unwrap(),
                serial: 2023120600,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            }),
        ))
        .unwrap();
        z.push(Record::new(
            Name::root(),
            518400,
            Rdata::Ns(Name::parse("a.root-servers.net.").unwrap()),
        ))
        .unwrap();
        z.push(Record::new(
            Name::parse("com.").unwrap(),
            172800,
            Rdata::Ns(Name::parse("a.gtld-servers.net.").unwrap()),
        ))
        .unwrap();
        z
    }

    fn publish(zone: &mut Zone, alg: DigestAlg) {
        let rec = make_zonemd_record(zone, alg, 86400).unwrap();
        zone.push(rec).unwrap();
    }

    #[test]
    fn compute_is_deterministic() {
        let z = small_zone();
        assert_eq!(
            compute_zonemd(&z, DigestAlg::Sha384).unwrap(),
            compute_zonemd(&z, DigestAlg::Sha384).unwrap()
        );
    }

    #[test]
    fn publish_then_verify() {
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Sha384);
        assert_eq!(verify_zonemd(&z), Ok(()));
    }

    #[test]
    fn digest_excludes_zonemd_itself() {
        // Adding the ZONEMD record must not change the digest.
        let mut z = small_zone();
        let before = compute_zonemd(&z, DigestAlg::Sha384).unwrap();
        publish(&mut z, DigestAlg::Sha384);
        let after = compute_zonemd(&z, DigestAlg::Sha384).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn any_content_change_breaks_digest() {
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Sha384);
        // Change a delegation target.
        for rec in z.records_mut() {
            if rec.name == Name::parse("com.").unwrap() {
                rec.rdata = Rdata::Ns(Name::parse("b.gtld-servers.net.").unwrap());
            }
        }
        assert_eq!(verify_zonemd(&z), Err(ZonemdError::DigestMismatch));
    }

    #[test]
    fn missing_zonemd_reported() {
        let z = small_zone();
        assert_eq!(verify_zonemd(&z), Err(ZonemdError::NoZonemd));
    }

    #[test]
    fn private_algorithm_is_unverifiable() {
        // The roll-out's first phase: a ZONEMD record with a private hash.
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Private(240));
        assert_eq!(verify_zonemd(&z), Err(ZonemdError::UnsupportedAlgorithm));
    }

    #[test]
    fn serial_mismatch_reported() {
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Sha384);
        // Bump the SOA serial without recomputing the digest.
        for rec in z.records_mut() {
            if let Rdata::Soa(soa) = &mut rec.rdata {
                soa.serial += 1;
            }
        }
        assert_eq!(
            verify_zonemd(&z),
            Err(ZonemdError::SerialMismatch {
                soa: 2023120601,
                zonemd: 2023120600
            })
        );
    }

    #[test]
    fn sha512_also_supported() {
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Sha512);
        assert_eq!(verify_zonemd(&z), Ok(()));
        let digest = compute_zonemd(&z, DigestAlg::Sha512).unwrap();
        assert_eq!(digest.len(), 64);
    }

    #[test]
    fn multiple_zonemd_any_valid_passes() {
        // RFC 8976 §4: verification succeeds if any supported record
        // matches, even when another one is unsupported.
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Private(240));
        publish(&mut z, DigestAlg::Sha384);
        assert_eq!(verify_zonemd(&z), Ok(()));
    }

    #[test]
    fn single_bitflip_detected() {
        let mut z = small_zone();
        publish(&mut z, DigestAlg::Sha384);
        // Flip one bit in an NS target name label.
        for rec in z.records_mut() {
            if rec.name == Name::parse("com.").unwrap() {
                // "a.gtld-servers.net." -> flip 'a' to 'c' (bit 1).
                rec.rdata = Rdata::Ns(Name::parse("c.gtld-servers.net.").unwrap());
            }
        }
        assert_eq!(verify_zonemd(&z), Err(ZonemdError::DigestMismatch));
    }
}
